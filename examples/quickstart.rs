//! Quickstart: plan a serverless analytics job with Astra.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Submits the paper's Wordcount-1GB benchmark with two different user
//! requirements — a budget and a deadline — and prints the execution
//! plans Astra derives, exactly the workflow of the paper's Sec. V.

use astra::core::{Astra, Objective};
use astra::workloads::WorkloadSpec;

fn main() {
    // 1. Describe the job: 1 GB of text in 20 S3 objects, with the
    //    calibrated Wordcount profile.
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    println!(
        "Job: {} — {} objects, {:.1} MB total\n",
        job.name,
        job.num_objects(),
        job.total_mb()
    );

    // 2. Create the planner (AWS Lambda platform, 2020 prices, exact
    //    constrained-shortest-path solver).
    let astra = Astra::with_defaults();

    // 3a. "Best possible performance with a limited budget" (Eq. 16).
    let budget_plan = astra
        .plan(&job, Objective::min_time_with_budget_dollars(0.004))
        .expect("a $0.004 budget is feasible for this job");
    println!("Under a $0.004 budget (minimize completion time):");
    println!("  {}", budget_plan.summary());

    // 3b. "Minimize cost without violating the QoS objective" (Eq. 20).
    let qos_plan = astra
        .plan(&job, Objective::min_cost_with_deadline_s(60.0))
        .expect("a 60 s deadline is feasible for this job");
    println!("\nUnder a 60 s completion-time threshold (minimize cost):");
    println!("  {}", qos_plan.summary());

    // 4. The tradeoff Astra navigates:
    println!(
        "\nTradeoff: the budget plan is {:.1}x faster; the QoS plan is {:.1}% cheaper.",
        qos_plan.predicted_jct_s() / budget_plan.predicted_jct_s(),
        (1.0 - qos_plan.predicted_cost().dollars() / budget_plan.predicted_cost().dollars())
            * 100.0
    );
}
