//! Visualise a job's execution timeline on the FaaS simulator — the
//! paper's Fig. 3, for any configuration you like.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use astra::core::{Plan, PlanSpec, ReduceSpec};
use astra::faas::SimConfig;
use astra::mapreduce::simulate;
use astra::model::{JobSpec, Platform, WorkloadProfile};
use astra::pricing::PriceCatalog;

fn main() {
    let job = JobSpec::uniform("demo", 10, 0.2, WorkloadProfile::uniform_test());
    let platform = Platform::aws_lambda();
    let catalog = PriceCatalog::aws_2020();

    for (title, mem, k) in [
        ("3 objects per lambda at 128 MB", 128u32, 3usize),
        ("2 objects per lambda at 3008 MB", 3008, 2),
    ] {
        let plan = Plan::evaluate(
            &job,
            &platform,
            &catalog,
            PlanSpec {
                mapper_mem_mb: mem,
                coordinator_mem_mb: mem,
                reducer_mem_mb: mem,
                objects_per_mapper: k,
                reduce_spec: ReduceSpec::PerReducer(k),
            },
        )
        .expect("feasible");
        let report = simulate(&job, &plan, SimConfig::deterministic(platform.clone()))
            .expect("simulates");
        println!("=== {title} ===");
        println!(
            "JCT {:.2}s, cost {}, {} invocations",
            report.jct_s(),
            report.total_cost(),
            report.invocation_count()
        );
        println!("legend: c cold-start | r GET | # compute | w PUT | . waiting\n");
        println!("{}", report.trace.ascii_gantt(100));
    }
}
