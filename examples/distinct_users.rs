//! Beyond the paper's three benchmarks: a sketch-based analytics job —
//! COUNT(DISTINCT sourceIP) over uservisits — planned by Astra and
//! executed for real through the byte-level MapReduce runtime.
//!
//! ```text
//! cargo run --release --example distinct_users
//! ```
//!
//! Sketch workloads are the ideal shape for serverless MapReduce: each
//! mapper emits a ~4 KB HyperLogLog whatever its input size, so the
//! shuffle is constant and the reduce merge is exactly associative.

use std::sync::Arc;

use astra::core::{Astra, Objective};
use astra::mapreduce::{keys, run_local};
use astra::model::JobSpec;
use astra::storage::MemStore;
use astra::workloads::apps_sketch::{sketch_profile, DistinctUsersApp};
use astra::workloads::datagen;

fn main() {
    // A small uservisits corpus: 8 objects x 96 KB of synthetic CSV.
    let job = JobSpec::uniform("distinct", 8, 96.0 / 1024.0, sketch_profile("distinct-users"));
    let plan = Astra::with_defaults()
        .plan(&job, Objective::min_cost_with_deadline_s(600.0))
        .expect("plans");
    println!("Plan: {}", plan.summary());

    let store = Arc::new(MemStore::new());
    let mut all = Vec::new();
    for i in 0..job.num_objects() {
        let data = datagen::uservisits(100 + i as u64, 96 * 1024);
        all.extend_from_slice(&data);
        store.put(keys::input(&job.name, i), data);
    }

    let app = DistinctUsersApp::default();
    let report = run_local(&job, &plan, &store, &app).expect("runs");
    let sketch = DistinctUsersApp::parse_result(&report.result).expect("valid sketch");

    let estimate = sketch.estimate();
    let truth = DistinctUsersApp::reference_distinct(&all);
    let err = (estimate - truth as f64).abs() / truth as f64 * 100.0;
    println!(
        "Distributed HLL estimate: {estimate:.0} distinct IPs (exact: {truth}, error {err:.2}%)"
    );
    println!(
        "Shuffle totals: each of the {} mappers emitted a {}-byte sketch from ~96 KB of input.",
        report.mappers,
        report.result.len(),
    );
    assert!(err < 8.0, "HLL precision-12 should be well under 8%");
}
