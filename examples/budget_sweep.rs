//! Sweep the budget knob and watch Astra walk the cost–performance
//! Pareto frontier for the Query benchmark (the tradeoff of Fig. 7/8).
//!
//! ```text
//! cargo run --release --example budget_sweep
//! ```

use astra::core::{Astra, Objective};
use astra::pricing::Money;
use astra::workloads::WorkloadSpec;

fn main() {
    let job = WorkloadSpec::QueryUservisits.into_job();
    let astra = Astra::with_defaults();

    let cheapest = astra.plan(&job, Objective::cheapest()).unwrap();
    let fastest = astra.plan(&job, Objective::fastest()).unwrap();
    println!(
        "Query (25.4 GB): cheapest = {:.1}s @ {}, fastest = {:.1}s @ {}\n",
        cheapest.predicted_jct_s(),
        cheapest.predicted_cost(),
        fastest.predicted_jct_s(),
        fastest.predicted_cost(),
    );

    println!(
        "{:>10}  {:>9}  {:>12}  {:>28}",
        "budget", "JCT (s)", "spend", "memory map/coord/reduce + k"
    );
    let lo = cheapest.predicted_cost().nanos();
    let hi = fastest.predicted_cost().nanos();
    for step in 0..=10 {
        let budget = Money::from_nanos(lo + (hi - lo) * step / 10);
        match astra.plan(&job, Objective::MinimizeTime { budget }) {
            Ok(plan) => println!(
                "{:>10}  {:>9.1}  {:>12}  {:>14}/{}/{} k_M={} k_R={:?}",
                budget.to_string(),
                plan.predicted_jct_s(),
                plan.predicted_cost().to_string(),
                plan.spec.mapper_mem_mb,
                plan.spec.coordinator_mem_mb,
                plan.spec.reducer_mem_mb,
                plan.spec.objects_per_mapper,
                plan.spec.reduce_spec,
            ),
            Err(e) => println!("{:>10}  infeasible ({e})", budget.to_string()),
        }
    }
    println!("\nMore budget buys more parallelism and bigger memory — monotonically faster plans.");
}
