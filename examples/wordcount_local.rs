//! Run a *real* distributed wordcount through the full Astra pipeline:
//! plan → generate data → execute with threads over an in-memory object
//! store → verify against a single-pass reference count.
//!
//! ```text
//! cargo run --release --example wordcount_local
//! ```

use std::sync::Arc;

use astra::core::{Astra, Objective};
use astra::mapreduce::{keys, run_local};
use astra::storage::MemStore;
use astra::workloads::{WordCountApp, WorkloadSpec};

fn main() {
    // A miniature wordcount: 12 objects of 64 KB of Zipf text. The plan
    // is computed by the same planner that handles the paper-scale jobs.
    let spec = WorkloadSpec::wordcount_gb(1);
    let job = spec.tiny_job(12, 64);
    let plan = Astra::with_defaults()
        .plan(&job, Objective::min_cost_with_deadline_s(600.0))
        .expect("tiny job plans");
    println!("Plan: {}", plan.summary());

    // Generate seeded input data into the in-memory store.
    let store = Arc::new(MemStore::new());
    let bytes = spec.generate_inputs(&job, &store, 2024);
    println!("Generated {bytes} bytes across {} objects", job.num_objects());

    // Execute for real (rayon-parallel mappers and reducers).
    let report = run_local(&job, &plan, &store, &WordCountApp).expect("local run succeeds");
    println!(
        "Ran {} mappers, {} reducers in {} steps ({:?} wall time)",
        report.mappers, report.reducers, report.steps, report.wall
    );

    // Verify against a single-pass reference over the concatenated input.
    let mut all_input = Vec::new();
    for i in 0..job.num_objects() {
        all_input.extend_from_slice(&store.get(&keys::input(&job.name, i)).unwrap());
    }
    let reference = WordCountApp::reference_count(&all_input);
    let total_ref: u64 = reference.values().sum();

    let result = String::from_utf8(report.result.to_vec()).unwrap();
    let total_distributed: u64 = result
        .lines()
        .map(|l| l.rsplit_once('\t').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(total_distributed, total_ref, "word totals must agree");
    println!(
        "Verified: {} distinct words, {} total occurrences — distributed result matches the reference.",
        result.lines().count(),
        total_distributed
    );
    let top: Vec<&str> = result.lines().take(3).collect();
    println!("Sample rows: {top:?}");
}
