#![warn(missing_docs)]

//! Facade crate for the Astra reproduction.
//!
//! Re-exports every sub-crate under one roof so downstream users can depend
//! on a single `astra` crate:
//!
//! ```
//! use astra::core::{Astra, Objective};
//! use astra::workloads::WorkloadSpec;
//!
//! let job = WorkloadSpec::wordcount_gb(1).into_job();
//! let planner = Astra::with_defaults();
//! let plan = planner
//!     .plan(&job, Objective::min_time_with_budget_dollars(1.0))
//!     .expect("feasible plan");
//! assert!(plan.mappers() >= 1);
//! ```

pub use astra_baselines as baselines;
pub use astra_core as core;
pub use astra_faas as faas;
pub use astra_graph as graph;
pub use astra_mapreduce as mapreduce;
pub use astra_model as model;
pub use astra_pricing as pricing;
pub use astra_service as service;
pub use astra_simcore as simcore;
pub use astra_storage as storage;
pub use astra_telemetry as telemetry;
pub use astra_workloads as workloads;
