//! Vanilla-Spark-on-VMs cost model for the Sec. V Discussion ablation.
//!
//! "Astra achieves at least 92 % cost reduction without performance
//! degradation over VM-based vanilla Spark" — the structural reason is
//! billing granularity: a standing Spark cluster is provisioned for peak
//! and billed by the VM-hour (with an hourly minimum in classic EC2
//! setups), while serverless bills per 100 ms of actual function time.
//! This model captures exactly that.

use astra_model::JobSpec;
use astra_pricing::{Money, VmPricing, M3_XLARGE};
use serde::{Deserialize, Serialize};

/// A standing Spark cluster on VMs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparkVmModel {
    /// Instances in the standing cluster.
    pub instances: u32,
    /// vCPUs per instance.
    pub vcpus_per_instance: u32,
    /// One vCPU's speed relative to a 128 MB lambda.
    pub vcpu_speed_vs_128: f64,
    /// Aggregate network bandwidth in MB/s.
    pub cluster_net_mbps: f64,
    /// Spark job overhead (driver + stage scheduling), seconds.
    pub job_overhead_s: f64,
    /// Instance pricing.
    pub pricing: VmPricing,
    /// Billing rounds the cluster's time up to this many seconds
    /// (3600 = classic hourly VM billing; vanilla Spark clusters are
    /// typically provisioned per-hour or standing).
    pub billing_quantum_s: u64,
}

impl SparkVmModel {
    /// Three m3.xlarge, hourly billing — the Discussion's comparison.
    pub fn paper_setup() -> Self {
        SparkVmModel {
            instances: 3,
            vcpus_per_instance: 4,
            vcpu_speed_vs_128: 7.0,
            cluster_net_mbps: 3.0 * 125.0,
            job_overhead_s: 15.0,
            pricing: M3_XLARGE,
            billing_quantum_s: 3600,
        }
    }

    /// Job completion time on the Spark cluster (same structural model as
    /// EMR but with lighter per-job overhead — Spark keeps executors hot).
    pub fn jct_s(&self, job: &JobSpec) -> f64 {
        let cores = (self.instances * self.vcpus_per_instance) as f64;
        let d = job.total_mb();
        let s = job.shuffle_mb();
        let p = &job.profile;
        let map = (d * p.map_secs_per_mb_128 / self.vcpu_speed_vs_128 / cores)
            .max(d / self.cluster_net_mbps);
        let shuffle = s / self.cluster_net_mbps;
        let reduce = s * p.reduce_secs_per_mb_128 / self.vcpu_speed_vs_128 / cores;
        self.job_overhead_s + map + shuffle + reduce
    }

    /// What the job costs on the hourly-billed cluster.
    pub fn cost(&self, job: &JobSpec) -> Money {
        let jct = self.jct_s(job);
        let billed_s = (jct.ceil() as u64).div_ceil(self.billing_quantum_s) * self.billing_quantum_s;
        self.pricing
            .cluster_cost(self.instances, billed_s * 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    #[test]
    fn short_jobs_still_pay_a_full_hour() {
        let m = SparkVmModel::paper_setup();
        let job = JobSpec::uniform("t", 4, 10.0, WorkloadProfile::uniform_test());
        assert!(m.jct_s(&job) < 120.0);
        // 3 instances x 1 h x $0.336 = $1.008 regardless.
        assert_eq!(m.cost(&job), Money::from_dollars_f64(1.008));
    }

    #[test]
    fn long_jobs_pay_multiple_hours() {
        let m = SparkVmModel::paper_setup();
        // ~100 GB compute-heavy job: several hours on 12 cores.
        let profile = WorkloadProfile {
            map_secs_per_mb_128: 15.0,
            ..WorkloadProfile::uniform_test()
        };
        let job = JobSpec::uniform("t", 200, 500.0, profile);
        let hours = (m.jct_s(&job) / 3600.0).ceil();
        assert!(hours >= 2.0);
        assert_eq!(
            m.cost(&job),
            Money::from_dollars_f64(1.008).scale(hours)
        );
    }
}
