//! Baselines 1–3 from Sec. V.

use astra_core::{PlanSpec, ReduceSpec};
use astra_model::JobSpec;

/// A named baseline configuration policy.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Display name ("Baseline 1" …).
    pub name: &'static str,
    build: fn(&JobSpec) -> PlanSpec,
}

impl Baseline {
    /// The configuration this baseline picks for `job`.
    pub fn spec_for(&self, job: &JobSpec) -> PlanSpec {
        (self.build)(job)
    }

    /// The three paper baselines in order.
    pub fn all() -> Vec<Baseline> {
        vec![baseline1(), baseline2(), baseline3()]
    }
}

/// Baseline 1 — performance-leaning: "1536 MB is allocated for all
/// lambdas … the number of objects per mapper is set as 1 to realize the
/// maximum degree of parallelism … we randomly allocate the number of
/// objects per reducer as 2."
pub fn baseline1() -> Baseline {
    Baseline {
        name: "Baseline 1",
        build: |_job| PlanSpec {
            mapper_mem_mb: 1536,
            coordinator_mem_mb: 1536,
            reducer_mem_mb: 1536,
            objects_per_mapper: 1,
            reduce_spec: ReduceSpec::PerReducer(2),
        },
    }
}

/// Baseline 2 — cost-leaning: "the lambdas are naively allocated with the
/// smallest memory block 128 MB, and the objects allocations are
/// maintained the same as Baseline 1."
pub fn baseline2() -> Baseline {
    Baseline {
        name: "Baseline 2",
        build: |_job| PlanSpec {
            mapper_mem_mb: 128,
            coordinator_mem_mb: 128,
            reducer_mem_mb: 128,
            objects_per_mapper: 1,
            reduce_spec: ReduceSpec::PerReducer(2),
        },
    }
}

/// Baseline 3 — hybrid: mappers as in Baseline 2 (128 MB, one object
/// each); "for the reducing phase, Baseline 3 allocates 1536 MB to three
/// reducer lambdas in two steps, and the two reducers in the first step
/// each process half of the total objects."
pub fn baseline3() -> Baseline {
    Baseline {
        name: "Baseline 3",
        build: |job| {
            // With a single mapper output the [2, 1] layout is impossible;
            // degrade to the one-reducer step the coordinator would use.
            let steps = if job.num_objects() >= 2 {
                vec![2, 1]
            } else {
                vec![1]
            };
            PlanSpec {
                mapper_mem_mb: 128,
                coordinator_mem_mb: 1536,
                reducer_mem_mb: 1536,
                objects_per_mapper: 1,
                reduce_spec: ReduceSpec::ExplicitSteps(steps),
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Plan;
    use astra_model::{Platform, WorkloadProfile};
    use astra_pricing::PriceCatalog;

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform("b", n, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn baseline1_maximises_parallelism_at_1536() {
        let s = baseline1().spec_for(&job(10));
        assert_eq!(s.mapper_mem_mb, 1536);
        assert_eq!(s.objects_per_mapper, 1);
        assert_eq!(s.reduce_spec, ReduceSpec::PerReducer(2));
    }

    #[test]
    fn baseline2_is_all_128() {
        let s = baseline2().spec_for(&job(10));
        assert_eq!(
            (s.mapper_mem_mb, s.coordinator_mem_mb, s.reducer_mem_mb),
            (128, 128, 128)
        );
    }

    #[test]
    fn baseline3_uses_two_step_explicit_layout() {
        let s = baseline3().spec_for(&job(10));
        assert_eq!(s.mapper_mem_mb, 128);
        assert_eq!(s.reducer_mem_mb, 1536);
        assert_eq!(s.reduce_spec, ReduceSpec::ExplicitSteps(vec![2, 1]));
        // Degenerate single-object job.
        let s1 = baseline3().spec_for(&job(1));
        assert_eq!(s1.reduce_spec, ReduceSpec::ExplicitSteps(vec![1]));
    }

    #[test]
    fn all_baselines_evaluate_on_a_real_job() {
        let platform = Platform::paper_literal(40.0);
        let catalog = PriceCatalog::aws_2020();
        let j = job(10);
        for b in Baseline::all() {
            let plan = Plan::evaluate(&j, &platform, &catalog, b.spec_for(&j))
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert!(plan.predicted_jct_s() > 0.0, "{}", b.name);
            // B3 always runs exactly 2 steps with 3 reducers.
            if b.name == "Baseline 3" {
                assert_eq!(plan.reducers_per_step(), vec![2, 1]);
            }
        }
    }

    #[test]
    fn baseline1_is_faster_baseline2_is_cheaper() {
        // The relationship the paper's Figs. 7–8 rely on.
        let platform = Platform::paper_literal(40.0);
        let catalog = PriceCatalog::aws_2020();
        let j = job(10);
        let p1 = Plan::evaluate(&j, &platform, &catalog, baseline1().spec_for(&j)).unwrap();
        let p2 = Plan::evaluate(&j, &platform, &catalog, baseline2().spec_for(&j)).unwrap();
        assert!(p1.predicted_jct_s() < p2.predicted_jct_s());
        assert!(p2.predicted_cost() < p1.predicted_cost());
    }
}
