#![warn(missing_docs)]

//! The comparison systems from the paper's evaluation.
//!
//! * [`configs`] — Baselines 1–3 (Sec. V): hand-crafted serverless
//!   configurations a practitioner might pick from Fig. 6-style
//!   observations, without Astra's model. They produce the same
//!   [`PlanSpec`](astra_core::PlanSpec)s the planner does, so they run on
//!   the identical simulator — only the *choice* differs.
//! * [`emr`] — the VM-based comparison of Fig. 9: a wave-scheduled
//!   Hadoop-style cluster of 3 `m3.xlarge` instances with 100 concurrent
//!   map tasks, billed at EC2 + EMR rates.
//! * [`spark`] — the Sec. V "Discussion" preliminary: a vanilla-Spark-
//!   on-VMs cost model (hourly-billed standing cluster) for the ≥92 %
//!   cost-reduction claim.

pub mod configs;
pub mod emr;
pub mod spark;

pub use configs::{baseline1, baseline2, baseline3, Baseline};
pub use emr::{EmrCluster, EmrReport};
pub use spark::SparkVmModel;
