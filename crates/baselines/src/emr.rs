//! The VM-based comparison system of Fig. 9: Amazon EMR with three
//! `m3.xlarge` on-demand instances and 100 concurrent map tasks.
//!
//! A deliberately coarse but structurally faithful Hadoop model: map
//! tasks are scheduled in waves over the cluster's cores, input is pulled
//! from S3 through the cluster NICs, the shuffle crosses the local
//! network, and the bill is VM-hours — coarse-grained and payable whether
//! or not every core is busy. Those two structural facts (wave scheduling
//! + coarse billing) are what Fig. 9 exercises.

use astra_model::JobSpec;
use astra_pricing::{Money, VmPricing, M3_XLARGE};
use serde::{Deserialize, Serialize};

/// Cluster description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmrCluster {
    /// Number of VM instances (paper: 3).
    pub instances: u32,
    /// vCPUs per instance (`m3.xlarge`: 4).
    pub vcpus_per_instance: u32,
    /// Configured concurrent map tasks (paper: 100). Tasks beyond the
    /// core count time-share; throughput stays core-bound.
    pub map_slots: u32,
    /// One vCPU's speed relative to an ideal 128 MB lambda. A bare vCPU
    /// equals the lambda CPU ceiling (1792/128 = 14), but Hadoop-era EMR
    /// pays JVM + Hadoop-streaming overheads per record, halving the
    /// effective analytics throughput (the calibration DESIGN.md
    /// documents).
    pub vcpu_speed_vs_128: f64,
    /// Aggregate cluster↔S3 / intra-cluster bandwidth in MB/s
    /// (`m3.xlarge` "high" networking ≈ 1 Gb/s per instance).
    pub cluster_net_mbps: f64,
    /// Fixed per-job framework overhead in seconds (JVM spin-up, job
    /// setup, scheduling).
    pub job_overhead_s: f64,
    /// Per-task scheduling overhead in seconds.
    pub task_overhead_s: f64,
    /// Instance pricing.
    pub pricing: VmPricing,
}

impl EmrCluster {
    /// The paper's Fig. 9 cluster.
    pub fn paper_setup() -> Self {
        EmrCluster {
            instances: 3,
            vcpus_per_instance: 4,
            map_slots: 100,
            vcpu_speed_vs_128: 7.0,
            cluster_net_mbps: 3.0 * 125.0,
            job_overhead_s: 25.0,
            task_overhead_s: 2.0,
            pricing: M3_XLARGE,
        }
    }

    /// Total cores.
    pub fn cores(&self) -> u32 {
        self.instances * self.vcpus_per_instance
    }

    /// Run `job` on the cluster model.
    pub fn run(&self, job: &JobSpec) -> EmrReport {
        let cores = self.cores() as f64;
        let profile = &job.profile;
        let d = job.total_mb();
        let s = job.shuffle_mb();

        // Map phase: compute-bound core time vs S3-ingest-bound time.
        let map_tasks = job.num_objects() as f64;
        let map_work_core_s = d * profile.map_secs_per_mb_128 / self.vcpu_speed_vs_128;
        let effective_parallel = cores.min(self.map_slots as f64).min(map_tasks);
        let waves = (map_tasks / self.map_slots as f64).ceil();
        let map_compute_s = map_work_core_s / effective_parallel + waves * self.task_overhead_s;
        let map_ingest_s = d / self.cluster_net_mbps;
        let map_s = map_compute_s.max(map_ingest_s);

        // Shuffle: mapper output crosses the local network once.
        let shuffle_s = s / self.cluster_net_mbps;

        // Reduce: merge work over the cores, then write the output.
        // Multi-step funnelling is unnecessary on a cluster — reducers
        // hold state in memory — so one logical reduce over S = alpha*D.
        let reduce_work_core_s = s * profile.reduce_secs_per_mb_128 / self.vcpu_speed_vs_128;
        let reduce_s = reduce_work_core_s / cores
            + s * profile.reduce_ratio / self.cluster_net_mbps;

        let jct_s = self.job_overhead_s + map_s + shuffle_s + reduce_s;
        let cost = self
            .pricing
            .cluster_cost(self.instances, (jct_s * 1e6).round() as u64);
        EmrReport {
            jct_s,
            map_s,
            shuffle_s,
            reduce_s,
            cost,
        }
    }
}

/// Result of one EMR run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmrReport {
    /// Job completion time in seconds (including framework overhead).
    pub jct_s: f64,
    /// Map phase seconds.
    pub map_s: f64,
    /// Shuffle seconds.
    pub shuffle_s: f64,
    /// Reduce phase seconds.
    pub reduce_s: f64,
    /// Cluster bill for the job duration.
    pub cost: Money,
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn wc_like(n: usize, size_mb: f64) -> JobSpec {
        let profile = WorkloadProfile {
            name: "wc".into(),
            map_secs_per_mb_128: 0.9,
            reduce_secs_per_mb_128: 0.6,
            coord_secs_per_mb_128: 0.002,
            shuffle_ratio: 0.05,
            reduce_ratio: 0.6,
            state_object_mb: 1.0,
            single_pass_reduce: false,
        };
        JobSpec::uniform("wc", n, size_mb, profile)
    }

    #[test]
    fn paper_setup_has_twelve_cores() {
        let c = EmrCluster::paper_setup();
        assert_eq!(c.cores(), 12);
        assert_eq!(c.instances, 3);
        assert_eq!(c.map_slots, 100);
    }

    #[test]
    fn wordcount_20gb_is_compute_bound() {
        let c = EmrCluster::paper_setup();
        let report = c.run(&wc_like(40, 512.0));
        // 20480 MB * 0.9 / 7 = 2633 core-s over 12 cores ≈ 219 s,
        // vs ingest 20480/375 ≈ 55 s: compute wins.
        assert!(report.map_s > 200.0 && report.map_s < 240.0, "{report:?}");
        assert!(report.jct_s > report.map_s);
    }

    #[test]
    fn sort_like_is_network_bound() {
        let profile = WorkloadProfile {
            name: "sort".into(),
            map_secs_per_mb_128: 0.2,
            reduce_secs_per_mb_128: 0.2,
            coord_secs_per_mb_128: 0.001,
            shuffle_ratio: 1.0,
            reduce_ratio: 1.0,
            state_object_mb: 1.0,
            single_pass_reduce: true,
        };
        let job = JobSpec::uniform("sort", 200, 500.0, profile);
        let c = EmrCluster::paper_setup();
        let report = c.run(&job);
        // Ingest bound: 100000 MB / 375 MB/s ≈ 267 s > compute ≈ 242 s.
        assert!((report.map_s - 266.7).abs() < 5.0, "{report:?}");
        assert!(report.shuffle_s > 200.0);
    }

    #[test]
    fn cost_scales_with_duration() {
        let c = EmrCluster::paper_setup();
        let small = c.run(&wc_like(4, 100.0));
        let large = c.run(&wc_like(40, 512.0));
        assert!(large.jct_s > small.jct_s);
        assert!(large.cost > small.cost);
    }

    #[test]
    fn billing_uses_vm_rates() {
        let c = EmrCluster::paper_setup();
        let report = c.run(&wc_like(10, 100.0));
        let expected = M3_XLARGE.cluster_cost(3, (report.jct_s * 1e6).round() as u64);
        assert_eq!(report.cost, expected);
    }
}
