//! Fig. 3: job timeline decomposition for two sample configurations.
//!
//! (a) every lambda handles 3 objects with 128 MB memory — 4 mappers,
//!     then 2 reduce steps (2 reducers, 1 reducer);
//! (b) every lambda handles 2 objects with 3008 MB — 5 mappers, then 3
//!     steps (3, 2, 1). More steps, but each function is much faster, so
//!     the job finishes sooner.

use astra_core::{PlanSpec, ReduceSpec};
use astra_faas::SimConfig;
use astra_mapreduce::simulate;
use serde_json::json;

use crate::exp_fig1_fig2::motivation_job;
use crate::harness;
use crate::output::Output;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Fig. 3: job timelines for two sample configurations");
    out.blank();

    let job = motivation_job();
    let mut results = Vec::new();
    for (label, k, mem) in [("(a) 3 objects per lambda, 128 MB", 3usize, 128u32),
                            ("(b) 2 objects per lambda, 3008 MB", 2, 3008)] {
        let spec = PlanSpec {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k,
            reduce_spec: ReduceSpec::PerReducer(k),
        };
        let plan = harness::evaluate_relaxed(&job, spec);
        // Deterministic run for a clean timeline.
        let config = SimConfig::deterministic(harness::platform());
        let report = simulate(&job, &plan, config).expect("motivation job simulates");

        out.line(label);
        out.line(format!(
            "  mappers={} reduce steps={} ({:?}), JCT={:.2}s, cost={}",
            plan.mappers(),
            plan.reduce_steps(),
            plan.reducers_per_step(),
            report.jct_s(),
            report.total_cost(),
        ));
        out.blank();
        out.line("  legend: c=cold start  r=GET  #=compute  w=PUT  .=wait children");
        for line in report.trace.ascii_gantt(96).lines() {
            out.line(format!("  {line}"));
        }
        out.blank();
        results.push(json!({
            "label": label,
            "k": k,
            "memory_mb": mem,
            "jct_s": report.jct_s(),
            "cost_dollars": report.total_cost().dollars(),
            "reducers_per_step": plan.reducers_per_step(),
        }));
    }

    // The paper's point: (b) has more steps yet finishes first.
    let faster = results[1]["jct_s"].as_f64().unwrap() < results[0]["jct_s"].as_f64().unwrap();
    out.line(format!(
        "Observation: config (b) has more reduce steps but {} config (a).",
        if faster { "still beats" } else { "does NOT beat" }
    ));
    out.record("configs", json!(results));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_b_wins_despite_more_steps() {
        let mut out = Output::new("fig3-test");
        run(&mut out);
        assert!(out.text().contains("still beats"), "{}", out.text());
    }

    #[test]
    fn gantt_shows_phases() {
        let mut out = Output::new("fig3-test");
        run(&mut out);
        assert!(out.text().contains("mapper-0"));
        assert!(out.text().contains("coordinator"));
        assert!(out.text().contains("reducer-1-0"));
    }
}
