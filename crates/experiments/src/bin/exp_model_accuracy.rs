//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_model_accuracy");
    astra_experiments::exp_model_accuracy::run(&mut out);
    out.save().expect("write results/");
}
