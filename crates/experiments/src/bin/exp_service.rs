//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_service");
    astra_experiments::exp_service::run(&mut out);
    out.save().expect("write results/");
}
