//! Regenerates the multi-provider extension table; see module docs.
fn main() {
    astra_experiments::init_threads();
    let mut out = astra_experiments::Output::new("exp_multicloud");
    astra_experiments::exp_multicloud::run(&mut out);
    out.save().expect("write results/");
}
