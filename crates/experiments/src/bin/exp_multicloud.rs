//! Regenerates the multi-provider extension table; see module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_multicloud");
    astra_experiments::exp_multicloud::run(&mut out);
    out.save().expect("write results/");
}
