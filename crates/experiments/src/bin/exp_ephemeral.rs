//! Regenerates the intermediate-storage extension table; see module docs.
fn main() {
    astra_experiments::init_threads();
    let mut out = astra_experiments::Output::new("exp_ephemeral");
    astra_experiments::exp_ephemeral::run(&mut out);
    out.save().expect("write results/");
}
