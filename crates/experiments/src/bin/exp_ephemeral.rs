//! Regenerates the intermediate-storage extension table; see module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_ephemeral");
    astra_experiments::exp_ephemeral::run(&mut out);
    out.save().expect("write results/");
}
