//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    astra_experiments::init_threads();
    let mut out = astra_experiments::Output::new("exp_solvers");
    astra_experiments::exp_solvers::run(&mut out);
    out.save().expect("write results/");
}
