//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_fig7_table3");
    astra_experiments::exp_fig7_table3::run(&mut out);
    out.save().expect("write results/");
}
