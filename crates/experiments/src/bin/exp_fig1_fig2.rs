//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_fig1_fig2");
    astra_experiments::exp_fig1_fig2::run(&mut out);
    out.save().expect("write results/");
}
