//! Regenerates the skew/LPT extension table; see module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_skew");
    astra_experiments::exp_skew::run(&mut out);
    out.save().expect("write results/");
}
