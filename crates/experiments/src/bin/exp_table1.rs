//! Regenerates the corresponding paper artifact; see the module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_table1");
    astra_experiments::exp_table1::run(&mut out);
    out.save().expect("write results/");
}
