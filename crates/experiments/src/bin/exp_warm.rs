//! Regenerates the warm-container ablation; see module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_warm");
    astra_experiments::exp_warm::run(&mut out);
    out.save().expect("write results/");
}
