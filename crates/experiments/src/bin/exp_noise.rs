//! Regenerates the noise/failure robustness ablation; see module docs.
fn main() {
    astra_experiments::init_threads();
    let mut out = astra_experiments::Output::new("exp_noise");
    astra_experiments::exp_noise::run(&mut out);
    out.save().expect("write results/");
}
