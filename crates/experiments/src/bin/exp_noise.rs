//! Regenerates the noise/failure robustness ablation; see module docs.
fn main() {
    let _telemetry = astra_experiments::init();
    let mut out = astra_experiments::Output::new("exp_noise");
    astra_experiments::exp_noise::run(&mut out);
    out.save().expect("write results/");
}
