//! Regenerates every table and figure into `results/`.
use astra_experiments::*;

type Experiment = (&'static str, fn(&mut Output));

fn main() {
    let _telemetry = init();
    let experiments: Vec<Experiment> = vec![
        ("exp_table1", exp_table1::run),
        ("exp_fig1_fig2", exp_fig1_fig2::run),
        ("exp_fig3", exp_fig3::run),
        ("exp_fig6", exp_fig6::run),
        ("exp_fig7_table3", exp_fig7_table3::run),
        ("exp_fig8", exp_fig8::run),
        ("exp_fig9", exp_fig9::run),
        ("exp_spark", exp_spark::run),
        ("exp_model_accuracy", exp_model_accuracy::run),
        ("exp_solvers", exp_solvers::run),
        ("exp_ephemeral", exp_ephemeral::run),
        ("exp_multicloud", exp_multicloud::run),
        ("exp_noise", exp_noise::run),
        ("exp_skew", exp_skew::run),
        ("exp_warm", exp_warm::run),
        ("exp_service", exp_service::run),
    ];
    for (name, run) in experiments {
        let t0 = std::time::Instant::now();
        let mut out = Output::new(name);
        run(&mut out);
        out.save().expect("write results/");
        eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
        println!();
    }
}
