//! Fig. 9: Astra versus the VM-based solution (Amazon EMR, 3× m3.xlarge,
//! 100 concurrent map tasks) on Wordcount 20 GB and Sort 100 GB.

use astra_baselines::EmrCluster;
use astra_core::Objective;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::exp_fig7_table3::fig7_budget;
use crate::harness;
use crate::output::Output;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Fig. 9: Astra vs EMR (3 x m3.xlarge, 100 map slots)");
    out.blank();

    let cluster = EmrCluster::paper_setup();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in [WorkloadSpec::wordcount_gb(20), WorkloadSpec::Sort100] {
        let job = spec.into_job();
        // Astra plans for performance under the same budget as Fig. 7.
        let budget = fig7_budget(&job);
        let plan = harness::astra()
            .plan(&job, Objective::MinimizeTime { budget })
            .expect("feasible");
        let astra = harness::measure(&job, &plan);
        let emr = cluster.run(&job);
        rows.push(vec![
            spec.label(),
            format!("{:.1}", astra.jct_s),
            format!("{:.1}", emr.jct_s),
            format!("{:.1}%", harness::improvement_pct(astra.jct_s, emr.jct_s)),
            format!("{:.4}", astra.cost.dollars()),
            format!("{:.4}", emr.cost.dollars()),
            format!(
                "{:.1}%",
                harness::improvement_pct(astra.cost.dollars(), emr.cost.dollars())
            ),
        ]);
        json_rows.push(json!({
            "workload": spec.label(),
            "astra_jct_s": astra.jct_s,
            "emr_jct_s": emr.jct_s,
            "jct_improvement_pct": harness::improvement_pct(astra.jct_s, emr.jct_s),
            "astra_cost_dollars": astra.cost.dollars(),
            "emr_cost_dollars": emr.cost.dollars(),
            "cost_saving_pct": harness::improvement_pct(astra.cost.dollars(), emr.cost.dollars()),
            "emr_breakdown": {"map_s": emr.map_s, "shuffle_s": emr.shuffle_s, "reduce_s": emr.reduce_s},
        }));
    }
    out.table(
        &[
            "workload",
            "Astra JCT (s)",
            "EMR JCT (s)",
            "JCT gain",
            "Astra $",
            "EMR $",
            "cost saving",
        ],
        &rows,
    );
    out.blank();
    out.line("Paper shape: Astra wins both metrics on both workloads. (The paper's");
    out.line("JCT margin is larger on Wordcount than Sort; under our calibration the");
    out.line("Sort margin is larger because the single-pass reduce schedule avoids");
    out.line("the shuffle wall the authors' measured deployment hit — see");
    out.line("EXPERIMENTS.md.)");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Objective;

    #[test]
    fn astra_beats_emr_on_wordcount_20gb() {
        let job = WorkloadSpec::wordcount_gb(20).into_job();
        let budget = fig7_budget(&job);
        let plan = harness::astra()
            .plan(&job, Objective::MinimizeTime { budget })
            .unwrap();
        let astra = harness::measure(&job, &plan);
        let emr = EmrCluster::paper_setup().run(&job);
        assert!(astra.jct_s < emr.jct_s, "astra {} emr {}", astra.jct_s, emr.jct_s);
        assert!(astra.cost.dollars() < emr.cost.dollars());
    }
}
