//! Fig. 6: completion time, mapper-phase time and cost as the memory
//! allocation varies (serverless Wordcount).
//!
//! Expected shapes: JCT and mapper time fall steeply at small memories
//! and flatten past ~1536 MB (the vCPU ceiling); cost has a sweet spot —
//! rising again at large memories because the GB-s rate keeps growing
//! while speed no longer does.

use astra_core::{PlanSpec, ReduceSpec};
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Fig. 6: JCT, mapper time and cost vs memory allocation (Wordcount 1GB)");
    out.line("(fixed k_M = 2, k_R = 2; all three roles share the swept memory)");
    out.blank();

    let job = WorkloadSpec::wordcount_gb(1).into_job();
    // Evaluate every memory tier's plan, then measure the whole sweep as
    // one parallel batch.
    let tiers = harness::platform().memory_tiers_mb.clone();
    let plans: Vec<_> = tiers
        .iter()
        .map(|&mem| {
            let spec = PlanSpec {
                mapper_mem_mb: mem,
                coordinator_mem_mb: mem,
                reducer_mem_mb: mem,
                objects_per_mapper: 2,
                reduce_spec: ReduceSpec::PerReducer(2),
            };
            harness::evaluate_relaxed(&job, spec)
        })
        .collect();
    let cases: Vec<_> = plans.iter().map(|plan| (&job, plan)).collect();
    let measurements = harness::measure_batch(&cases, harness::NOISE_CV, &harness::SEEDS);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for ((&mem, plan), measured) in tiers.iter().zip(&plans).zip(&measurements) {
        // Sample every other tier for the table; JSON gets them all.
        let mapper_s = plan.evaluation.perf.mapper.duration_s;
        points.push(json!({
            "memory_mb": mem,
            "jct_s": measured.jct_s,
            "mapper_phase_s": mapper_s,
            "cost_dollars": measured.cost.dollars(),
        }));
        if mem % 256 == 0 || mem == 128 || mem == 3008 {
            rows.push(vec![
                mem.to_string(),
                format!("{:.1}", measured.jct_s),
                format!("{:.1}", mapper_s),
                format!("{:.5}", measured.cost.dollars()),
            ]);
        }
    }
    out.table(
        &["memory (MB)", "JCT (s)", "mapper phase (s)", "cost ($)"],
        &rows,
    );
    out.blank();
    out.line("Shape check: times plateau past the vCPU ceiling (1792 MB);");
    out.line("cost reaches a minimum then climbs once speed stops improving.");
    out.record("points", json!(points));
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Plan;

    fn eval(mem: u32) -> (Plan, harness::Measured) {
        let job = WorkloadSpec::wordcount_gb(1).into_job();
        let spec = PlanSpec {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: 2,
            reduce_spec: ReduceSpec::PerReducer(2),
        };
        let plan = harness::evaluate_relaxed(&job, spec);
        let m = harness::measure_with(&job, &plan, 0.0, &[1]);
        (plan, m)
    }

    #[test]
    fn jct_falls_then_plateaus() {
        let (_, small) = eval(128);
        let (_, mid) = eval(1536);
        let (_, big) = eval(3008);
        assert!(mid.jct_s < small.jct_s / 2.0, "big speedup below the ceiling");
        // Past the ceiling: within a few percent (only noise-free compute
        // shares the plateau; 1536 -> 1792 still gains a little).
        let rel = (mid.jct_s - big.jct_s).abs() / mid.jct_s;
        assert!(rel < 0.25, "plateau: 1536 {} vs 3008 {}", mid.jct_s, big.jct_s);
    }

    #[test]
    fn cost_rises_at_the_top_end() {
        let (_, at_ceiling) = eval(1792);
        let (_, top) = eval(3008);
        assert!(top.cost > at_ceiling.cost, "paying for memory that adds no speed");
    }

    #[test]
    fn mapper_time_tracks_memory() {
        let (p128, _) = eval(128);
        let (p1024, _) = eval(1024);
        assert!(
            p1024.evaluation.perf.mapper.duration_s < p128.evaluation.perf.mapper.duration_s
        );
    }
}
