//! Ablation: the paper's Algorithm 1 versus the exact constrained
//! solvers, plus the planner-overhead measurement from the Discussion
//! ("within a few seconds on a laptop").

use std::time::Instant;

use astra_core::{Objective, Strategy};
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Budget tightness levels swept (fraction of the cheapest→fastest cost
/// range).
pub const TIGHTNESS: [f64; 4] = [0.1, 0.3, 0.5, 0.9];

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Ablation: Algorithm 1 (paper) vs exact constrained shortest path");
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        // One session per strategy: the DAG (and, for the exact solver,
        // its backward potentials) is built once and reused across the
        // whole tightness sweep — the per-query numbers below are pure
        // solve time.
        let t0 = Instant::now();
        let exact_session = harness::astra_with(Strategy::ExactCsp).session(&job);
        let exact_build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let alg1_session = harness::astra_with(Strategy::Algorithm1).session(&job);
        let alg1_build_ms = t1.elapsed().as_secs_f64() * 1e3;
        let bounds = harness::bounds_on(&exact_session);
        for frac in TIGHTNESS {
            let budget = harness::budget_between(&bounds, frac);
            let objective = Objective::MinimizeTime { budget };

            let t0 = Instant::now();
            let exact = exact_session.plan(objective);
            let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let alg1 = alg1_session.plan(objective);
            let alg1_ms = t1.elapsed().as_secs_f64() * 1e3;

            let (gap, alg1_result) = match (&exact, &alg1) {
                (Ok(e), Ok(a)) => {
                    let gap = (a.predicted_jct_s() - e.predicted_jct_s())
                        / e.predicted_jct_s()
                        * 100.0;
                    (format!("{gap:.2}%"), format!("{:.1}s", a.predicted_jct_s()))
                }
                (Ok(_), Err(_)) => ("FAILED".to_string(), "gave up".to_string()),
                (Err(_), _) => ("-".to_string(), "infeasible".to_string()),
            };
            rows.push(vec![
                spec.label(),
                format!("{frac:.1}"),
                exact
                    .as_ref()
                    .map(|p| format!("{:.1}s", p.predicted_jct_s()))
                    .unwrap_or_else(|_| "infeasible".to_string()),
                alg1_result.clone(),
                gap.clone(),
                format!("{exact_ms:.0}"),
                format!("{alg1_ms:.0}"),
            ]);
            json_rows.push(json!({
                "workload": spec.label(),
                "budget_frac": frac,
                "exact_jct_s": exact.as_ref().ok().map(|p| p.predicted_jct_s()),
                "alg1_jct_s": alg1.as_ref().ok().map(|p| p.predicted_jct_s()),
                "alg1_failed": alg1.is_err(),
                "exact_ms": exact_ms,
                "alg1_ms": alg1_ms,
                "exact_build_ms": exact_build_ms,
                "alg1_build_ms": alg1_build_ms,
            }));
        }
    }
    out.table(
        &[
            "workload",
            "tightness",
            "exact JCT",
            "Alg.1 JCT",
            "gap",
            "exact ms",
            "Alg.1 ms",
        ],
        &rows,
    );
    out.blank();
    out.line("Alg. 1 removes one edge per Dijkstra round (capped at 2000 removals);");
    out.line("on tight budgets it can fail where the exact solver succeeds.");
    out.line("The DAG is built once per workload (planner session) and the ms");
    out.line("columns are pure per-query solve time; build + all solves stay");
    out.line("within the paper's 'few seconds on a laptop' on every workload.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_never_beats_exact() {
        let job = WorkloadSpec::wordcount_gb(1).into_job();
        let bounds = harness::bounds(&job);
        for frac in [0.3, 0.9] {
            let budget = harness::budget_between(&bounds, frac);
            let objective = Objective::MinimizeTime { budget };
            let exact = harness::astra_with(Strategy::ExactCsp)
                .plan(&job, objective)
                .unwrap();
            if let Ok(a) = harness::astra_with(Strategy::Algorithm1).plan(&job, objective) {
                assert!(a.predicted_jct_s() >= exact.predicted_jct_s() - 1e-9);
                // The solver admits a few nano-dollars of float slack.
                assert!(a.predicted_cost() <= budget + astra_pricing::Money::from_nanos(100));
            }
        }
    }
}
