//! Table I: partial orchestration of a MapReduce job for 10 input
//! objects, as the number of objects per lambda varies from 1 to 5.

use astra_model::schedule::reduce_schedule;
use serde_json::json;

use crate::output::Output;

/// Number of input objects in the motivation experiment.
pub const N_OBJECTS: usize = 10;

/// One column of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Orchestration {
    /// Objects per mapper and per reducer (`k`).
    pub k: usize,
    /// Number of mappers (`j = ceil(N/k)`).
    pub mappers: usize,
    /// Reducers per step (`g_1 .. g_P`).
    pub reducers_per_step: Vec<usize>,
}

/// Compute the orchestration for one `k` (used for both mappers and
/// reducers, as the paper's sweep does).
pub fn orchestration(k: usize) -> Orchestration {
    let mappers = N_OBJECTS.div_ceil(k);
    let outputs = vec![1.0; mappers];
    let steps = reduce_schedule(&outputs, k, 1.0);
    Orchestration {
        k,
        mappers,
        reducers_per_step: steps.iter().map(|s| s.reducers()).collect(),
    }
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Table I: orchestration of a MapReduce job for 10 input objects");
    out.line("(paper Sec. II-C; k = objects per mapper = objects per reducer)");
    out.blank();

    let columns: Vec<Orchestration> = (1..=5).map(orchestration).collect();
    let max_steps = columns
        .iter()
        .map(|c| c.reducers_per_step.len())
        .max()
        .unwrap();

    let mut rows = Vec::new();
    rows.push(
        std::iter::once("number of mappers".to_string())
            .chain(columns.iter().map(|c| c.mappers.to_string()))
            .collect::<Vec<_>>(),
    );
    for step in 0..max_steps {
        rows.push(
            std::iter::once(format!("step {} (number of reducers)", step + 1))
                .chain(columns.iter().map(|c| {
                    c.reducers_per_step
                        .get(step)
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| "-".to_string())
                }))
                .collect(),
        );
    }
    out.table(&["", "k=1", "k=2", "k=3", "k=4", "k=5"], &rows);
    out.blank();
    out.line("Note: at k=1 a reduce step must combine >=2 objects to make");
    out.line("progress, so an effective k_R of 2 applies (see astra-model docs).");

    out.record(
        "columns",
        json!(columns
            .iter()
            .map(|c| json!({
                "k": c.k,
                "mappers": c.mappers,
                "reducers_per_step": c.reducers_per_step,
            }))
            .collect::<Vec<_>>()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The k = 2..5 columns must match the paper's Table I exactly.
    #[test]
    fn matches_paper_columns() {
        assert_eq!(orchestration(2).mappers, 5);
        assert_eq!(orchestration(2).reducers_per_step, vec![3, 2, 1]);
        assert_eq!(orchestration(3).mappers, 4);
        assert_eq!(orchestration(3).reducers_per_step, vec![2, 1]);
        assert_eq!(orchestration(4).mappers, 3);
        assert_eq!(orchestration(4).reducers_per_step, vec![1]);
        assert_eq!(orchestration(5).mappers, 2);
        assert_eq!(orchestration(5).reducers_per_step, vec![1]);
    }

    #[test]
    fn k1_uses_ten_mappers() {
        let c = orchestration(1);
        assert_eq!(c.mappers, 10);
        assert_eq!(c.reducers_per_step, vec![5, 3, 2, 1]);
    }

    #[test]
    fn report_renders() {
        let mut out = Output::new("t");
        run(&mut out);
        assert!(out.text().contains("number of mappers"));
        assert!(out.text().contains("k=5"));
    }
}
