//! Result collection: ASCII tables on stdout plus `.txt`/`.json` files
//! under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Sink for one experiment's results.
pub struct Output {
    name: String,
    text: String,
    json: serde_json::Map<String, serde_json::Value>,
    dir: PathBuf,
}

impl Output {
    /// Create a sink for experiment `name`, writing under `results/`
    /// (created on save).
    pub fn new(name: impl Into<String>) -> Self {
        Output {
            name: name.into(),
            text: String::new(),
            json: serde_json::Map::new(),
            dir: PathBuf::from("results"),
        }
    }

    /// Use a custom output directory (tests).
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Append a line to the report (also echoed to stdout on save).
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Append a blank line.
    pub fn blank(&mut self) {
        self.text.push('\n');
    }

    /// Append a section heading.
    pub fn heading(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        self.line(s);
        self.line("-".repeat(s.len()));
    }

    /// Append a formatted table: `header` then `rows`, columns padded.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let cols = header.len();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            assert_eq!(row.len(), cols, "ragged table row");
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in header.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
        self.line(line.trim_end());
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "{}  ", "-".repeat(*w));
        }
        self.line(sep.trim_end());
        for row in rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            self.line(line.trim_end());
        }
    }

    /// Attach a machine-readable value to the JSON sidecar.
    pub fn record(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.json.insert(key.into(), value);
    }

    /// The accumulated report text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Write `results/<name>.txt` and `results/<name>.json`, echoing the
    /// report to stdout.
    pub fn save(&self) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        fs::write(self.dir.join(format!("{}.txt", self.name)), &self.text)?;
        let json = serde_json::Value::Object(self.json.clone());
        fs::write(
            self.dir.join(format!("{}.json", self.name)),
            serde_json::to_string_pretty(&json)?,
        )?;
        print!("{}", self.text);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let mut out = Output::new("t");
        out.table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.text().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        // Both data rows align on the right edge.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join("astra-output-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut out = Output::new("demo").with_dir(&dir);
        out.heading("Demo");
        out.record("answer", serde_json::json!(42));
        out.save().unwrap();
        assert!(dir.join("demo.txt").exists());
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("demo.json")).unwrap()).unwrap();
        assert_eq!(json["answer"], 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut out = Output::new("t");
        out.table(&["a", "b"], &[vec!["x".into()]]);
    }
}
