//! Extension experiment (paper Discussion): "Astra can be adapted to
//! Google Functions and Azure Functions by using their respective
//! platform quotas and pricing mechanisms."
//!
//! Same jobs, same planner — only the platform envelope (memory tiers,
//! timeout, concurrency, network) and price sheet change. The planner
//! re-derives the optimal configuration per provider.

use astra_core::{Astra, Objective, Strategy};
use astra_model::Platform;
use astra_pricing::PriceCatalog;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::output::Output;

/// The three provider setups.
pub fn providers() -> Vec<(&'static str, Platform, PriceCatalog)> {
    vec![
        ("AWS Lambda", Platform::aws_lambda(), PriceCatalog::aws_2020()),
        (
            "Google Cloud Functions",
            Platform::gcp_functions(),
            PriceCatalog::gcp_2020(),
        ),
        (
            "Azure Functions",
            Platform::azure_functions(),
            PriceCatalog::azure_2020(),
        ),
    ]
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Extension: Astra across providers (same jobs, provider-specific quotas & prices)");
    out.line("(model-predicted fastest plan and cheapest-within-2x plan per provider)");
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in [
        WorkloadSpec::wordcount_gb(1),
        WorkloadSpec::Sort100,
        WorkloadSpec::QueryUservisits,
    ] {
        let job = spec.into_job();
        for (name, platform, catalog) in providers() {
            let astra = Astra::new(platform, catalog, Strategy::ExactCsp);
            match astra.plan(&job, Objective::fastest()) {
                Ok(fastest) => {
                    let qos = astra
                        .plan(
                            &job,
                            Objective::min_cost_with_deadline_s(fastest.predicted_jct_s() * 2.0),
                        )
                        .expect("2x deadline feasible");
                    rows.push(vec![
                        spec.label(),
                        name.to_string(),
                        format!("{:.1}", fastest.predicted_jct_s()),
                        format!("{:.5}", qos.predicted_cost().dollars()),
                        format!(
                            "{}/{}/{}",
                            qos.spec.mapper_mem_mb,
                            qos.spec.coordinator_mem_mb,
                            qos.spec.reducer_mem_mb
                        ),
                    ]);
                    json_rows.push(json!({
                        "workload": spec.label(),
                        "provider": name,
                        "fastest_jct_s": fastest.predicted_jct_s(),
                        "qos_cost_dollars": qos.predicted_cost().dollars(),
                        "qos_plan": qos.summary(),
                    }));
                }
                Err(e) => {
                    rows.push(vec![
                        spec.label(),
                        name.to_string(),
                        "infeasible".into(),
                        e.to_string(),
                        String::new(),
                    ]);
                }
            }
        }
    }
    out.table(
        &[
            "workload",
            "provider",
            "fastest JCT (s)",
            "QoS-opt cost ($)",
            "QoS mem (MB)",
        ],
        &rows,
    );
    out.blank();
    out.line("Provider quotas matter: GCF's 5 memory sizes and lower bandwidth cap,");
    out.line("and Azure's 200-instance scale-out limit, reshape the optimal plans.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_provider_plans_every_sampled_workload() {
        for (name, platform, catalog) in providers() {
            let astra = Astra::new(platform, catalog, Strategy::ExactCsp);
            let job = WorkloadSpec::wordcount_gb(1).into_job();
            let plan = astra
                .plan(&job, Objective::fastest())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(plan.predicted_jct_s() > 0.0);
        }
    }

    #[test]
    fn azure_concurrency_cap_limits_fanout() {
        // Query has 202 objects; Azure's 200-instance limit forbids
        // k_M = 1 (202 mappers).
        let job = WorkloadSpec::QueryUservisits.into_job();
        let astra = Astra::new(
            Platform::azure_functions(),
            PriceCatalog::azure_2020(),
            Strategy::ExactCsp,
        );
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        assert!(plan.spec.objects_per_mapper >= 2, "{}", plan.summary());
        assert!(plan.mappers() <= 200);
    }

    #[test]
    fn gcf_plans_use_only_its_five_tiers() {
        let job = WorkloadSpec::Sort100.into_job();
        let astra = Astra::new(
            Platform::gcp_functions(),
            PriceCatalog::gcp_2020(),
            Strategy::ExactCsp,
        );
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        let tiers = [128u32, 256, 512, 1024, 2048];
        for mem in [
            plan.spec.mapper_mem_mb,
            plan.spec.coordinator_mem_mb,
            plan.spec.reducer_mem_mb,
        ] {
            assert!(tiers.contains(&mem), "{mem} not a GCF tier");
        }
    }
}
