//! Service-layer acceptance run: a 200-job heterogeneous mix submitted
//! through the `astra-service` daemon must produce plans and simulated
//! JCTs/costs bit-identical to the same jobs run serially through the
//! plain `Astra` library API — at every worker-pool size — while the
//! session cache reports a non-zero hit rate.

use std::sync::Arc;
use std::time::Instant;

use astra_core::{Astra, Objective, Plan, Strategy};
use astra_faas::{derive_seed, SimConfig, SimReport};
use astra_mapreduce::simulate;
use astra_model::{JobSpec, Platform, WorkloadProfile};
use astra_pricing::PriceCatalog;
use astra_service::{JobRequest, JobSnapshot, JobStatus, ServiceConfig, ServiceDaemon, SimOptions};
use astra_telemetry::{sinks::InMemoryRecorder, Telemetry};
use serde_json::json;

use crate::output::Output;

/// Jobs in the acceptance mix.
pub const JOBS: usize = 200;
/// Worker-pool sizes swept.
pub const WORKER_POOLS: [usize; 3] = [1, 2, 8];

fn library_planner() -> Astra {
    Astra::new(Platform::aws_lambda(), PriceCatalog::aws_2020(), Strategy::ExactCsp)
}

/// The deterministic 200-job mix: four job families crossed with five
/// objectives and rotating noise/seed/replication settings (including
/// plan-only jobs). Identical shape to the service test-suite mix.
pub fn mixed_requests(n: usize) -> Vec<JobRequest> {
    let planner = library_planner();
    let families: Vec<JobSpec> = vec![
        JobSpec::uniform("mix-small", 6, 2.0, WorkloadProfile::uniform_test()),
        JobSpec::uniform("mix-wide", 10, 1.0, WorkloadProfile::uniform_test()),
        astra_workloads::WorkloadSpec::wordcount_gb(1).into_job(),
        JobSpec::uniform("mix-chunky", 4, 8.0, WorkloadProfile::uniform_test()),
    ];
    (0..n)
        .map(|i| {
            let job = families[i % families.len()].clone();
            let objective = match i % 5 {
                0 => Objective::fastest(),
                1 => Objective::cheapest(),
                2 => Objective::min_time_with_budget_dollars(4.0),
                3 => {
                    let cheapest = planner.plan(&job, Objective::cheapest()).unwrap();
                    Objective::min_cost_with_deadline_s(cheapest.predicted_jct_s() * 1.5)
                }
                _ => Objective::min_time_with_budget_dollars(8.0),
            };
            let sim = SimOptions {
                noise_cv: 0.1 * (i % 3) as f64,
                seed: 1000 + i as u64,
                replications: (i % 3) as u32,
            };
            JobRequest::new(format!("mix-{i}"), job, objective)
                .with_tenant(format!("tenant-{}", i % 2))
                .with_sim(sim)
        })
        .collect()
}

struct Reference {
    plan: Plan,
    reports: Vec<SimReport>,
}

fn reference(request: &JobRequest) -> Reference {
    let plan = library_planner()
        .plan(&request.job, request.objective)
        .expect("mixed requests are feasible");
    let reports = (0..request.sim.replications as u64)
        .map(|rep| {
            let config = SimConfig::deterministic(Platform::aws_lambda())
                .with_noise(request.sim.noise_cv, derive_seed(request.sim.seed, rep));
            simulate(&request.job, &plan, config).expect("reference simulation")
        })
        .collect();
    Reference { plan, reports }
}

/// Bit-level comparison of a daemon snapshot against the serial library
/// reference; returns a description of the first divergence, if any.
fn divergence(snap: &JobSnapshot, reference: &Reference) -> Option<String> {
    if snap.status != JobStatus::Done {
        return Some(format!("status {} ({:?})", snap.status, snap.reason));
    }
    let plan = snap.plan.as_ref()?;
    if plan.spec != reference.plan.spec {
        return Some("plan spec".into());
    }
    if plan.predicted_jct_s.to_bits() != reference.plan.predicted_jct_s().to_bits() {
        return Some("predicted JCT bits".into());
    }
    if plan.predicted_cost != reference.plan.predicted_cost() {
        return Some("predicted cost".into());
    }
    match &snap.sim {
        None if reference.reports.is_empty() => None,
        None => Some("missing sim results".into()),
        Some(sim) => {
            if sim.jct_s.len() != reference.reports.len() {
                return Some("replication count".into());
            }
            for (rep, report) in reference.reports.iter().enumerate() {
                if sim.jct_s[rep].to_bits() != report.jct_s().to_bits() {
                    return Some(format!("sim JCT bits, rep {rep}"));
                }
                if sim.cost[rep] != report.total_cost() {
                    return Some(format!("sim cost, rep {rep}"));
                }
                if sim.events[rep] != report.events {
                    return Some(format!("sim event count, rep {rep}"));
                }
            }
            None
        }
    }
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Service daemon vs serial library: 200-job bit-identity + throughput");
    out.blank();

    let requests = mixed_requests(JOBS);
    let t0 = Instant::now();
    let references: Vec<Reference> = requests.iter().map(reference).collect();
    let serial_s = t0.elapsed().as_secs_f64();
    out.line(format!(
        "serial library reference: {JOBS} jobs planned+simulated in {serial_s:.1}s"
    ));
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for workers in WORKER_POOLS {
        let recorder = Arc::new(InMemoryRecorder::new());
        let config = ServiceConfig::default()
            .with_workers(workers)
            .with_telemetry(Telemetry::new(recorder.clone()));
        let t0 = Instant::now();
        let daemon = ServiceDaemon::start(config);
        let handle = daemon.handle();
        let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
        let snapshots: Vec<JobSnapshot> = ids
            .iter()
            .map(|&id| handle.await_done(id).expect("job vanished"))
            .collect();
        let wall_s = t0.elapsed().as_secs_f64();

        let mismatches: Vec<String> = snapshots
            .iter()
            .zip(&references)
            .filter_map(|(snap, reference)| {
                divergence(snap, reference).map(|d| format!("job {}: {d}", snap.id))
            })
            .collect();
        let stats = handle.cache_stats();
        let hits = recorder.counter_value("service.cache.hits");
        let lookups = hits + recorder.counter_value("service.cache.misses");
        let hit_rate = hits as f64 / lookups.max(1) as f64;
        drop(handle);
        daemon.shutdown();

        rows.push(vec![
            workers.to_string(),
            format!("{wall_s:.1}s"),
            format!("{:.1}", JOBS as f64 / wall_s),
            format!("{:.2}x", serial_s / wall_s),
            if mismatches.is_empty() {
                "bit-identical".to_string()
            } else {
                format!("{} DIVERGED", mismatches.len())
            },
            format!("{:.0}%", hit_rate * 100.0),
        ]);
        json_rows.push(json!({
            "workers": workers,
            "wall_s": wall_s,
            "jobs_per_s": JOBS as f64 / wall_s,
            "speedup_vs_serial": serial_s / wall_s,
            "mismatches": mismatches,
            "cache_hits": hits,
            "cache_lookups": lookups,
            "cache_hit_rate": hit_rate,
            "cache_evictions": stats.evictions,
        }));
        for m in mismatches.iter().take(5) {
            out.line(format!("  DIVERGENCE at {workers} workers: {m}"));
        }
        assert!(hits > 0, "session cache never hit at {workers} workers");
    }

    out.table(
        &["workers", "wall", "jobs/s", "speedup", "results", "cache hits"],
        &rows,
    );
    out.blank();
    out.line("Every worker-pool size must report 'bit-identical': the daemon");
    out.line("reorders execution, never results. The cache-hit column counts");
    out.line("planner-session reuse across the 200-job mix (admission planning");
    out.line("at submit warms the session each worker later reuses).");
    out.record("serial_s", json!(serial_s));
    out.record("jobs", json!(JOBS));
    out.record("pools", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down acceptance run: the daemon matches the serial
    /// library bit-for-bit and the cache reports hits.
    #[test]
    fn small_mix_is_bit_identical_with_cache_hits() {
        let requests = mixed_requests(10);
        let references: Vec<Reference> = requests.iter().map(reference).collect();
        let daemon = ServiceDaemon::start(ServiceConfig::default().with_workers(3));
        let handle = daemon.handle();
        let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
        for (&id, reference) in ids.iter().zip(&references) {
            let snap = handle.await_done(id).unwrap();
            assert_eq!(divergence(&snap, reference), None, "job {id}");
        }
        assert!(handle.cache_stats().hits > 0);
    }
}
