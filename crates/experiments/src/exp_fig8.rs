//! Fig. 8: QoS-constrained cost minimization — Astra versus Baselines
//! 1–3 on all five workloads.

use astra_baselines::Baseline;
use astra_core::{Objective, Plan};
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness::{self, Measured};
use crate::output::Output;

/// The QoS threshold as a multiple of the fastest achievable JCT. 2x is
/// a realistic latency SLO with headroom — binding enough that the
/// cheapest plan (often 10x slower) is excluded.
pub const DEADLINE_FRAC: f64 = 2.0;

/// One workload's comparison.
#[derive(Debug)]
pub struct QosComparison {
    /// Workload.
    pub spec: WorkloadSpec,
    /// The completion-time threshold (seconds).
    pub deadline_s: f64,
    /// Astra's plan under the threshold.
    pub astra_plan: Plan,
    /// Astra measured.
    pub astra: Measured,
    /// Baselines measured.
    pub baselines: Vec<(&'static str, Measured)>,
}

/// Plan and measure one workload under the QoS threshold.
pub fn compare(spec: WorkloadSpec) -> QosComparison {
    let job = spec.into_job();
    // One planner session serves the bounds probes and the constrained
    // plan — three queries, one DAG build.
    let session = harness::session(&job);
    let bounds = harness::bounds_on(&session);
    let deadline_s = harness::deadline_times_fastest(&bounds, DEADLINE_FRAC);
    let astra_plan = session
        .plan(Objective::min_cost_with_deadline_s(deadline_s))
        .expect("deadline above the fastest plan is feasible");
    let baseline_plans: Vec<(&'static str, Plan)> = Baseline::all()
        .into_iter()
        .map(|b| (b.name, harness::evaluate_relaxed(&job, b.spec_for(&job))))
        .collect();
    // Astra and all three baselines share one parallel measurement batch.
    let mut cases = vec![(&job, &astra_plan)];
    cases.extend(baseline_plans.iter().map(|(_, p)| (&job, p)));
    let mut measured = harness::measure_batch(&cases, harness::NOISE_CV, &harness::SEEDS);
    let astra = measured.remove(0);
    let baselines = baseline_plans
        .iter()
        .zip(measured)
        .map(|(&(name, _), m)| (name, m))
        .collect();
    QosComparison {
        spec,
        deadline_s,
        astra_plan,
        astra,
        baselines,
    }
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Fig. 8: cost under a completion-time threshold — Astra vs Baselines 1-3");
    out.line(format!(
        "(threshold = {DEADLINE_FRAC} x fastest achievable JCT; 5 noisy seeds each)"
    ));
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in WorkloadSpec::paper_suite() {
        let c = compare(spec);
        let best_baseline = c
            .baselines
            .iter()
            .map(|(_, m)| m.cost.dollars())
            .fold(f64::INFINITY, f64::min);
        rows.push(vec![
            spec.label(),
            format!("{:.5}", c.astra.cost.dollars()),
            format!("{:.5}", c.baselines[0].1.cost.dollars()),
            format!("{:.5}", c.baselines[1].1.cost.dollars()),
            format!("{:.5}", c.baselines[2].1.cost.dollars()),
            format!(
                "{:.1}%",
                harness::improvement_pct(c.astra.cost.dollars(), best_baseline)
            ),
            format!("({:.1}s, {:.1}s)", c.deadline_s, c.astra.jct_s),
        ]);
        json_rows.push(json!({
            "workload": spec.label(),
            "deadline_s": c.deadline_s,
            "astra_cost_dollars": c.astra.cost.dollars(),
            "astra_jct_s": c.astra.jct_s,
            "baselines": c.baselines.iter().map(|(n, m)| json!({"name": n, "cost": m.cost.dollars(), "jct_s": m.jct_s})).collect::<Vec<_>>(),
            "saving_vs_best_baseline_pct": harness::improvement_pct(c.astra.cost.dollars(), best_baseline),
            "plan": c.astra_plan.summary(),
        }));
    }
    out.table(
        &[
            "workload",
            "Astra ($)",
            "B1 ($)",
            "B2 ($)",
            "B3 ($)",
            "vs best",
            "(threshold, Astra JCT)",
        ],
        &rows,
    );
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astra_is_cheapest_on_wordcount_1gb_and_meets_deadline() {
        let c = compare(WorkloadSpec::wordcount_gb(1));
        for (name, m) in &c.baselines {
            assert!(
                c.astra.cost < m.cost,
                "Astra {} not cheaper than {name} {}",
                c.astra.cost,
                m.cost
            );
        }
        // Predicted JCT honours the threshold; measured (noisy, with cold
        // starts the model ignores) must stay close.
        assert!(c.astra_plan.predicted_jct_s() <= c.deadline_s + 1e-9);
        assert!(c.astra.jct_s <= c.deadline_s * 1.3);
    }

    #[test]
    fn astra_undercuts_every_baseline_by_a_clear_margin() {
        // The paper reports Astra at least ~17% cheaper than the best
        // baseline per workload. (Note: in the paper's measurements the
        // all-128MB Baseline 2 was the cheapest baseline; under our
        // calibration the 128 MB CPU-efficiency penalty makes Baseline 1
        // the cheapest — EXPERIMENTS.md discusses the flip. The headline
        // claim, Astra cheapest of all, holds either way.)
        let c = compare(WorkloadSpec::wordcount_gb(1));
        let best = c
            .baselines
            .iter()
            .map(|(_, m)| m.cost.dollars())
            .fold(f64::INFINITY, f64::min);
        let saving = crate::harness::improvement_pct(c.astra.cost.dollars(), best);
        assert!(saving > 10.0, "saving only {saving:.1}%");
    }
}
