//! Fig. 7 + Table III: budget-constrained performance optimization —
//! Astra versus Baselines 1–3 on all five workloads, plus the resource
//! allocations Astra chose.

use astra_baselines::Baseline;
use astra_core::{Objective, Plan, ReduceSpec};
use astra_model::JobSpec;
use astra_pricing::Money;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness::{self, Measured};
use crate::output::Output;

/// The Fig. 7 budget: what the most expensive baseline is predicted to
/// spend. This matches the paper's framing — given the money a
/// practitioner's hand configuration already costs, Astra buys strictly
/// more performance — and guarantees the comparison is apples-to-apples
/// (every baseline configuration is inside Astra's search space, so with
/// this budget the planner's choice can only be faster).
pub fn fig7_budget(job: &JobSpec) -> Money {
    Baseline::all()
        .into_iter()
        .map(|b| harness::evaluate_relaxed(job, b.spec_for(job)).predicted_cost())
        .max()
        .expect("three baselines")
}

/// One workload's comparison result.
#[derive(Debug)]
pub struct Comparison {
    /// The workload.
    pub spec: WorkloadSpec,
    /// The binding budget.
    pub budget: Money,
    /// Astra's plan.
    pub astra_plan: Plan,
    /// Astra measured.
    pub astra: Measured,
    /// `(name, measured)` for Baselines 1–3.
    pub baselines: Vec<(&'static str, Measured)>,
}

/// Plan and measure one workload under a binding budget.
pub fn compare(spec: WorkloadSpec) -> Comparison {
    let job = spec.into_job();
    let budget = fig7_budget(&job);
    let astra_plan = harness::astra()
        .plan(&job, Objective::MinimizeTime { budget })
        .expect("the baselines' own spend is a feasible budget");
    let baseline_plans: Vec<(&'static str, Plan)> = Baseline::all()
        .into_iter()
        .map(|b| (b.name, harness::evaluate_relaxed(&job, b.spec_for(&job))))
        .collect();
    // Astra and all three baselines share one parallel measurement batch.
    let mut cases = vec![(&job, &astra_plan)];
    cases.extend(baseline_plans.iter().map(|(_, p)| (&job, p)));
    let mut measured = harness::measure_batch(&cases, harness::NOISE_CV, &harness::SEEDS);
    let astra = measured.remove(0);
    let baselines = baseline_plans
        .iter()
        .zip(measured)
        .map(|(&(name, _), m)| (name, m))
        .collect();
    Comparison {
        spec,
        budget,
        astra_plan,
        astra,
        baselines,
    }
}

fn table3_row(label: &str, job: &JobSpec, plan: &Plan) -> Vec<String> {
    let _ = job;
    vec![
        label.to_string(),
        format!(
            "{}/{}/{}",
            plan.spec.mapper_mem_mb, plan.spec.coordinator_mem_mb, plan.spec.reducer_mem_mb
        ),
        plan.spec.objects_per_mapper.to_string(),
        match &plan.spec.reduce_spec {
            ReduceSpec::PerReducer(k) => k.to_string(),
            ReduceSpec::ExplicitSteps(v) => format!("{v:?}"),
        },
        plan.mappers().to_string(),
        plan.reducers().to_string(),
        plan.reduce_steps().to_string(),
    ]
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Fig. 7: JCT under a budget — Astra vs Baselines 1-3");
    out.line("(budget = the most expensive baseline's predicted spend; 5 noisy seeds each)");
    out.blank();

    let mut fig7_rows = Vec::new();
    let mut table3_rows = Vec::new();
    let mut phase_rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut json_phases = Vec::new();
    let mut notes: Vec<String> = Vec::new();

    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let c = compare(spec);
        let best_baseline = c
            .baselines
            .iter()
            .map(|(_, m)| m.jct_s)
            .fold(f64::INFINITY, f64::min);
        fig7_rows.push(vec![
            spec.label(),
            format!("{:.1}", c.astra.jct_s),
            format!("{:.1}", c.baselines[0].1.jct_s),
            format!("{:.1}", c.baselines[1].1.jct_s),
            format!("{:.1}", c.baselines[2].1.jct_s),
            format!("{:.1}%", harness::improvement_pct(c.astra.jct_s, best_baseline)),
            format!("({}, {})", c.budget, c.astra.cost),
        ]);
        table3_rows.push(table3_row(&spec.label(), &job, &c.astra_plan));
        // Exclusive phase partition of the last seed's run: where did
        // the makespan go? Rows sum to 100 % by construction.
        let breakdown = c.astra.last_report.phase_breakdown();
        let jct = breakdown.total().as_secs_f64();
        let pct = |d: astra_simcore::SimDuration| {
            if jct > 0.0 { 100.0 * d.as_secs_f64() / jct } else { 0.0 }
        };
        let mut phase_row = vec![spec.label(), format!("{jct:.1}")];
        phase_row.extend(
            breakdown
                .rows()
                .iter()
                .map(|&(_, d)| format!("{:.1}%", pct(d))),
        );
        phase_rows.push(phase_row);
        json_phases.push(json!({
            "workload": spec.label(),
            "jct_s": jct,
            "phases": breakdown
                .rows()
                .iter()
                .map(|&(label, d)| json!({"phase": label, "seconds": d.as_secs_f64(), "pct": pct(d)}))
                .collect::<Vec<_>>(),
        }));
        for (name, m) in &c.baselines {
            if !m.timeout_violations.is_empty() {
                notes.push(format!(
                    "{} / {}: {} lambda(s) exceed the 900 s AWS timeout ({}) — \
                     a real deployment would have been killed; simulated with a \
                     relaxed timeout and reported here",
                    spec.label(),
                    name,
                    m.timeout_violations.len(),
                    m.timeout_violations
                        .first()
                        .cloned()
                        .unwrap_or_default()
                ));
            }
        }
        json_rows.push(json!({
            "workload": spec.label(),
            "budget_dollars": c.budget.dollars(),
            "astra_jct_s": c.astra.jct_s,
            "astra_cost_dollars": c.astra.cost.dollars(),
            "baseline_jct_s": c.baselines.iter().map(|(n, m)| json!({"name": n, "jct_s": m.jct_s, "cost": m.cost.dollars()})).collect::<Vec<_>>(),
            "improvement_vs_best_baseline_pct": harness::improvement_pct(c.astra.jct_s, best_baseline),
            "plan": c.astra_plan.summary(),
        }));
    }

    out.table(
        &[
            "workload",
            "Astra (s)",
            "B1 (s)",
            "B2 (s)",
            "B3 (s)",
            "vs best",
            "(budget, Astra cost)",
        ],
        &fig7_rows,
    );
    out.blank();

    out.heading("Table III: resource allocations achieved by Astra (perf-opt)");
    out.table(
        &[
            "workload",
            "mem map/co/red (MB)",
            "obj/mapper",
            "obj/reducer",
            "mappers",
            "reducers",
            "steps",
        ],
        &table3_rows,
    );
    out.blank();
    out.heading("Phase breakdown of Astra's runs (exclusive share of JCT, last seed)");
    out.line("(priority when phases overlap: cold > GET > PUT > compute > wait > queued)");
    out.table(
        &[
            "workload", "JCT (s)", "cold", "get", "put", "compute", "wait", "queued", "idle",
        ],
        &phase_rows,
    );
    if !notes.is_empty() {
        out.blank();
        out.line("Timeout notes:");
        for n in &notes {
            out.line(format!("  - {n}"));
        }
    }
    out.record("rows", json!(json_rows));
    out.record("phase_breakdown", json!(json_phases));
    out.record("timeout_notes", json!(notes));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's core claim on a representative workload: Astra beats
    /// every baseline under a binding budget without exceeding it.
    #[test]
    fn astra_wins_wordcount_1gb_within_budget() {
        let c = compare(WorkloadSpec::wordcount_gb(1));
        for (name, m) in &c.baselines {
            assert!(
                c.astra.jct_s < m.jct_s,
                "Astra {:.1}s not faster than {name} {:.1}s",
                c.astra.jct_s,
                m.jct_s
            );
        }
        // Predicted cost respects the budget; measured cost is noisy but
        // must stay in the ballpark.
        assert!(c.astra_plan.predicted_cost() <= c.budget);
        assert!(c.astra.cost.dollars() <= c.budget.dollars() * 1.25);
    }

    #[test]
    fn astra_wins_query_within_budget() {
        let c = compare(WorkloadSpec::QueryUservisits);
        let best = c
            .baselines
            .iter()
            .map(|(_, m)| m.jct_s)
            .fold(f64::INFINITY, f64::min);
        assert!(harness::improvement_pct(c.astra.jct_s, best) > 0.0);
    }
}
