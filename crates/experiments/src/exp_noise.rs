//! Ablation (DESIGN.md `noise_sensitivity`): how robust are Astra's
//! plans to runtime variance and container failures the model does not
//! see?
//!
//! The planner commits to a configuration using noise-free predictions;
//! real lambdas are noisy and occasionally crash-and-retry. This
//! experiment sweeps the simulator's noise CV and failure rate and
//! reports how often the QoS-constrained plan still meets its deadline.

use astra_core::Objective;
use astra_faas::SimConfig;
use astra_mapreduce::simulate;
use astra_simcore::summary::Summary;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Noise levels swept.
pub const NOISE_LEVELS: [f64; 4] = [0.0, 0.1, 0.25, 0.5];
/// Failure rates swept.
pub const FAILURE_RATES: [f64; 3] = [0.0, 0.02, 0.10];
/// Runs per cell.
pub const RUNS: u64 = 20;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Ablation: plan robustness under runtime noise and failures");
    out.line("(Wordcount 1GB, QoS plan at a 2x-fastest deadline; 20 seeded runs per cell)");
    out.blank();

    let spec = WorkloadSpec::wordcount_gb(1);
    let job = spec.into_job();
    let astra = harness::astra();
    let fastest = astra.plan(&job, Objective::fastest()).unwrap();
    let deadline = fastest.predicted_jct_s() * 2.0;
    let plan = astra
        .plan(&job, Objective::min_cost_with_deadline_s(deadline))
        .unwrap();
    out.line(format!(
        "plan: {} | deadline {:.1}s",
        plan.summary(),
        deadline
    ));
    out.blank();

    let mut relaxed = harness::platform();
    relaxed.timeout_s = f64::INFINITY;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for noise in NOISE_LEVELS {
        for failure in FAILURE_RATES {
            let mut jcts = Vec::new();
            let mut met = 0u64;
            let mut crashes = 0u64;
            for seed in 0..RUNS {
                let report = simulate(
                    &job,
                    &plan,
                    SimConfig::deterministic(relaxed.clone()).with_noise(noise, 1000 + seed).with_failures(failure, 2),
                )
                .expect("retries absorb failures at these rates");
                if report.jct_s() <= deadline {
                    met += 1;
                }
                crashes += report.crashes;
                jcts.push(report.jct_s());
            }
            let stats = Summary::of(&jcts).unwrap();
            rows.push(vec![
                format!("{noise:.2}"),
                format!("{failure:.2}"),
                format!("{:.1}", stats.mean),
                format!("{:.1}", stats.max),
                format!("{:.0}%", met as f64 / RUNS as f64 * 100.0),
                crashes.to_string(),
            ]);
            json_rows.push(json!({
                "noise_cv": noise,
                "failure_rate": failure,
                "mean_jct_s": stats.mean,
                "max_jct_s": stats.max,
                "deadline_met_pct": met as f64 / RUNS as f64 * 100.0,
                "total_crashes": crashes,
            }));
        }
    }
    out.table(
        &[
            "noise CV",
            "failure rate",
            "mean JCT (s)",
            "max JCT (s)",
            "deadline met",
            "crashes",
        ],
        &rows,
    );
    out.blank();
    out.line("Cold starts + noise push measured JCT past the noise-free prediction,");
    out.line("so tight deadlines need planner headroom — the gap the paper's");
    out.line("'dynamically adjusted and refined' modelling remark points at.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_runs_are_identical_and_fast() {
        let spec = WorkloadSpec::wordcount_gb(1);
        let job = spec.into_job();
        let astra = harness::astra();
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        let mut relaxed = harness::platform();
        relaxed.timeout_s = f64::INFINITY;
        let run = |seed| {
            simulate(
                &job,
                &plan,
                SimConfig::deterministic(relaxed.clone()).with_noise(0.0, seed),
            )
            .unwrap()
            .jct_s()
        };
        assert_eq!(run(1), run(2), "no noise, no seed dependence");
    }

    #[test]
    fn failures_slow_things_down_but_jobs_complete() {
        let spec = WorkloadSpec::wordcount_gb(1);
        let job = spec.into_job();
        let astra = harness::astra();
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        let mut relaxed = harness::platform();
        relaxed.timeout_s = f64::INFINITY;
        let run = |failure_rate| {
            simulate(
                &job,
                &plan,
                SimConfig::deterministic(relaxed.clone())
                    .with_noise(0.0, 5)
                    .with_failures(failure_rate, 2),
            )
            .unwrap()
        };
        let clean = run(0.0);
        let faulty = run(0.15);
        assert_eq!(clean.crashes, 0);
        assert!(faulty.crashes > 0);
        assert!(faulty.jct_s() >= clean.jct_s());
    }
}
