//! Fig. 1 + Fig. 2: job completion time and monetary cost versus the
//! number of objects processed per lambda, for three memory allocations.
//!
//! The motivation experiment of Sec. II-C: a MapReduce job over 10 input
//! objects, 2 MB total. Both `k_M` and `k_R` are set to the swept `k`.
//! Expected shapes (paper): JCT and cost fall from k = 1 to ~4 (fewer
//! reduce steps, fewer lambdas/requests) and rise past 5 (skewed object
//! distribution makes a straggler).

use astra_core::{Plan, PlanSpec, ReduceSpec};
use astra_model::{JobSpec, WorkloadProfile};
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Memory allocations swept in the paper's Figs. 1–2.
pub const MEMORIES: [u32; 3] = [128, 1536, 3008];
/// Objects-per-lambda sweep range.
pub const K_RANGE: std::ops::RangeInclusive<usize> = 1..=9;

/// The motivation job: 10 objects, 2 MB total, wordcount-like compute.
pub fn motivation_job() -> JobSpec {
    let profile = WorkloadProfile {
        name: "motivation".to_string(),
        // Small objects: per-request latency and reduce-step count
        // dominate, exactly the regime of the paper's toy example.
        map_secs_per_mb_128: 0.9,
        reduce_secs_per_mb_128: 0.6,
        coord_secs_per_mb_128: 0.002,
        shuffle_ratio: 1.0,
        reduce_ratio: 1.0,
        // A 1 MB state object would dwarf the 0.2 MB data objects; the
        // motivation experiment's state lines are tiny.
        state_object_mb: 0.01,
        single_pass_reduce: false,
    };
    JobSpec::uniform("motivation", 10, 0.2, profile)
}

/// Evaluate one sweep point (model + measured).
pub fn sweep_point(job: &JobSpec, k: usize, mem: u32) -> (Plan, harness::Measured) {
    let spec = PlanSpec {
        mapper_mem_mb: mem,
        coordinator_mem_mb: mem,
        reducer_mem_mb: mem,
        objects_per_mapper: k,
        reduce_spec: ReduceSpec::PerReducer(k),
    };
    let plan = harness::evaluate_relaxed(job, spec);
    let measured = harness::measure(job, &plan);
    (plan, measured)
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    let job = motivation_job();
    out.heading("Fig. 1 / Fig. 2: JCT and cost vs objects per lambda (10 objects, 2 MB total)");
    out.blank();

    // Evaluate all 27 plans up front, then measure the whole k × memory
    // grid as one parallel batch (results come back in grid order).
    let grid: Vec<(usize, u32, Plan)> = K_RANGE
        .flat_map(|k| MEMORIES.iter().map(move |&mem| (k, mem)))
        .map(|(k, mem)| {
            let spec = PlanSpec {
                mapper_mem_mb: mem,
                coordinator_mem_mb: mem,
                reducer_mem_mb: mem,
                objects_per_mapper: k,
                reduce_spec: ReduceSpec::PerReducer(k),
            };
            (k, mem, harness::evaluate_relaxed(&job, spec))
        })
        .collect();
    let cases: Vec<_> = grid.iter().map(|(_, _, plan)| (&job, plan)).collect();
    let measurements = harness::measure_batch(&cases, harness::NOISE_CV, &harness::SEEDS);

    let mut jct_rows = Vec::new();
    let mut cost_rows = Vec::new();
    let mut json_points = Vec::new();
    for ((k, mem, plan), measured) in grid.iter().zip(&measurements) {
        if *mem == MEMORIES[0] {
            jct_rows.push(vec![k.to_string()]);
            cost_rows.push(vec![k.to_string()]);
        }
        jct_rows.last_mut().unwrap().push(format!("{:.2}", measured.jct_s));
        cost_rows
            .last_mut()
            .unwrap()
            .push(format!("{:.6}", measured.cost.dollars()));
        json_points.push(json!({
            "k": *k,
            "memory_mb": *mem,
            "jct_s": measured.jct_s,
            "cost_dollars": measured.cost.dollars(),
            "predicted_jct_s": plan.predicted_jct_s(),
            "predicted_cost_dollars": plan.predicted_cost().dollars(),
        }));
    }

    out.line("Fig. 1 — job completion time (s), measured on the simulator:");
    out.table(&["objects/lambda", "128MB", "1536MB", "3008MB"], &jct_rows);
    out.blank();
    out.line("Fig. 2 — monetary cost ($):");
    out.table(&["objects/lambda", "128MB", "1536MB", "3008MB"], &cost_rows);
    out.record("points", json!(json_points));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jct(k: usize, mem: u32) -> f64 {
        sweep_point(&motivation_job(), k, mem).1.jct_s
    }

    /// The paper's headline shape: decreasing from k=1 to k=4.
    #[test]
    fn jct_falls_from_k1_to_k4() {
        let job = motivation_job();
        for &mem in &MEMORIES {
            let j1 = sweep_point(&job, 1, mem).1.jct_s;
            let j4 = sweep_point(&job, 4, mem).1.jct_s;
            assert!(j4 < j1, "mem {mem}: k=4 ({j4}) not faster than k=1 ({j1})");
        }
    }

    /// Skew penalty: k=9 (objects split 9/1) is slower than k=5 (5/5).
    #[test]
    fn skew_raises_jct_past_k5() {
        assert!(jct(9, 128) > jct(5, 128));
    }

    /// Cost falls from k=1 to k=4 too (fewer lambdas and requests).
    #[test]
    fn cost_falls_from_k1_to_k4() {
        let job = motivation_job();
        let c1 = sweep_point(&job, 1, 128).1.cost;
        let c4 = sweep_point(&job, 4, 128).1.cost;
        assert!(c4 < c1);
    }

    /// Fig. 3's companion observation: 3008 MB beats 128 MB on time.
    #[test]
    fn more_memory_is_faster() {
        assert!(jct(2, 3008) < jct(2, 128));
    }
}
