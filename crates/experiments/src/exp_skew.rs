//! Extension experiment: input-size skew and LPT mapper assignment.
//!
//! Sec. II-C observes that the framework's consecutive `k`-at-a-time
//! object assignment creates stragglers once the distribution is skewed.
//! Astra's model *prices* that skew faithfully (it tracks per-object
//! sizes through every phase), so a natural extension is to *remove* it:
//! assign objects to mappers by Longest-Processing-Time-first instead.
//! This experiment quantifies the straggler penalty and the LPT win on
//! jobs with lognormally skewed object sizes.

use astra_core::Plan;
use astra_model::distribute::assign_lpt;
use astra_model::perf::mapper_phase_with_assignment;
use astra_model::JobSpec;
use astra_simcore::NoiseModel;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// A 1 GB wordcount-profile job whose 20 object sizes are lognormally
/// skewed with the given CV (seeded; total size preserved).
pub fn skewed_job(cv: f64, seed: u64) -> JobSpec {
    let n = 20;
    let total_mb = 1024.0;
    let mut noise = NoiseModel::new(seed, cv);
    let mut sizes: Vec<f64> = (0..n).map(|_| noise.factor()).collect();
    let sum: f64 = sizes.iter().sum();
    for s in &mut sizes {
        *s *= total_mb / sum;
    }
    JobSpec {
        name: format!("skewed-cv{cv:.1}"),
        object_sizes_mb: sizes,
        profile: astra_workloads::profiles::wordcount(),
    }
}

/// Mapper-phase durations under consecutive vs LPT assignment for the
/// same mapper count. Returns `(consecutive_s, lpt_s)`.
pub fn compare_assignment(job: &JobSpec, k_m: usize, mem: u32) -> (f64, f64) {
    let platform = harness::platform();
    let consecutive =
        astra_model::perf::mapper_phase(job, &platform, mem, k_m);
    let workers = consecutive.per_mapper_secs.len();
    let lpt_assign = assign_lpt(&job.object_sizes_mb, workers);
    let lpt = mapper_phase_with_assignment(job, &platform, mem, &lpt_assign);
    (consecutive.duration_s, lpt.duration_s)
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Extension: input skew and LPT mapper assignment");
    out.line("(1 GB wordcount in 20 objects, lognormal size skew; mapper phase T1, model)");
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for cv in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let job = skewed_job(cv, 7);
        let max_obj = job
            .object_sizes_mb
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        for (k_m, mem) in [(2usize, 1024u32), (4, 1024)] {
            let (cons, lpt) = compare_assignment(&job, k_m, mem);
            rows.push(vec![
                format!("{cv:.2}"),
                format!("{max_obj:.0}"),
                format!("{k_m}"),
                format!("{cons:.1}"),
                format!("{lpt:.1}"),
                format!("{:.1}%", (1.0 - lpt / cons) * 100.0),
            ]);
            json_rows.push(json!({
                "size_cv": cv,
                "largest_object_mb": max_obj,
                "k_m": k_m,
                "consecutive_t1_s": cons,
                "lpt_t1_s": lpt,
                "t1_reduction_pct": (1.0 - lpt / cons) * 100.0,
            }));
        }
    }
    out.table(
        &[
            "size CV",
            "largest obj (MB)",
            "k_M",
            "consecutive T1 (s)",
            "LPT T1 (s)",
            "LPT gain",
        ],
        &rows,
    );
    out.blank();
    out.line("Uniform inputs (CV 0): assignments coincide. The more skewed the");
    out.line("objects, the longer the consecutive straggler and the bigger the LPT");
    out.line("win — bounded by the indivisible largest object.");
    out.record("rows", json!(json_rows));

    // Planner-facing check: the model prices the skew — same total size,
    // but the skewed job's predicted JCT reflects its straggler.
    let uniform = astra_workloads::WorkloadSpec::wordcount_gb(1).into_job();
    let skewed = skewed_job(1.0, 7);
    let astra = harness::astra();
    let up: Plan = astra.plan(&uniform, astra_core::Objective::fastest()).unwrap();
    let sp: Plan = astra.plan(&skewed, astra_core::Objective::fastest()).unwrap();
    out.blank();
    out.line(format!("uniform job fastest plan: {}", up.summary()));
    out.line(format!("skewed  job fastest plan: {}", sp.summary()));
    out.record("uniform_plan", json!(up.summary()));
    out.record("skewed_plan", json!(sp.summary()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_never_loses_and_wins_under_skew() {
        for cv in [0.5, 1.0, 2.0] {
            let job = skewed_job(cv, 3);
            let (cons, lpt) = compare_assignment(&job, 2, 1024);
            assert!(lpt <= cons + 1e-9, "cv {cv}: lpt {lpt} worse than {cons}");
        }
        // Strong skew: a strict win.
        let job = skewed_job(2.0, 3);
        let (cons, lpt) = compare_assignment(&job, 2, 1024);
        assert!(lpt < cons * 0.98, "cv 2.0: lpt {lpt} vs cons {cons}");
    }

    #[test]
    fn uniform_inputs_tie() {
        let job = skewed_job(0.0, 1);
        let (cons, lpt) = compare_assignment(&job, 4, 512);
        assert!((cons - lpt).abs() < 1e-9);
    }

    #[test]
    fn skewed_jobs_preserve_total_size() {
        for cv in [0.25, 1.0, 2.0] {
            let job = skewed_job(cv, 9);
            assert!((job.total_mb() - 1024.0).abs() < 1e-6);
            assert_eq!(job.num_objects(), 20);
        }
    }
}
