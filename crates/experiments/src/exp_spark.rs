//! Sec. V Discussion: "Astra achieves at least 92 % cost reduction
//! without performance degradation over VM-based vanilla Spark" for
//! Wordcount and a SQL aggregation query.

use astra_baselines::SparkVmModel;
use astra_core::Objective;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Discussion: Astra vs VM-based vanilla Spark (cost, hourly VM billing)");
    out.blank();

    let spark = SparkVmModel::paper_setup();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in [WorkloadSpec::wordcount_gb(1), WorkloadSpec::QueryUservisits] {
        let job = spec.into_job();
        let spark_jct = spark.jct_s(&job);
        let spark_cost = spark.cost(&job);
        // "Without performance degradation": Astra minimizes cost subject
        // to matching Spark's completion time.
        let plan = harness::astra()
            .plan(&job, Objective::min_cost_with_deadline_s(spark_jct))
            .expect("matching Spark's JCT is feasible");
        let astra = harness::measure(&job, &plan);
        let saving = harness::improvement_pct(astra.cost.dollars(), spark_cost.dollars());
        rows.push(vec![
            spec.label(),
            format!("{:.1}", astra.jct_s),
            format!("{:.1}", spark_jct),
            format!("{:.5}", astra.cost.dollars()),
            format!("{:.3}", spark_cost.dollars()),
            format!("{saving:.1}%"),
        ]);
        json_rows.push(json!({
            "workload": spec.label(),
            "astra_jct_s": astra.jct_s,
            "spark_jct_s": spark_jct,
            "astra_cost_dollars": astra.cost.dollars(),
            "spark_cost_dollars": spark_cost.dollars(),
            "cost_saving_pct": saving,
        }));
    }
    out.table(
        &[
            "workload",
            "Astra JCT (s)",
            "Spark JCT (s)",
            "Astra $",
            "Spark $",
            "saving",
        ],
        &rows,
    );
    out.blank();
    out.line("Paper claim: >= 92% cost reduction without performance degradation.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_at_least_92_percent() {
        let spark = SparkVmModel::paper_setup();
        for spec in [WorkloadSpec::wordcount_gb(1), WorkloadSpec::QueryUservisits] {
            let job = spec.into_job();
            let spark_cost = spark.cost(&job).dollars();
            let plan = harness::astra()
                .plan(&job, Objective::min_cost_with_deadline_s(spark.jct_s(&job)))
                .unwrap();
            let astra = harness::measure_with(&job, &plan, 0.0, &[1]);
            let saving = harness::improvement_pct(astra.cost.dollars(), spark_cost);
            assert!(saving >= 92.0, "{}: saving only {saving:.1}%", spec.label());
        }
    }
}
