//! Extension experiment (paper Discussion): S3 versus an ElastiCache-like
//! in-memory tier for intermediate data.
//!
//! The Locus observation this reproduces: a provisioned cache removes
//! per-request latency and per-request charges from the shuffle path —
//! a large win for shuffle-heavy jobs (Sort) — but adds rent for the
//! whole job duration, which a shuffle-light job (Wordcount) cannot
//! amortise.

use astra_core::{Astra, Objective, Strategy};
use astra_model::Platform;
use astra_pricing::PriceCatalog;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Plan and measure one workload on a platform variant.
fn best_on(platform: Platform, spec: WorkloadSpec) -> (f64, f64, String) {
    let job = spec.into_job();
    let astra = Astra::new(platform.clone(), PriceCatalog::aws_2020(), Strategy::ExactCsp);
    // Compare at matched QoS: cheapest plan within 2x of the S3-fastest.
    let fastest_s3 = harness::astra().plan(&job, Objective::fastest()).unwrap();
    let deadline = fastest_s3.predicted_jct_s() * 2.0;
    let plan = astra
        .plan(&job, Objective::min_cost_with_deadline_s(deadline))
        .expect("deadline feasible on both platforms");
    // Measure on the matching simulator platform.
    let mut relaxed = platform;
    relaxed.timeout_s = f64::INFINITY;
    let mut jct = 0.0;
    let mut cost = 0.0;
    for &seed in &harness::SEEDS {
        let report = astra_mapreduce::simulate(
            &job,
            &plan,
            astra_faas::SimConfig::deterministic(relaxed.clone())
                .with_noise(harness::NOISE_CV, seed),
        )
        .expect("simulates");
        jct += report.jct_s();
        cost += report.total_cost().dollars();
    }
    let n = harness::SEEDS.len() as f64;
    (jct / n, cost / n, plan.summary())
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Extension: intermediate data on S3 vs an ElastiCache-like tier");
    out.line("(cost-optimal plans at a matched 2x-fastest QoS threshold; 5 noisy seeds)");
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in [
        WorkloadSpec::wordcount_gb(1),
        WorkloadSpec::wordcount_gb(20),
        WorkloadSpec::Sort100,
        WorkloadSpec::QueryUservisits,
    ] {
        let (s3_jct, s3_cost, _) = best_on(harness::platform(), spec);
        let (cache_jct, cache_cost, plan) =
            best_on(harness::platform().with_elasticache(), spec);
        rows.push(vec![
            spec.label(),
            format!("{s3_jct:.1}"),
            format!("{cache_jct:.1}"),
            format!("{s3_cost:.5}"),
            format!("{cache_cost:.5}"),
            format!("{:+.1}%", (cache_cost / s3_cost - 1.0) * 100.0),
        ]);
        json_rows.push(json!({
            "workload": spec.label(),
            "s3_jct_s": s3_jct,
            "cache_jct_s": cache_jct,
            "s3_cost_dollars": s3_cost,
            "cache_cost_dollars": cache_cost,
            "cache_plan": plan,
        }));
    }
    out.table(
        &[
            "workload",
            "S3 JCT (s)",
            "cache JCT (s)",
            "S3 $",
            "cache $",
            "cache cost delta",
        ],
        &rows,
    );
    out.blank();
    out.line("Expected shape (Locus): the cache speeds up request-bound shuffles");
    out.line("but its rent penalises short or shuffle-light jobs.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_speeds_up_the_shuffle_heavy_sort() {
        let (s3_jct, _, _) = best_on(harness::platform(), WorkloadSpec::Sort100);
        let (cache_jct, _, _) = best_on(
            harness::platform().with_elasticache(),
            WorkloadSpec::Sort100,
        );
        // At matched QoS both meet the deadline; the cache platform must
        // not be slower by more than noise.
        assert!(cache_jct <= s3_jct * 1.15, "cache {cache_jct} vs s3 {s3_jct}");
    }
}
