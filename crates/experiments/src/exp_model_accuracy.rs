//! Ablation: how close is the analytical predictor (paper Sec. III) to
//! the event simulator's "measured" behaviour?
//!
//! The paper's Discussion notes the modeling "could be dynamically
//! adjusted and refined to achieve better accuracy" — this experiment
//! quantifies the gap: exact at zero noise / zero cold start (by
//! construction; the planner DAG's optimality proof rests on it), and a
//! few percent once cold starts and lognormal runtime noise are enabled.

use astra_core::{PlanSpec, ReduceSpec};
use astra_faas::SimConfig;
use astra_mapreduce::simulate;
use astra_simcore::summary::{relative_error, Summary};
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Sampled configurations per workload.
fn sample_specs(n_objects: usize) -> Vec<PlanSpec> {
    let mut specs = Vec::new();
    for (mem, k_m, k_r) in [
        (128u32, 1usize, 2usize),
        (512, 2, 2),
        (1024, 4, 4),
        (1792, 1, 8),
        (3008, 2, 2),
    ] {
        specs.push(PlanSpec {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k_m.min(n_objects),
            reduce_spec: ReduceSpec::PerReducer(k_r),
        });
    }
    specs
}

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Ablation: analytical model vs event simulator");
    out.blank();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let mut clean_errs = Vec::new();
        let mut noisy_errs = Vec::new();
        for plan_spec in sample_specs(job.num_objects()) {
            let plan = harness::evaluate_relaxed(&job, plan_spec);
            // Idealised platform: no noise, no cold start.
            let mut ideal = harness::platform();
            ideal.cold_start_s = 0.0;
            ideal.timeout_s = f64::INFINITY;
            let clean = simulate(
                &job,
                &plan,
                SimConfig::deterministic(ideal),
            )
            .expect("clean sim");
            clean_errs.push(relative_error(clean.jct_s(), plan.predicted_jct_s()));
            // Realistic platform: cold starts + 10% CV noise.
            let noisy = harness::measure(&job, &plan);
            noisy_errs.push(relative_error(noisy.jct_s, plan.predicted_jct_s()));
        }
        let clean = Summary::of(&clean_errs).unwrap();
        let noisy = Summary::of(&noisy_errs).unwrap();
        rows.push(vec![
            spec.label(),
            format!("{:.4}%", clean.mean * 100.0),
            format!("{:.4}%", clean.max * 100.0),
            format!("{:.2}%", noisy.mean * 100.0),
            format!("{:.2}%", noisy.max * 100.0),
        ]);
        json_rows.push(json!({
            "workload": spec.label(),
            "clean_mean_rel_err": clean.mean,
            "clean_max_rel_err": clean.max,
            "noisy_mean_rel_err": noisy.mean,
            "noisy_max_rel_err": noisy.max,
        }));
    }
    out.line("JCT prediction error, 5 sampled configurations per workload:");
    out.table(
        &[
            "workload",
            "clean mean",
            "clean max",
            "noisy mean",
            "noisy max",
        ],
        &rows,
    );
    out.blank();
    out.line("clean = no noise / no cold start (model-exactness check);");
    out.line("noisy = 250 ms cold starts + 10% CV lognormal runtime noise.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exactness half of the claim, on one workload.
    #[test]
    fn clean_sim_error_is_negligible() {
        let job = WorkloadSpec::wordcount_gb(1).into_job();
        for plan_spec in sample_specs(job.num_objects()) {
            let plan = harness::evaluate_relaxed(&job, plan_spec.clone());
            let mut ideal = harness::platform();
            ideal.cold_start_s = 0.0;
            ideal.timeout_s = f64::INFINITY;
            let clean = simulate(
                &job,
                &plan,
                SimConfig::deterministic(ideal),
            )
            .unwrap();
            let err = relative_error(clean.jct_s(), plan.predicted_jct_s());
            assert!(err < 1e-6, "{plan_spec:?}: err {err}");
        }
    }
}
