//! Shared measurement machinery for all experiments.

use astra_core::{Astra, Objective, Plan, PlanSpec, Strategy};
use astra_faas::{SimConfig, SimReport};
use astra_mapreduce::simulate;
use astra_model::{JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};

/// Default runtime-noise coefficient of variation for "measured" runs.
pub const NOISE_CV: f64 = 0.10;
/// Seeds used for repeated measurements.
pub const SEEDS: [u64; 5] = [11, 23, 37, 53, 71];
/// The AWS per-function timeout the evaluation platform enforces.
pub const AWS_TIMEOUT_S: f64 = 900.0;

/// One measured (simulated) execution, averaged over [`SEEDS`].
#[derive(Debug, Clone)]
pub struct Measured {
    /// Mean job completion time across seeds (seconds).
    pub jct_s: f64,
    /// Mean total bill across seeds.
    pub cost: Money,
    /// Lambdas whose handler exceeded the AWS timeout in any seed run
    /// (runs execute on a relaxed-timeout platform so that naive
    /// baselines finish; violations are reported, as the paper's real
    /// deployment would have seen them killed).
    pub timeout_violations: Vec<String>,
    /// The last seed's full report (for traces).
    pub last_report: SimReport,
}

/// The evaluation platform: AWS Lambda with the `aws_like` network.
pub fn platform() -> Platform {
    Platform::aws_lambda()
}

/// A planner over the evaluation platform with the given strategy.
pub fn astra_with(strategy: Strategy) -> Astra {
    Astra::new(platform(), PriceCatalog::aws_2020(), strategy)
}

/// The default planner (exact constrained solver).
pub fn astra() -> Astra {
    astra_with(Strategy::ExactCsp)
}

/// Evaluate a plan spec against a *relaxed-timeout* platform (baselines
/// may violate the AWS limit; Astra's own plans never do because the
/// planner prunes them).
pub fn evaluate_relaxed(job: &JobSpec, spec: PlanSpec) -> Plan {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    Plan::evaluate(job, &relaxed, &PriceCatalog::aws_2020(), spec)
        .expect("relaxed platform accepts any in-range configuration")
}

/// Simulate `plan` over all [`SEEDS`] with realistic noise and cold
/// starts, averaging JCT and cost.
pub fn measure(job: &JobSpec, plan: &Plan) -> Measured {
    measure_with(job, plan, NOISE_CV, &SEEDS)
}

/// [`measure`] with custom noise and seeds.
pub fn measure_with(job: &JobSpec, plan: &Plan, noise_cv: f64, seeds: &[u64]) -> Measured {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    let mut jct_sum = 0.0;
    let mut cost_sum = Money::ZERO;
    let mut violations: Vec<String> = Vec::new();
    let mut last = None;
    for &seed in seeds {
        let config = SimConfig::deterministic(relaxed.clone()).with_noise(noise_cv, seed);
        let report = simulate(job, plan, config)
            .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", job.name));
        jct_sum += report.jct_s();
        cost_sum += report.total_cost();
        for inv in &report.invoices {
            if inv.duration().as_secs_f64() > AWS_TIMEOUT_S && !violations.contains(&inv.name) {
                violations.push(inv.name.clone());
            }
        }
        last = Some(report);
    }
    let n = seeds.len() as f64;
    Measured {
        jct_s: jct_sum / n,
        cost: cost_sum / seeds.len() as i128,
        timeout_violations: violations,
        last_report: last.expect("at least one seed"),
    }
}

/// Plan bounds for a job: the model's cheapest-possible cost and
/// fastest-possible JCT (with the cost of the fastest plan), used to set
/// meaningful budgets and deadlines.
#[derive(Debug, Clone, Copy)]
pub struct PlanBounds {
    /// Minimum achievable predicted cost.
    pub min_cost: Money,
    /// Predicted JCT of the cheapest plan.
    pub jct_of_cheapest: f64,
    /// Minimum achievable predicted JCT.
    pub min_jct_s: f64,
    /// Predicted cost of the fastest plan.
    pub cost_of_fastest: Money,
}

/// Compute [`PlanBounds`] by planning unconstrained in both directions.
pub fn bounds(job: &JobSpec) -> PlanBounds {
    let astra = astra();
    let cheapest = astra
        .plan(job, Objective::cheapest())
        .expect("every job has a cheapest plan");
    let fastest = astra
        .plan(job, Objective::fastest())
        .expect("every job has a fastest plan");
    PlanBounds {
        min_cost: cheapest.predicted_cost(),
        jct_of_cheapest: cheapest.predicted_jct_s(),
        min_jct_s: fastest.predicted_jct_s(),
        cost_of_fastest: fastest.predicted_cost(),
    }
}

/// The budget used in the Fig. 7 experiments: `min + frac·(max − min)`
/// between the cheapest plan's cost and the fastest plan's cost — a
/// binding budget, as the paper's hand-picked ones are.
pub fn budget_between(b: &PlanBounds, frac: f64) -> Money {
    b.min_cost + (b.cost_of_fastest - b.min_cost).scale(frac)
}

/// The QoS threshold used in the Fig. 8 experiments: `frac ×` the fastest
/// achievable JCT.
pub fn deadline_times_fastest(b: &PlanBounds, frac: f64) -> f64 {
    b.min_jct_s * frac
}

/// Percentage improvement of `ours` over `theirs` (positive = we win).
pub fn improvement_pct(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        0.0
    } else {
        (theirs - ours) / theirs * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn tiny_job() -> JobSpec {
        JobSpec::uniform("h", 6, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn bounds_are_consistent() {
        let b = bounds(&tiny_job());
        assert!(b.min_cost <= b.cost_of_fastest);
        assert!(b.min_jct_s <= b.jct_of_cheapest);
        let mid = budget_between(&b, 0.5);
        assert!(mid >= b.min_cost && mid <= b.cost_of_fastest);
    }

    #[test]
    fn measure_averages_over_seeds() {
        let job = tiny_job();
        let astra = astra();
        let plan = astra.plan(&job, Objective::cheapest()).unwrap();
        let m = measure_with(&job, &plan, 0.0, &[1, 2]);
        assert!(m.jct_s > 0.0);
        assert!(m.cost > Money::ZERO);
        assert!(m.timeout_violations.is_empty());
    }

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(50.0, 100.0), 50.0);
        assert_eq!(improvement_pct(100.0, 50.0), -100.0);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }
}
