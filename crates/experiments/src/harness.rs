//! Shared measurement machinery for all experiments.

use astra_core::{Astra, Objective, Plan, PlanSpec, PlannerSession, Strategy};
use astra_faas::{SimConfig, SimReport};
use astra_mapreduce::{simulate, simulate_batch, SimCase};
use astra_model::{JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};

/// Default runtime-noise coefficient of variation for "measured" runs.
pub const NOISE_CV: f64 = 0.10;
/// Seeds used for repeated measurements.
pub const SEEDS: [u64; 5] = [11, 23, 37, 53, 71];
/// The AWS per-function timeout the evaluation platform enforces.
pub const AWS_TIMEOUT_S: f64 = 900.0;

/// One measured (simulated) execution, averaged over [`SEEDS`].
#[derive(Debug, Clone)]
pub struct Measured {
    /// Mean job completion time across seeds (seconds).
    pub jct_s: f64,
    /// Mean total bill across seeds.
    pub cost: Money,
    /// Lambdas whose handler exceeded the AWS timeout in any seed run
    /// (runs execute on a relaxed-timeout platform so that naive
    /// baselines finish; violations are reported, as the paper's real
    /// deployment would have seen them killed).
    pub timeout_violations: Vec<String>,
    /// The last seed's full report (for traces).
    pub last_report: SimReport,
}

/// The evaluation platform: AWS Lambda with the `aws_like` network.
pub fn platform() -> Platform {
    Platform::aws_lambda()
}

/// A planner over the evaluation platform with the given strategy.
pub fn astra_with(strategy: Strategy) -> Astra {
    Astra::new(platform(), PriceCatalog::aws_2020(), strategy)
}

/// The default planner (exact constrained solver).
pub fn astra() -> Astra {
    astra_with(Strategy::ExactCsp)
}

/// A reusable planning session for `job` over the evaluation platform:
/// one DAG + potentials build, any number of budget/deadline queries.
/// Experiments that ask several questions about the same job should use
/// this instead of repeated [`Astra::plan`] calls.
pub fn session(job: &JobSpec) -> PlannerSession {
    astra().session(job)
}

/// Evaluate a plan spec against a *relaxed-timeout* platform (baselines
/// may violate the AWS limit; Astra's own plans never do because the
/// planner prunes them).
pub fn evaluate_relaxed(job: &JobSpec, spec: PlanSpec) -> Plan {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    Plan::evaluate(job, &relaxed, &PriceCatalog::aws_2020(), spec)
        .expect("relaxed platform accepts any in-range configuration")
}

/// Simulate `plan` over all [`SEEDS`] with realistic noise and cold
/// starts, averaging JCT and cost.
pub fn measure(job: &JobSpec, plan: &Plan) -> Measured {
    measure_with(job, plan, NOISE_CV, &SEEDS)
}

/// [`measure`] with custom noise and seeds.
///
/// Seed replications fan out over all cores through
/// [`simulate_batch`], then fold back in seed order — the returned
/// [`Measured`] is bit-identical to [`measure_with_serial`] at any
/// `RAYON_NUM_THREADS` (each seed owns an isolated RNG, and the fold
/// order is fixed by the input order, not completion order).
pub fn measure_with(job: &JobSpec, plan: &Plan, noise_cv: f64, seeds: &[u64]) -> Measured {
    let reports = measure_many(&[(job, plan)], noise_cv, seeds).pop();
    fold_reports(job, reports.expect("one case in, one case out"))
}

/// Serial reference implementation of [`measure_with`]: the plain seed
/// loop the parallel path is tested against (see
/// `tests/sim_batch_determinism.rs`).
pub fn measure_with_serial(job: &JobSpec, plan: &Plan, noise_cv: f64, seeds: &[u64]) -> Measured {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    let reports = seeds
        .iter()
        .map(|&seed| {
            let config = SimConfig::deterministic(relaxed.clone()).with_noise(noise_cv, seed);
            simulate(job, plan, config)
                .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", job.name))
        })
        .collect();
    fold_reports(job, reports)
}

/// Measure many `(job, plan)` cases at once: the full `cases × seeds`
/// grid flattens into one [`simulate_batch`] fan-out (saturating the
/// machine even when each case has few seeds), then folds per case.
/// Results come back in `cases` order and are bit-identical to calling
/// [`measure_with`] on each case in turn.
pub fn measure_batch(cases: &[(&JobSpec, &Plan)], noise_cv: f64, seeds: &[u64]) -> Vec<Measured> {
    let mut grids = measure_many(cases, noise_cv, seeds);
    cases
        .iter()
        .zip(grids.drain(..))
        .map(|(&(job, _), reports)| fold_reports(job, reports))
        .collect()
}

/// Run the `cases × seeds` grid in parallel; returns per-case report
/// vectors in seed order.
fn measure_many(
    cases: &[(&JobSpec, &Plan)],
    noise_cv: f64,
    seeds: &[u64],
) -> Vec<Vec<SimReport>> {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    let grid: Vec<SimCase<'_>> = cases
        .iter()
        .flat_map(|&(job, plan)| {
            let relaxed = &relaxed;
            seeds.iter().map(move |&seed| SimCase {
                job,
                plan,
                config: SimConfig::deterministic(relaxed.clone()).with_noise(noise_cv, seed),
            })
        })
        .collect();
    let mut results = simulate_batch(grid).into_iter();
    cases
        .iter()
        .map(|&(job, _)| {
            seeds
                .iter()
                .map(|_| {
                    results
                        .next()
                        .expect("one result per grid cell")
                        .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", job.name))
                })
                .collect()
        })
        .collect()
}

/// Fold one case's seed-ordered reports into a [`Measured`], exactly as
/// the historical serial loop did (same accumulation order, so float
/// sums match bit-for-bit).
fn fold_reports(job: &JobSpec, reports: Vec<SimReport>) -> Measured {
    assert!(!reports.is_empty(), "no seeds for {}", job.name);
    let n = reports.len();
    let mut jct_sum = 0.0;
    let mut cost_sum = Money::ZERO;
    let mut violations: Vec<String> = Vec::new();
    let mut last = None;
    for report in reports {
        jct_sum += report.jct_s();
        cost_sum += report.total_cost();
        for inv in &report.invoices {
            if inv.duration().as_secs_f64() > AWS_TIMEOUT_S
                && !violations.iter().any(|v| v.as_str() == &*inv.name)
            {
                violations.push(inv.name.to_string());
            }
        }
        last = Some(report);
    }
    Measured {
        jct_s: jct_sum / n as f64,
        cost: cost_sum.div_round(n as i128),
        timeout_violations: violations,
        last_report: last.expect("at least one seed"),
    }
}

/// Plan bounds for a job: the model's cheapest-possible cost and
/// fastest-possible JCT (with the cost of the fastest plan), used to set
/// meaningful budgets and deadlines.
#[derive(Debug, Clone, Copy)]
pub struct PlanBounds {
    /// Minimum achievable predicted cost.
    pub min_cost: Money,
    /// Predicted JCT of the cheapest plan.
    pub jct_of_cheapest: f64,
    /// Minimum achievable predicted JCT.
    pub min_jct_s: f64,
    /// Predicted cost of the fastest plan.
    pub cost_of_fastest: Money,
}

/// Compute [`PlanBounds`] by planning unconstrained in both directions.
pub fn bounds(job: &JobSpec) -> PlanBounds {
    bounds_on(&session(job))
}

/// [`bounds`] against an existing session (no extra DAG builds).
pub fn bounds_on(session: &PlannerSession) -> PlanBounds {
    let cheapest = session
        .plan(Objective::cheapest())
        .expect("every job has a cheapest plan");
    let fastest = session
        .plan(Objective::fastest())
        .expect("every job has a fastest plan");
    PlanBounds {
        min_cost: cheapest.predicted_cost(),
        jct_of_cheapest: cheapest.predicted_jct_s(),
        min_jct_s: fastest.predicted_jct_s(),
        cost_of_fastest: fastest.predicted_cost(),
    }
}

/// The budget used in the Fig. 7 experiments: `min + frac·(max − min)`
/// between the cheapest plan's cost and the fastest plan's cost — a
/// binding budget, as the paper's hand-picked ones are.
pub fn budget_between(b: &PlanBounds, frac: f64) -> Money {
    b.min_cost + (b.cost_of_fastest - b.min_cost).scale(frac)
}

/// The QoS threshold used in the Fig. 8 experiments: `frac ×` the fastest
/// achievable JCT.
pub fn deadline_times_fastest(b: &PlanBounds, frac: f64) -> f64 {
    b.min_jct_s * frac
}

/// Percentage improvement of `ours` over `theirs` (positive = we win).
pub fn improvement_pct(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        0.0
    } else {
        (theirs - ours) / theirs * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn tiny_job() -> JobSpec {
        JobSpec::uniform("h", 6, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn bounds_are_consistent() {
        let b = bounds(&tiny_job());
        assert!(b.min_cost <= b.cost_of_fastest);
        assert!(b.min_jct_s <= b.jct_of_cheapest);
        let mid = budget_between(&b, 0.5);
        assert!(mid >= b.min_cost && mid <= b.cost_of_fastest);
    }

    #[test]
    fn measure_averages_over_seeds() {
        let job = tiny_job();
        let astra = astra();
        let plan = astra.plan(&job, Objective::cheapest()).unwrap();
        let m = measure_with(&job, &plan, 0.0, &[1, 2]);
        assert!(m.jct_s > 0.0);
        assert!(m.cost > Money::ZERO);
        assert!(m.timeout_violations.is_empty());
    }

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(50.0, 100.0), 50.0);
        assert_eq!(improvement_pct(100.0, 50.0), -100.0);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }
}
