//! Ablation: how much of the multi-step reducing penalty is cold starts?
//!
//! Every reduce step launches fresh lambdas; with 250 ms cold starts and
//! the per-step orchestration latency, deep schedules (Baseline 1/2's
//! `k_R = 2`) pay per step. AWS actually keeps containers warm, so a
//! framework that reuses them within a job claws some of that back.
//! This ablation runs the same plans with and without warm-container
//! reuse.

use astra_baselines::Baseline;
use astra_core::Objective;
use astra_faas::SimConfig;
use astra_mapreduce::simulate;
use astra_workloads::WorkloadSpec;
use serde_json::json;

use crate::harness;
use crate::output::Output;

/// Run the experiment.
pub fn run(out: &mut Output) {
    out.heading("Ablation: warm-container reuse within a job");
    out.line("(same plans, cold-start-every-launch vs per-tier container reuse; seed 7, no noise)");
    out.blank();

    let mut relaxed = harness::platform();
    relaxed.timeout_s = f64::INFINITY;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for spec in [WorkloadSpec::wordcount_gb(1), WorkloadSpec::QueryUservisits] {
        let job = spec.into_job();
        // Astra's fastest plan and Baseline 1 (deep k_R = 2 schedule).
        let astra_plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
        let b1 = harness::evaluate_relaxed(&job, Baseline::all()[0].spec_for(&job));
        for (name, plan) in [("Astra fastest", &astra_plan), ("Baseline 1", &b1)] {
            let cold = simulate(
                &job,
                plan,
                SimConfig::deterministic(relaxed.clone()).with_noise(0.0, 7),
            )
            .unwrap();
            let warm = simulate(
                &job,
                plan,
                SimConfig::deterministic(relaxed.clone())
                    .with_noise(0.0, 7)
                    .with_container_reuse(),
            )
            .unwrap();
            rows.push(vec![
                spec.label(),
                name.to_string(),
                format!("{}", plan.reduce_steps()),
                format!("{:.1}", cold.jct_s()),
                format!("{:.1}", warm.jct_s()),
                warm.warm_starts.to_string(),
                format!(
                    "{:.1}%",
                    harness::improvement_pct(warm.jct_s(), cold.jct_s())
                ),
            ]);
            json_rows.push(json!({
                "workload": spec.label(),
                "plan": name,
                "reduce_steps": plan.reduce_steps(),
                "cold_jct_s": cold.jct_s(),
                "warm_jct_s": warm.jct_s(),
                "warm_starts": warm.warm_starts,
                "jct_gain_pct": harness::improvement_pct(warm.jct_s(), cold.jct_s()),
            }));
        }
    }
    out.table(
        &[
            "workload",
            "plan",
            "steps",
            "cold JCT (s)",
            "warm JCT (s)",
            "warm starts",
            "gain",
        ],
        &rows,
    );
    out.blank();
    out.line("Deep schedules benefit most: each extra reduce step re-pays the cold");
    out.line("start without reuse. The per-step orchestration latency remains either");
    out.line("way, so reuse narrows — but does not close — the multi-step penalty.");
    out.record("rows", json!(json_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_never_slows_a_job_down() {
        let mut relaxed = harness::platform();
        relaxed.timeout_s = f64::INFINITY;
        let job = WorkloadSpec::wordcount_gb(1).into_job();
        let plan = harness::evaluate_relaxed(&job, Baseline::all()[0].spec_for(&job));
        let cold = simulate(
            &job,
            &plan,
            SimConfig::deterministic(relaxed.clone()).with_noise(0.0, 1),
        )
        .unwrap();
        let warm = simulate(
            &job,
            &plan,
            SimConfig::deterministic(relaxed)
                .with_noise(0.0, 1)
                .with_container_reuse(),
        )
        .unwrap();
        assert!(warm.jct_s() <= cold.jct_s() + 1e-9);
        assert!(warm.warm_starts > 0, "B1's multi-step schedule must reuse");
    }
}
