#![warn(missing_docs)]

//! The experiment harness: one module (and one binary) per table/figure
//! of the paper's evaluation, plus ablations.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (orchestration for 10 objects) | [`exp_table1`] | `exp_table1` |
//! | Fig. 1 + Fig. 2 (JCT & cost vs objects/λ × memory) | [`exp_fig1_fig2`] | `exp_fig1_fig2` |
//! | Fig. 3 (job timelines, two configs) | [`exp_fig3`] | `exp_fig3` |
//! | Fig. 6 (JCT / mapper time / cost vs memory) | [`exp_fig6`] | `exp_fig6` |
//! | Fig. 7 + Table III (budget-constrained perf vs baselines) | [`exp_fig7_table3`] | `exp_fig7_table3` |
//! | Fig. 8 (QoS-constrained cost vs baselines) | [`exp_fig8`] | `exp_fig8` |
//! | Fig. 9 (Astra vs EMR) | [`exp_fig9`] | `exp_fig9` |
//! | Discussion ¶ (vs VM Spark, ≥92 % cheaper) | [`exp_spark`] | `exp_spark` |
//! | Discussion ¶ (solver overhead) + Algorithm 1 | [`exp_solvers`] | `exp_solvers` |
//! | Model accuracy (predictor vs simulator) | [`exp_model_accuracy`] | `exp_model_accuracy` |
//! | Discussion ¶ (alternative intermediate storage) | [`exp_ephemeral`] | `exp_ephemeral` |
//! | Discussion ¶ (other providers: GCF, Azure) | [`exp_multicloud`] | `exp_multicloud` |
//! | Noise/failure robustness ablation | [`exp_noise`] | `exp_noise` |
//! | Input-skew + LPT assignment extension | [`exp_skew`] | `exp_skew` |
//! | Warm-container reuse ablation | [`exp_warm`] | `exp_warm` |
//! | Service daemon bit-identity + throughput | [`exp_service`] | `exp_service` |
//!
//! `cargo run --release -p astra-experiments --bin run_all` regenerates
//! everything into `results/` (ASCII tables on stdout and per-experiment
//! `.txt`/`.json` files); EXPERIMENTS.md quotes those outputs.

pub mod exp_ephemeral;
pub mod exp_fig1_fig2;
pub mod exp_fig3;
pub mod exp_fig6;
pub mod exp_fig7_table3;
pub mod exp_fig8;
pub mod exp_fig9;
pub mod exp_model_accuracy;
pub mod exp_multicloud;
pub mod exp_noise;
pub mod exp_service;
pub mod exp_skew;
pub mod exp_warm;
pub mod exp_solvers;
pub mod exp_spark;
pub mod exp_table1;
pub mod harness;
pub mod output;

pub use output::Output;

/// Pin the rayon thread pool from a `--threads N` command-line flag.
///
/// Every experiment binary calls this before running, so the sweep
/// fan-out can be pinned (e.g. `--threads 1` to reproduce the serial
/// path, or a fixed count for comparable timings) without exporting
/// `RAYON_NUM_THREADS`. Without the flag the pool uses all cores.
pub fn init_threads() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = argv.iter().position(|a| a == "--threads") {
        let n: usize = argv
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    }
}

/// Finalizes telemetry capture when an experiment binary exits.
///
/// Returned by [`init`]; on drop it stops the process-global recorder,
/// prints the counter/gauge summary to stderr (`--metrics`), and writes
/// the Chrome trace (`--trace-out <path>`). Holding it for the whole of
/// `main` means every planner/simulator call in between is captured.
pub struct TelemetryGuard {
    recorder: Option<std::sync::Arc<astra_telemetry::sinks::ChromeTraceRecorder>>,
    trace_out: Option<String>,
    metrics: bool,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        let Some(rec) = self.recorder.take() else { return };
        astra_telemetry::install_global(astra_telemetry::Telemetry::disabled());
        if self.metrics {
            eprintln!("-- telemetry --");
            for line in rec.inner().summary_lines() {
                eprintln!("{line}");
            }
        }
        if let Some(path) = &self.trace_out {
            match rec.write_to(path) {
                Ok(()) => eprintln!(
                    "trace written to {path} (open in chrome://tracing or Perfetto)"
                ),
                Err(e) => eprintln!("failed to write trace to {path}: {e}"),
            }
        }
    }
}

/// Initialize an experiment binary: pin threads ([`init_threads`]) and,
/// when `--trace-out <path>` or `--metrics` is on the command line,
/// install a process-global Chrome-trace recorder that the planner and
/// simulator pick up at construction time. Telemetry is observational:
/// the experiment's tables and JSON are bit-identical with it on or off.
///
/// Bind the result for the duration of `main`:
/// `let _telemetry = astra_experiments::init();`
pub fn init() -> TelemetryGuard {
    init_threads();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = argv
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--trace-out needs a path");
                std::process::exit(2);
            })
        });
    let metrics = argv.iter().any(|a| a == "--metrics");
    let recorder = if trace_out.is_some() || metrics {
        let rec = std::sync::Arc::new(astra_telemetry::sinks::ChromeTraceRecorder::new());
        astra_telemetry::install_global(astra_telemetry::Telemetry::new(rec.clone()));
        Some(rec)
    } else {
        None
    };
    TelemetryGuard {
        recorder,
        trace_out,
        metrics,
    }
}
