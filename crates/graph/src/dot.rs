//! Graphviz (DOT) export for debugging planner DAGs.

use std::fmt::Write;

use crate::graph::DiGraph;

/// Render the graph in DOT format. Node and edge labels are produced by
/// the supplied closures; pass `|_| String::new()` to omit labels.
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    mut node_label: impl FnMut(&N) -> String,
    mut edge_label: impl FnMut(&E) -> String,
) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    for id in g.node_ids() {
        let label = node_label(g.node(id));
        if label.is_empty() {
            writeln!(out, "  {id};").unwrap();
        } else {
            writeln!(out, "  {id} [label=\"{}\"];", escape(&label)).unwrap();
        }
    }
    for eid in g.edge_ids() {
        let (from, to) = g.endpoints(eid);
        let label = edge_label(g.edge(eid));
        if label.is_empty() {
            writeln!(out, "  {from} -> {to};").unwrap();
        } else {
            writeln!(out, "  {from} -> {to} [label=\"{}\"];", escape(&label)).unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node("start");
        let b = g.add_node("end");
        g.add_edge(a, b, 2.5f64);
        let dot = to_dot(&g, "test", |n| n.to_string(), |e| format!("{e:.1}"));
        assert!(dot.contains("digraph test {"));
        assert!(dot.contains("n0 [label=\"start\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"2.5\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_labels_are_omitted() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let dot = to_dot(&g, "g", |_| String::new(), |_| String::new());
        assert!(dot.contains("  n0;"));
        assert!(dot.contains("  n0 -> n1;"));
        assert!(!dot.contains("label"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "g", |n| n.to_string(), |_: &()| String::new());
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
