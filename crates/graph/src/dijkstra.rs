//! Single-source shortest paths (Dijkstra) with closure-supplied weights.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{DiGraph, EdgeId, NodeId};

/// A shortest path: its total weight and the edge sequence from source to
/// target.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// Sum of edge weights along the path.
    pub weight: f64,
    /// Edges in order from source to target.
    pub edges: Vec<EdgeId>,
}

impl ShortestPath {
    /// Node sequence of the path (source first), derived from the edges.
    pub fn nodes<N, E>(&self, g: &DiGraph<N, E>, source: NodeId) -> Vec<NodeId> {
        let mut out = vec![source];
        for &e in &self.edges {
            out.push(g.endpoints(e).1);
        }
        out
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; tie-break on node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra's algorithm from `source` to `target`.
///
/// * `weight` maps an edge (id + payload) to a **non-negative** weight;
///   negative weights panic in debug builds and corrupt results in release,
///   as usual for Dijkstra.
/// * `enabled` masks edges: Yen's algorithm and the paper's Algorithm 1
///   re-run Dijkstra on subgraphs, which this avoids copying.
///
/// Returns `None` when `target` is unreachable through enabled edges.
pub fn shortest_path<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
    mut enabled: impl FnMut(EdgeId) -> bool,
) -> Option<ShortestPath> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source.0 as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        let ui = u.0 as usize;
        if done[ui] {
            continue;
        }
        done[ui] = true;
        if u == target {
            break;
        }
        for (eid, payload) in g.out_edges(u) {
            if !enabled(eid) {
                continue;
            }
            let w = weight(eid, payload);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let (_, v) = g.endpoints(eid);
            let vi = v.0 as usize;
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                prev[vi] = Some(eid);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if !dist[target.0 as usize].is_finite() {
        return None;
    }

    // Reconstruct the edge sequence by walking predecessors.
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let e = prev[cur.0 as usize].expect("broken predecessor chain");
        edges.push(e);
        cur = g.endpoints(e).0;
    }
    edges.reverse();
    Some(ShortestPath {
        weight: dist[target.0 as usize],
        edges,
    })
}

/// A*: [`shortest_path`] guided by a per-node admissible, *consistent*
/// lower bound `lb[v]` on the remaining distance from `v` to `target`
/// (e.g. the weight potentials of `csp::dag_potentials`). The heap is
/// keyed on `d + lb[v]`, so the search settles far fewer nodes while the
/// returned path and its exact float weight match plain Dijkstra
/// whenever weights are tie-free (both settle nodes once, relax with
/// strict `<`, and accumulate `d + w` identically along the chosen
/// path).
///
/// Consistency (`lb[u] <= w(u→v) + lb[v]` on every *enabled* edge) keeps
/// the settle-once property; bounds computed on a supergraph stay valid
/// when `enabled` masks edges away, because removing edges only raises
/// true distances — exactly the shape of the paper's Algorithm 1, which
/// re-runs this search after each edge removal. Nodes with
/// `lb[v] = INFINITY` (cannot reach the target at all) are never pushed.
pub fn shortest_path_guided<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
    mut enabled: impl FnMut(EdgeId) -> bool,
    lb: &[f64],
) -> Option<ShortestPath> {
    let n = g.node_count();
    if lb[source.0 as usize].is_infinite() {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source.0 as usize] = 0.0;
    heap.push(HeapEntry {
        dist: lb[source.0 as usize],
        node: source,
    });

    while let Some(HeapEntry { node: u, .. }) = heap.pop() {
        let ui = u.0 as usize;
        if done[ui] {
            continue;
        }
        done[ui] = true;
        if u == target {
            break;
        }
        let d = dist[ui];
        for (eid, payload) in g.out_edges(u) {
            if !enabled(eid) {
                continue;
            }
            let w = weight(eid, payload);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let (_, v) = g.endpoints(eid);
            let vi = v.0 as usize;
            if lb[vi].is_infinite() {
                continue; // cannot reach the target from v
            }
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                prev[vi] = Some(eid);
                heap.push(HeapEntry {
                    dist: nd + lb[vi],
                    node: v,
                });
            }
        }
    }

    if !done[target.0 as usize] || !dist[target.0 as usize].is_finite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let e = prev[cur.0 as usize].expect("broken predecessor chain");
        edges.push(e);
        cur = g.endpoints(e).0;
    }
    edges.reverse();
    Some(ShortestPath {
        weight: dist[target.0 as usize],
        edges,
    })
}

/// Convenience wrapper: shortest path with all edges enabled.
pub fn shortest_path_all<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    weight: impl FnMut(EdgeId, &E) -> f64,
) -> Option<ShortestPath> {
    shortest_path(g, source, target, weight, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn w(_: EdgeId, e: &f64) -> f64 {
        *e
    }

    #[test]
    fn picks_cheaper_branch() {
        let mut g = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, b, 1.0);
        g.add_edge(b, t, 5.0);
        let p = shortest_path_all(&g, s, t, w).unwrap();
        assert_eq!(p.weight, 2.0);
        assert_eq!(p.nodes(&g, s), vec![s, a, t]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        assert!(shortest_path_all(&g, s, t, w).is_none());
    }

    #[test]
    fn source_equals_target_is_empty_path() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let p = shortest_path_all(&g, s, s, w).unwrap();
        assert_eq!(p.weight, 0.0);
        assert!(p.edges.is_empty());
    }

    #[test]
    fn masked_edge_forces_detour() {
        let mut g = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let direct = g.add_edge(s, t, 1.0);
        let a = g.add_node(());
        g.add_edge(s, a, 2.0);
        g.add_edge(a, t, 2.0);
        let p = shortest_path(&g, s, t, w, |e| e != direct).unwrap();
        assert_eq!(p.weight, 4.0);
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn zero_weight_edges_work() {
        let mut g = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 0.0);
        g.add_edge(a, t, 0.0);
        let p = shortest_path_all(&g, s, t, w).unwrap();
        assert_eq!(p.weight, 0.0);
    }

    /// Bellman–Ford reference used for randomized cross-checks.
    fn bellman_ford(g: &DiGraph<(), f64>, s: NodeId, t: NodeId) -> Option<f64> {
        let n = g.node_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[s.0 as usize] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for u in g.node_ids() {
                if !dist[u.0 as usize].is_finite() {
                    continue;
                }
                for (eid, &wt) in g.out_edges(u) {
                    let (_, v) = g.endpoints(eid);
                    let nd = dist[u.0 as usize] + wt;
                    if nd < dist[v.0 as usize] {
                        dist[v.0 as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist[t.0 as usize].is_finite().then_some(dist[t.0 as usize])
    }

    #[test]
    fn matches_bellman_ford_on_random_dags() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..50 {
            let n = rng.random_range(2..30usize);
            let mut g: DiGraph<(), f64> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.random::<f64>() < 0.3 {
                        g.add_edge(nodes[i], nodes[j], rng.random_range(0.0..10.0));
                    }
                }
            }
            let s = nodes[0];
            let t = nodes[n - 1];
            let dij = shortest_path_all(&g, s, t, w).map(|p| p.weight);
            let bf = bellman_ford(&g, s, t);
            match (dij, bf) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    /// The A*-guided search matches plain Dijkstra bit-for-bit on random
    /// DAGs when guided by its own exact backward potentials, including
    /// under edge masks computed against the *unmasked* potentials (the
    /// Algorithm 1 usage pattern).
    #[test]
    fn guided_matches_plain_under_masks() {
        let mut rng = StdRng::seed_from_u64(515);
        for case in 0..50 {
            let n = rng.random_range(3..25usize);
            let mut g: DiGraph<(), f64> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            let mut eids = Vec::new();
            for i in 0..n - 1 {
                eids.push(g.add_edge(nodes[i], nodes[i + 1], rng.random_range(0.01..5.0)));
                for j in (i + 2)..n {
                    if rng.random::<f64>() < 0.3 {
                        eids.push(g.add_edge(nodes[i], nodes[j], rng.random_range(0.01..5.0)));
                    }
                }
            }
            let (s, t) = (nodes[0], nodes[n - 1]);
            let pot = crate::csp::dag_potentials(&g, t, |_, e| *e, |_, _| 0.0).unwrap();
            // Mask a random subset of edges; the unmasked potentials stay
            // admissible and consistent on the subgraph.
            let masked: Vec<EdgeId> = eids
                .iter()
                .copied()
                .filter(|_| rng.random::<f64>() < 0.2)
                .collect();
            let enabled = |e: EdgeId| !masked.contains(&e);
            let plain = shortest_path(&g, s, t, w, enabled);
            let guided = shortest_path_guided(&g, s, t, w, enabled, &pot.min_weight_to);
            match (&plain, &guided) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.weight.to_bits(), q.weight.to_bits(), "case {case}: weight");
                    assert_eq!(p.edges, q.edges, "case {case}: path");
                }
                other => panic!("case {case}: reachability mismatch {other:?}"),
            }
        }
    }

    proptest! {
        #[test]
        fn path_weight_equals_sum_of_edges(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(2..20usize);
            let mut g: DiGraph<(), f64> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n - 1 {
                // Guarantee connectivity along the chain, plus random skips.
                g.add_edge(nodes[i], nodes[i + 1], rng.random_range(0.0..5.0));
                for j in (i + 2)..n {
                    if rng.random::<f64>() < 0.2 {
                        g.add_edge(nodes[i], nodes[j], rng.random_range(0.0..5.0));
                    }
                }
            }
            let p = shortest_path_all(&g, nodes[0], nodes[n - 1], w).unwrap();
            let sum: f64 = p.edges.iter().map(|&e| *g.edge(e)).sum();
            prop_assert!((sum - p.weight).abs() < 1e-9);
            // Path must be contiguous from source to target.
            let seq = p.nodes(&g, nodes[0]);
            prop_assert_eq!(seq[0], nodes[0]);
            prop_assert_eq!(*seq.last().unwrap(), nodes[n - 1]);
            for (k, &e) in p.edges.iter().enumerate() {
                prop_assert_eq!(g.endpoints(e).0, seq[k]);
                prop_assert_eq!(g.endpoints(e).1, seq[k + 1]);
            }
        }
    }
}
