#![warn(missing_docs)]

//! Graph algorithms backing the Astra planner (paper Sec. IV).
//!
//! The paper maps its configuration problem onto a layered DAG (Fig. 5) and
//! solves it with shortest-path machinery (Algorithm 1 cites Dijkstra and a
//! k-shortest-paths reference). This crate supplies that machinery in a
//! problem-agnostic form:
//!
//! * [`DiGraph`] — an arena-allocated directed graph with typed node and
//!   edge payloads;
//! * [`dijkstra`] — single-source shortest paths with closure-supplied
//!   non-negative weights and optional edge masking;
//! * [`yen`] — Yen's algorithm for the k shortest *simple* paths;
//! * [`csp`] — exact resource-constrained shortest path via Pareto-label
//!   search (used both as a correct solver and as the oracle the tests
//!   check Algorithm 1 against);
//! * [`dot`] — Graphviz export for debugging the planner DAG.

pub mod csp;
pub mod dijkstra;
pub mod dot;
pub mod graph;
pub mod yen;

pub use csp::{
    constrained_shortest_path, constrained_shortest_path_with_bounds,
    constrained_shortest_path_with_bounds_on, dag_potentials, dag_potentials_on, CspRun,
    CspSolution, CspStats, EdgeExpand, Potentials,
};
pub use dijkstra::{shortest_path, shortest_path_guided, ShortestPath};
pub use graph::{DiGraph, EdgeId, NodeId};
pub use yen::KShortestPaths;
