//! Arena-allocated directed graph with typed payloads.

use std::fmt;

/// Index of a node in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an edge in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node<N> {
    payload: N,
    first_out: Option<EdgeId>,
}

#[derive(Debug, Clone)]
struct Edge<E> {
    from: NodeId,
    to: NodeId,
    payload: E,
    next_out: Option<EdgeId>,
}

/// A directed graph stored in two flat arenas with intrusive out-edge lists.
///
/// Built for the planner's layered DAG: millions of edges are appended once
/// and then traversed many times by Dijkstra, so the representation is
/// append-only and cache-friendly (no per-node `Vec` allocations).
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<Node<N>>,
    edges: Vec<Edge<E>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// An empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// An empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node carrying `payload`, returning its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node {
            payload,
            first_out: None,
        });
        id
    }

    /// Add a directed edge `from -> to` carrying `payload`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, payload: E) -> EdgeId {
        assert!((from.0 as usize) < self.nodes.len(), "bad source node");
        assert!((to.0 as usize) < self.nodes.len(), "bad target node");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        let head = self.nodes[from.0 as usize].first_out;
        self.edges.push(Edge {
            from,
            to,
            payload,
            next_out: head,
        });
        self.nodes[from.0 as usize].first_out = Some(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Payload of `node`.
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.0 as usize].payload
    }

    /// Payload of `edge`.
    pub fn edge(&self, edge: EdgeId) -> &E {
        &self.edges[edge.0 as usize].payload
    }

    /// Mutable payload of `edge`. Topology (endpoints, adjacency) is
    /// untouched; only the payload can be rewritten in place.
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.0 as usize].payload
    }

    /// Endpoints of `edge` as `(from, to)`.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.0 as usize];
        (e.from, e.to)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Out-edges of `node` (most recently added first).
    pub fn out_edges(&self, node: NodeId) -> OutEdges<'_, N, E> {
        OutEdges {
            graph: self,
            next: self.nodes[node.0 as usize].first_out,
        }
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges(node).count()
    }

    /// A topological order of the nodes, or `None` if the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut in_deg = vec![0usize; n];
        for e in &self.edges {
            in_deg[e.to.0 as usize] += 1;
        }
        let mut stack: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| in_deg[id.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for (eid, _) in self.out_edges(u) {
                let (_, v) = self.endpoints(eid);
                in_deg[v.0 as usize] -= 1;
                if in_deg[v.0 as usize] == 0 {
                    stack.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True iff the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }
}

/// Iterator over a node's out-edges.
pub struct OutEdges<'g, N, E> {
    graph: &'g DiGraph<N, E>,
    next: Option<EdgeId>,
}

impl<'g, N, E> Iterator for OutEdges<'g, N, E> {
    type Item = (EdgeId, &'g E);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.next?;
        let edge = &self.graph.edges[id.0 as usize];
        self.next = edge.next_out;
        Some((id, &edge.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, f64>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(s, a, 1.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(a, t, 3.0);
        g.add_edge(b, t, 4.0);
        (g, [s, a, b, t])
    }

    #[test]
    fn add_and_query() {
        let (g, [s, a, _, t]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(s), "s");
        assert_eq!(g.out_degree(s), 2);
        assert_eq!(g.out_degree(t), 0);
        assert_eq!(g.out_degree(a), 1);
    }

    #[test]
    fn out_edges_cover_all_successors() {
        let (g, [s, a, b, _]) = diamond();
        let targets: Vec<NodeId> = g.out_edges(s).map(|(e, _)| g.endpoints(e).1).collect();
        assert!(targets.contains(&a));
        assert!(targets.contains(&b));
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn topological_order_of_dag() {
        let (g, [s, a, b, t]) = diamond();
        let order = g.topological_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(s) < pos(a));
        assert!(pos(s) < pos(b));
        assert!(pos(a) < pos(t));
        assert!(pos(b) < pos(t));
        assert!(g.is_dag());
    }

    #[test]
    fn cycle_detected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(!g.is_dag());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(!g.is_dag());
    }

    #[test]
    #[should_panic(expected = "bad target node")]
    fn edge_to_unknown_node_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(7), ());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.out_degree(a), 2);
    }
}
