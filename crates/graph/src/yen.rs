//! Yen's algorithm: the k shortest simple (loopless) paths.

use std::collections::HashSet;

use crate::dijkstra::{shortest_path, ShortestPath};
use crate::graph::{DiGraph, EdgeId, NodeId};

/// Lazily enumerates simple paths from source to target in non-decreasing
/// weight order (Yen 1971, with the lazy-candidate variant the paper's
/// shortest-path reference \[25\] discusses).
///
/// The Astra planner uses this as one of its exact constrained solvers: pop
/// paths in objective order until one satisfies the budget/QoS side
/// constraint — the first feasible path is optimal.
pub struct KShortestPaths<'g, N, E, W>
where
    W: FnMut(EdgeId, &E) -> f64,
{
    graph: &'g DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    weight: W,
    found: Vec<ShortestPath>,
    candidates: Vec<ShortestPath>,
}

impl<'g, N, E, W> KShortestPaths<'g, N, E, W>
where
    W: FnMut(EdgeId, &E) -> f64,
{
    /// Create the enumerator. No work happens until the first `next()`.
    pub fn new(graph: &'g DiGraph<N, E>, source: NodeId, target: NodeId, weight: W) -> Self {
        KShortestPaths {
            graph,
            source,
            target,
            weight,
            found: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Paths already produced, in order.
    pub fn found(&self) -> &[ShortestPath] {
        &self.found
    }

    fn spawn_candidates(&mut self) {
        // Deviate from the most recently accepted path at every prefix.
        let last = self.found.last().expect("spawn before first path").clone();
        let last_nodes = last.nodes(self.graph, self.source);

        for i in 0..last.edges.len() {
            let spur_node = last_nodes[i];
            let root_edges = &last.edges[..i];
            let root_weight: f64 = root_edges
                .iter()
                .map(|&e| (self.weight)(e, self.graph.edge(e)))
                .sum();

            // Edges to ban: the next edge of every already-found path that
            // shares this root.
            let mut banned_edges: HashSet<EdgeId> = HashSet::new();
            for p in &self.found {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges.insert(p.edges[i]);
                }
            }
            // Nodes on the root (except the spur node) must not be
            // revisited, or the path would not be simple.
            let banned_nodes: HashSet<NodeId> =
                last_nodes[..i].iter().copied().collect();

            let graph = self.graph;
            let weight = &mut self.weight;
            let spur = shortest_path(
                graph,
                spur_node,
                self.target,
                |e, p| weight(e, p),
                |e| {
                    if banned_edges.contains(&e) {
                        return false;
                    }
                    let (from, to) = graph.endpoints(e);
                    !banned_nodes.contains(&from) && !banned_nodes.contains(&to)
                },
            );

            if let Some(spur_path) = spur {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur_path.edges);
                let total = ShortestPath {
                    weight: root_weight + spur_path.weight,
                    edges,
                };
                if !self.candidates.iter().any(|c| c.edges == total.edges)
                    && !self.found.iter().any(|f| f.edges == total.edges)
                {
                    self.candidates.push(total);
                }
            }
        }
    }
}

impl<'g, N, E, W> Iterator for KShortestPaths<'g, N, E, W>
where
    W: FnMut(EdgeId, &E) -> f64,
{
    type Item = ShortestPath;

    fn next(&mut self) -> Option<ShortestPath> {
        if self.found.is_empty() {
            let first = shortest_path(
                self.graph,
                self.source,
                self.target,
                |e, p| (self.weight)(e, p),
                |_| true,
            )?;
            self.found.push(first.clone());
            return Some(first);
        }

        self.spawn_candidates();
        if self.candidates.is_empty() {
            return None;
        }
        // Pop the cheapest candidate (ties broken by edge sequence for
        // determinism).
        let best = self
            .candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.weight
                    .total_cmp(&b.weight)
                    .then_with(|| a.edges.cmp(&b.edges))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        let path = self.candidates.swap_remove(best);
        self.found.push(path.clone());
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(_: EdgeId, e: &f64) -> f64 {
        *e
    }

    /// Classic Yen example graph.
    fn sample() -> (DiGraph<&'static str, f64>, NodeId, NodeId) {
        let mut g = DiGraph::new();
        let c = g.add_node("C");
        let d = g.add_node("D");
        let e = g.add_node("E");
        let f = g.add_node("F");
        let gg = g.add_node("G");
        let h = g.add_node("H");
        g.add_edge(c, d, 3.0);
        g.add_edge(c, e, 2.0);
        g.add_edge(d, f, 4.0);
        g.add_edge(e, d, 1.0);
        g.add_edge(e, f, 2.0);
        g.add_edge(e, gg, 3.0);
        g.add_edge(f, gg, 2.0);
        g.add_edge(f, h, 1.0);
        g.add_edge(gg, h, 2.0);
        (g, c, h)
    }

    #[test]
    fn yen_classic_first_three() {
        let (g, s, t) = sample();
        let mut ksp = KShortestPaths::new(&g, s, t, w);
        let p1 = ksp.next().unwrap();
        let p2 = ksp.next().unwrap();
        let p3 = ksp.next().unwrap();
        assert_eq!(p1.weight, 5.0); // C-E-F-H
        assert_eq!(p2.weight, 7.0); // C-E-G-H or C-E-D-F-H... both 7/8
        assert!(p2.weight <= p3.weight);
    }

    #[test]
    fn weights_are_non_decreasing() {
        let (g, s, t) = sample();
        let weights: Vec<f64> = KShortestPaths::new(&g, s, t, w)
            .take(10)
            .map(|p| p.weight)
            .collect();
        for pair in weights.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9, "{weights:?}");
        }
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let (g, s, t) = sample();
        let paths: Vec<ShortestPath> = KShortestPaths::new(&g, s, t, w).take(10).collect();
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.edges.clone()), "duplicate path");
            let nodes = p.nodes(&g, s);
            let set: HashSet<NodeId> = nodes.iter().copied().collect();
            assert_eq!(set.len(), nodes.len(), "path revisits a node");
            assert_eq!(*nodes.last().unwrap(), t);
        }
    }

    #[test]
    fn exhausts_finite_path_set() {
        // Diamond: exactly two simple paths.
        let mut g = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(b, t, 2.0);
        let paths: Vec<_> = KShortestPaths::new(&g, s, t, w).collect();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].weight, 2.0);
        assert_eq!(paths[1].weight, 4.0);
    }

    #[test]
    fn no_path_yields_empty() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let paths: Vec<_> = KShortestPaths::new(&g, s, t, w).collect();
        assert!(paths.is_empty());
    }

    #[test]
    fn layered_dag_enumerates_all_combinations() {
        // 2x2 layered DAG: 4 simple paths, in weight order.
        let mut g = DiGraph::new();
        let s = g.add_node(());
        let a1 = g.add_node(());
        let a2 = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a1, 1.0);
        g.add_edge(s, a2, 10.0);
        g.add_edge(a1, t, 2.0);
        g.add_edge(a1, t, 5.0);
        g.add_edge(a2, t, 1.0);
        let weights: Vec<f64> = KShortestPaths::new(&g, s, t, w).map(|p| p.weight).collect();
        assert_eq!(weights, vec![3.0, 6.0, 11.0]);
    }
}
