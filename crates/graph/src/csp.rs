//! Exact resource-constrained shortest path (RCSP) via Pareto-label search.
//!
//! The planner's real problem — "minimize completion time subject to a
//! budget" (paper Eq. 16–19) or its dual (Eq. 20–22) — is a weight-
//! constrained shortest path, which is NP-hard in general but solved
//! exactly and fast on layered DAGs by label-setting with Pareto dominance
//! pruning. This module is the correctness oracle against which the paper's
//! heuristic Algorithm 1 is compared in the ablation benches.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{DiGraph, EdgeId, NodeId};

/// Result of a constrained shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct CspSolution {
    /// Total primary weight (the objective).
    pub weight: f64,
    /// Total secondary resource consumed (must be `<= bound`).
    pub resource: f64,
    /// Edge sequence from source to target.
    pub edges: Vec<EdgeId>,
}

#[derive(Clone, Debug)]
struct Label {
    node: NodeId,
    // Predecessor label index in the label arena + the edge taken.
    // (The label's weight/resource travel in the heap entry.)
    pred: Option<(usize, EdgeId)>,
}

struct HeapItem {
    weight: f64,
    resource: f64,
    label_idx: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.resource == other.resource
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (weight, resource), then label index for determinism.
        other
            .weight
            .total_cmp(&self.weight)
            .then_with(|| other.resource.total_cmp(&self.resource))
            .then_with(|| other.label_idx.cmp(&self.label_idx))
    }
}

/// Exact constrained shortest path: minimize the sum of `weight` over a
/// source→target path subject to the sum of `resource` being `<= bound`.
///
/// Both metrics must be non-negative. Labels are expanded in
/// lexicographic (weight, resource) order; the first label to settle on
/// `target` is optimal. Dominance pruning keeps per-node Pareto frontiers
/// small — on Astra's layered DAGs (≤ 6 hops) frontiers stay tiny.
///
/// Returns `None` when no feasible path exists.
pub fn constrained_shortest_path<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
    mut resource: impl FnMut(EdgeId, &E) -> f64,
) -> Option<CspSolution> {
    let n = g.node_count();
    // Per-node Pareto frontier of settled (weight, resource) pairs.
    let mut frontier: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut labels: Vec<Label> = Vec::new();
    let mut heap = BinaryHeap::new();

    labels.push(Label {
        node: source,
        pred: None,
    });
    heap.push(HeapItem {
        weight: 0.0,
        resource: 0.0,
        label_idx: 0,
    });

    while let Some(HeapItem {
        weight: w0,
        resource: r0,
        label_idx,
    }) = heap.pop()
    {
        let node = labels[label_idx].node;
        // Dominance check at settle time (lazy deletion).
        if frontier[node.0 as usize]
            .iter()
            .any(|&(fw, fr)| fw <= w0 + 1e-12 && fr <= r0 + 1e-12)
        {
            continue;
        }
        frontier[node.0 as usize].push((w0, r0));

        if node == target {
            // First settled label at the target is the optimum.
            let mut edges = Vec::new();
            let mut cur = label_idx;
            while let Some((p, e)) = labels[cur].pred {
                edges.push(e);
                cur = p;
            }
            edges.reverse();
            return Some(CspSolution {
                weight: w0,
                resource: r0,
                edges,
            });
        }

        for (eid, payload) in g.out_edges(node) {
            let ew = weight(eid, payload);
            let er = resource(eid, payload);
            debug_assert!(ew >= 0.0 && er >= 0.0, "RCSP requires non-negative metrics");
            let nw = w0 + ew;
            let nr = r0 + er;
            if nr > bound + 1e-12 {
                continue; // infeasible extension
            }
            let (_, v) = g.endpoints(eid);
            if frontier[v.0 as usize]
                .iter()
                .any(|&(fw, fr)| fw <= nw + 1e-12 && fr <= nr + 1e-12)
            {
                continue; // dominated
            }
            let idx = labels.len();
            labels.push(Label {
                node: v,
                pred: Some((label_idx, eid)),
            });
            heap.push(HeapItem {
                weight: nw,
                resource: nr,
                label_idx: idx,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two-metric diamond where the cheapest path violates the bound.
    #[test]
    fn constraint_forces_the_expensive_path() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        // Fast but costly: weight 2, resource 10.
        g.add_edge(s, a, (1.0, 5.0));
        g.add_edge(a, t, (1.0, 5.0));
        // Slow but cheap: weight 6, resource 2.
        g.add_edge(s, b, (3.0, 1.0));
        g.add_edge(b, t, (3.0, 1.0));

        let sol = constrained_shortest_path(&g, s, t, 4.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, 6.0);
        assert_eq!(sol.resource, 2.0);

        let unbounded =
            constrained_shortest_path(&g, s, t, f64::INFINITY, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(unbounded.weight, 2.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        assert!(
            constrained_shortest_path(&g, s, t, 50.0, |_, e| e.0, |_, e| e.1).is_none()
        );
    }

    #[test]
    fn exact_bound_is_feasible() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        let sol = constrained_shortest_path(&g, s, t, 100.0, |_, e| e.0, |_, e| e.1);
        assert!(sol.is_some());
    }

    #[test]
    fn source_is_target() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let sol = constrained_shortest_path(&g, s, s, 0.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, 0.0);
        assert!(sol.edges.is_empty());
    }

    /// Exhaustive DFS reference for randomized cross-checks.
    fn brute_force(
        g: &DiGraph<(), (f64, f64)>,
        s: NodeId,
        t: NodeId,
        bound: f64,
    ) -> Option<(f64, f64)> {
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &DiGraph<(), (f64, f64)>,
            u: NodeId,
            t: NodeId,
            bound: f64,
            w: f64,
            r: f64,
            visited: &mut Vec<bool>,
            best: &mut Option<(f64, f64)>,
        ) {
            if r > bound + 1e-12 {
                return;
            }
            if u == t {
                if best.is_none() || w < best.unwrap().0 {
                    *best = Some((w, r));
                }
                return;
            }
            visited[u.0 as usize] = true;
            for (eid, &(ew, er)) in g.out_edges(u) {
                let (_, v) = g.endpoints(eid);
                if !visited[v.0 as usize] {
                    dfs(g, v, t, bound, w + ew, r + er, visited, best);
                }
            }
            visited[u.0 as usize] = false;
        }
        let mut best = None;
        let mut visited = vec![false; g.node_count()];
        dfs(g, s, t, bound, 0.0, 0.0, &mut visited, &mut best);
        best
    }

    #[test]
    fn matches_brute_force_on_random_layered_dags() {
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..60 {
            // Layered DAG like the planner's: 4 layers, 2-4 nodes each.
            let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
            let s = g.add_node(());
            let mut prev = vec![s];
            for _ in 0..4 {
                let k = rng.random_range(2..5usize);
                let layer: Vec<NodeId> = (0..k).map(|_| g.add_node(())).collect();
                for &u in &prev {
                    for &v in &layer {
                        g.add_edge(
                            u,
                            v,
                            (rng.random_range(0.0..5.0), rng.random_range(0.0..5.0)),
                        );
                    }
                }
                prev = layer;
            }
            let t = g.add_node(());
            for &u in &prev {
                g.add_edge(u, t, (0.0, 0.0));
            }
            let bound = rng.random_range(5.0..20.0);
            let got = constrained_shortest_path(&g, s, t, bound, |_, e| e.0, |_, e| e.1);
            let want = brute_force(&g, s, t, bound);
            match (got, want) {
                (None, None) => {}
                (Some(sol), Some((bw, _))) => {
                    assert!(
                        (sol.weight - bw).abs() < 1e-9,
                        "case {case}: got {} want {bw}",
                        sol.weight
                    );
                    assert!(sol.resource <= bound + 1e-9);
                }
                other => panic!("case {case}: feasibility mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn solution_edges_are_contiguous() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let mid: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        let t = g.add_node(());
        for &m in &mid {
            g.add_edge(s, m, (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0)));
            g.add_edge(m, t, (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0)));
        }
        let sol =
            constrained_shortest_path(&g, s, t, 100.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.edges.len(), 2);
        assert_eq!(g.endpoints(sol.edges[0]).0, s);
        assert_eq!(g.endpoints(sol.edges[0]).1, g.endpoints(sol.edges[1]).0);
        assert_eq!(g.endpoints(sol.edges[1]).1, t);
    }
}
