//! Exact resource-constrained shortest path (RCSP) via Pareto-label search.
//!
//! The planner's real problem — "minimize completion time subject to a
//! budget" (paper Eq. 16–19) or its dual (Eq. 20–22) — is a weight-
//! constrained shortest path, which is NP-hard in general but solved
//! exactly and fast on layered DAGs by label-setting with Pareto dominance
//! pruning. This module is the correctness oracle against which the paper's
//! heuristic Algorithm 1 is compared in the ablation benches.
//!
//! ## Accelerations (all exactness-preserving)
//!
//! * **Backward potentials** ([`dag_potentials`]): one reverse-topological
//!   sweep computes, per node, the minimum remaining weight and minimum
//!   remaining resource to the target. Both are *admissible, consistent*
//!   lower bounds, so they can (a) order the heap A*-style by
//!   `w + lb_w(node)` without losing the first-settled-is-optimal
//!   property, (b) discard any label with `r + lb_r(node) > bound`
//!   (it can never complete feasibly), and (c) discard any label with
//!   `w + lb_w(node)` above a known feasible path's weight (it can never
//!   beat the incumbent). See [`constrained_shortest_path_with_bounds`].
//! * **Merged scalar frontier**: labels settle at a fixed node in
//!   non-decreasing weight order (heap order restricted to one node), so
//!   the per-node Pareto frontier of settled `(weight, resource)` pairs is
//!   always sorted by weight — a new label is dominated iff the smallest
//!   settled resource at its node is `<=` its own. One `f64` per node
//!   replaces the old `Vec<(f64, f64)>` linear scans.
//! * **Relative tolerance** ([`REL_TOL`]): dominance and bound checks use
//!   a relative slack. The previous absolute `1e-12` slack was meaningless
//!   for metrics at the planner's scales (micro-dollar costs reach `1e9`,
//!   where adjacent representable doubles differ by ~`1e-7`): float noise
//!   from summing edge metrics in path order could spuriously reject a
//!   mathematically feasible path.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{DiGraph, EdgeId, NodeId};

/// Relative slack for dominance and bound comparisons: `a` counts as
/// `<= b` when `a <= b + REL_TOL * |b|`. Scale-free, unlike the absolute
/// epsilon it replaced (see module docs).
pub const REL_TOL: f64 = 1e-9;

/// `a <= b` up to [`REL_TOL`] relative slack on `b`.
#[inline]
fn le_tol(a: f64, b: f64) -> bool {
    a <= b + REL_TOL * b.abs()
}

/// Result of a constrained shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct CspSolution {
    /// Total primary weight (the objective).
    pub weight: f64,
    /// Total secondary resource consumed (must be `<= bound`).
    pub resource: f64,
    /// Edge sequence from source to target.
    pub edges: Vec<EdgeId>,
}

/// Label-search effort counters for one query (observability; see
/// `OBSERVABILITY.md` for the planner counters they feed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CspStats {
    /// Labels pushed onto the heap (including the source label).
    pub labels_created: u64,
    /// Labels settled (survived the lazy dominance check).
    pub labels_settled: u64,
    /// Extensions discarded because even the optimistic remaining
    /// resource cannot meet the bound (`r + lb_r(node) > bound`).
    pub pruned_bound: u64,
    /// Extensions discarded by per-node Pareto dominance.
    pub pruned_dominated: u64,
    /// Extensions discarded because even the optimistic remaining weight
    /// cannot beat the incumbent feasible path (`w + lb_w(node) > best`).
    pub pruned_upper_bound: u64,
}

impl CspStats {
    /// All pruned extensions, regardless of reason.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_bound + self.pruned_dominated + self.pruned_upper_bound
    }
}

/// A query outcome plus its effort counters.
#[derive(Debug, Clone)]
pub struct CspRun {
    /// The optimum, or `None` when no feasible path exists.
    pub solution: Option<CspSolution>,
    /// Search-effort counters.
    pub stats: CspStats,
}

/// Per-node admissible lower bounds on the remaining weight/resource to
/// one fixed target, computed by [`dag_potentials`]. Nodes that cannot
/// reach the target hold `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Potentials {
    /// `min_weight_to[v]`: minimum total weight of any v→target path.
    pub min_weight_to: Vec<f64>,
    /// `min_resource_to[v]`: minimum total resource of any v→target path.
    pub min_resource_to: Vec<f64>,
}

/// Abstract out-edge expansion over a two-metric graph. The label core,
/// the potentials DP and the greedy incumbent descent are generic over
/// this, so one monomorphized implementation serves both a [`DiGraph`]
/// with metric closures and the planner's flat CSR (struct-of-arrays)
/// edge store, which iterates linearly over `times`/`costs` slices
/// instead of chasing per-node list pointers.
///
/// Implementations must yield a node's out-edges in a **fixed canonical
/// order** — every exact tie in the search is broken by expansion order,
/// so two stores that claim bit-identical answers must expand
/// identically (the planner's CSR mirrors `DiGraph::out_edges` order for
/// exactly this reason).
pub trait EdgeExpand {
    /// Number of nodes; ids are dense in `0..node_count()`.
    fn node_count(&self) -> usize;
    /// Visit every out-edge of `v` in canonical order as
    /// `(edge id, head node, weight, resource)`.
    fn for_each_out(&mut self, v: u32, f: impl FnMut(EdgeId, u32, f64, f64));
    /// A topological order over all nodes, or `None` if cyclic.
    fn topo_order(&self) -> Option<Vec<u32>>;
}

/// The [`DiGraph`]-backed store: metric closures evaluated on intrusive
/// adjacency lists (most-recently-added first, as [`DiGraph::out_edges`]
/// iterates).
struct ClosureExpand<'g, N, E, W, R> {
    g: &'g DiGraph<N, E>,
    weight: W,
    resource: R,
}

impl<N, E, W, R> EdgeExpand for ClosureExpand<'_, N, E, W, R>
where
    W: FnMut(EdgeId, &E) -> f64,
    R: FnMut(EdgeId, &E) -> f64,
{
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    fn for_each_out(&mut self, v: u32, mut f: impl FnMut(EdgeId, u32, f64, f64)) {
        for (eid, payload) in self.g.out_edges(NodeId(v)) {
            let (_, head) = self.g.endpoints(eid);
            let w = (self.weight)(eid, payload);
            let r = (self.resource)(eid, payload);
            f(eid, head.0, w, r);
        }
    }

    fn topo_order(&self) -> Option<Vec<u32>> {
        Some(
            self.g
                .topological_order()?
                .into_iter()
                .map(|n| n.0)
                .collect(),
        )
    }
}

/// Compute backward potentials to `target` over a DAG: the minimum
/// remaining weight and minimum remaining resource from every node, via
/// one dynamic-programming sweep in reverse topological order (the
/// graph stores no in-edges, so this replaces two reverse Dijkstra runs
/// at strictly lower cost). Returns `None` if the graph has a cycle.
///
/// Both bounds are admissible (true minima) and consistent
/// (`lb(u) <= w(u→v) + lb(v)` holds by construction), which is what the
/// pruning in [`constrained_shortest_path_with_bounds`] relies on.
pub fn dag_potentials<N, E>(
    g: &DiGraph<N, E>,
    target: NodeId,
    weight: impl FnMut(EdgeId, &E) -> f64,
    resource: impl FnMut(EdgeId, &E) -> f64,
) -> Option<Potentials> {
    dag_potentials_on(
        &mut ClosureExpand {
            g,
            weight,
            resource,
        },
        target.0,
    )
}

/// [`dag_potentials`] over any [`EdgeExpand`] store.
pub fn dag_potentials_on<X: EdgeExpand>(g: &mut X, target: u32) -> Option<Potentials> {
    let order = g.topo_order()?;
    let n = g.node_count();
    let mut min_weight_to = vec![f64::INFINITY; n];
    let mut min_resource_to = vec![f64::INFINITY; n];
    min_weight_to[target as usize] = 0.0;
    min_resource_to[target as usize] = 0.0;
    // Visiting u after all its successors makes one relaxation per edge
    // sufficient; reverse topological order guarantees exactly that.
    for &u in order.iter().rev() {
        let ui = u as usize;
        g.for_each_out(u, |_, v, ew, er| {
            let w = ew + min_weight_to[v as usize];
            let r = er + min_resource_to[v as usize];
            if w < min_weight_to[ui] {
                min_weight_to[ui] = w;
            }
            if r < min_resource_to[ui] {
                min_resource_to[ui] = r;
            }
        });
    }
    Some(Potentials {
        min_weight_to,
        min_resource_to,
    })
}

/// Repair backward potentials after an in-place edge-weight patch,
/// reusing `prev` wherever the recomputation provably cannot differ.
///
/// `dirty_tails[u]` marks nodes whose *out-edge* weights may have
/// changed. The sweep walks the same reverse topological order as
/// [`dag_potentials_on`]; a node is recomputed when it is a dirty tail
/// or when any successor's potentials changed, otherwise its previous
/// values are kept verbatim. Recomputation folds edges in the exact
/// order of the full DP, so the result is bit-identical to running
/// [`dag_potentials_on`] from scratch on the patched graph (marking
/// every node dirty degenerates to exactly that). Returns `None` on a
/// cycle or when `prev`'s length does not match the graph.
pub fn dag_potentials_resume_on<X: EdgeExpand>(
    g: &mut X,
    target: u32,
    prev: &Potentials,
    dirty_tails: &[bool],
) -> Option<Potentials> {
    let order = g.topo_order()?;
    let n = g.node_count();
    if prev.min_weight_to.len() != n || prev.min_resource_to.len() != n || dirty_tails.len() != n {
        return None;
    }
    let mut min_weight_to = prev.min_weight_to.clone();
    let mut min_resource_to = prev.min_resource_to.clone();
    // The target's potentials are fixed at zero regardless of history.
    min_weight_to[target as usize] = 0.0;
    min_resource_to[target as usize] = 0.0;
    let mut changed = vec![false; n];
    let mut num_changed = 0usize;
    for &u in order.iter().rev() {
        let ui = u as usize;
        // A node needs recomputation iff its own out-edge weights may
        // have moved or a successor's potentials did. Until the sweep
        // has produced its first changed node, no successor can have
        // changed, so the out-edge scan is skipped wholesale — for a
        // dirty set concentrated late in the reverse order (e.g. the
        // first decision column of a planner DAG) this makes the
        // resume proportional to the affected region, not the graph.
        let mut needs = dirty_tails[ui];
        if !needs && num_changed > 0 {
            g.for_each_out(u, |_, v, _, _| {
                needs |= changed[v as usize];
            });
        }
        if !needs {
            continue;
        }
        let mut w_min = f64::INFINITY;
        let mut r_min = f64::INFINITY;
        if ui == target as usize {
            w_min = 0.0;
            r_min = 0.0;
        }
        g.for_each_out(u, |_, v, ew, er| {
            let w = ew + min_weight_to[v as usize];
            let r = er + min_resource_to[v as usize];
            if w < w_min {
                w_min = w;
            }
            if r < r_min {
                r_min = r;
            }
        });
        let moved = w_min.to_bits() != min_weight_to[ui].to_bits()
            || r_min.to_bits() != min_resource_to[ui].to_bits();
        changed[ui] = moved;
        num_changed += moved as usize;
        min_weight_to[ui] = w_min;
        min_resource_to[ui] = r_min;
    }
    Some(Potentials {
        min_weight_to,
        min_resource_to,
    })
}

#[derive(Clone, Copy, Debug)]
struct Label {
    node: u32,
    /// Exact accumulated weight along the label's path (kept here, not in
    /// the heap entry, so heap sifts move 24-byte items).
    weight: f64,
    /// Exact accumulated resource along the label's path.
    resource: f64,
    // Predecessor label index in the label arena + the edge taken.
    pred: Option<(usize, EdgeId)>,
}

struct HeapItem {
    /// Heap priority: `weight + lb_w(node)` (plain `weight` without
    /// potentials — the lower bounds are then zero).
    prio_w: f64,
    /// Secondary priority: `resource + lb_r(node)`.
    prio_r: f64,
    label_idx: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.prio_w == other.prio_w && self.prio_r == other.prio_r
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (priority weight, priority resource), then label
        // index for determinism.
        other
            .prio_w
            .total_cmp(&self.prio_w)
            .then_with(|| other.prio_r.total_cmp(&self.prio_r))
            .then_with(|| other.label_idx.cmp(&self.label_idx))
    }
}

/// Exact constrained shortest path: minimize the sum of `weight` over a
/// source→target path subject to the sum of `resource` being `<= bound`.
///
/// Both metrics must be non-negative. Labels are expanded in
/// lexicographic (weight, resource) order; the first label to settle on
/// `target` is optimal. Dominance pruning keeps per-node Pareto frontiers
/// small — on Astra's layered DAGs (≤ 6 hops) frontiers stay tiny.
///
/// Returns `None` when no feasible path exists. See
/// [`constrained_shortest_path_with_bounds`] for the potential-guided
/// variant used on repeated planner queries.
pub fn constrained_shortest_path<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    weight: impl FnMut(EdgeId, &E) -> f64,
    resource: impl FnMut(EdgeId, &E) -> f64,
) -> Option<CspSolution> {
    let mut x = ClosureExpand {
        g,
        weight,
        resource,
    };
    csp_core(&mut x, source.0, target.0, bound, Unguided, f64::INFINITY).solution
}

/// [`constrained_shortest_path`] accelerated by precomputed backward
/// potentials (see [`dag_potentials`]): A*-ordered expansion on
/// `w + lb_w`, feasibility pruning on `r + lb_r(node) > bound`, and
/// incumbent pruning against the greedy lower-bound path's weight when
/// that path is feasible.
///
/// Exactness: the potentials are admissible and consistent lower bounds,
/// so the priority `w + lb_w(node)` is non-decreasing along any
/// expansion and the first label settled at `target` still carries the
/// lexicographic-minimum `(weight, resource)` — identical to the plain
/// search (equivalence is property-tested). `lb_weight`/`lb_resource`
/// must come from [`dag_potentials`] over the *same* metric closures
/// (swap the two slices to answer the dual objective from one sweep).
#[allow(clippy::too_many_arguments)]
pub fn constrained_shortest_path_with_bounds<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    weight: impl FnMut(EdgeId, &E) -> f64,
    resource: impl FnMut(EdgeId, &E) -> f64,
    lb_weight: &[f64],
    lb_resource: &[f64],
) -> CspRun {
    let mut x = ClosureExpand {
        g,
        weight,
        resource,
    };
    constrained_shortest_path_with_bounds_on(&mut x, source.0, target.0, bound, lb_weight, lb_resource)
}

/// [`constrained_shortest_path_with_bounds`] over any [`EdgeExpand`]
/// store: same feasibility short-circuit, greedy incumbent and guided
/// label search, bit-identical answers for an identically-ordered store.
pub fn constrained_shortest_path_with_bounds_on<X: EdgeExpand>(
    g: &mut X,
    source: u32,
    target: u32,
    bound: f64,
    lb_weight: &[f64],
    lb_resource: &[f64],
) -> CspRun {
    // The source's own potentials decide feasibility outright.
    if lb_weight[source as usize].is_infinite() || !le_tol(lb_resource[source as usize], bound) {
        return CspRun {
            solution: None,
            stats: CspStats::default(),
        };
    }
    // Incumbent upper bound: the weight of the greedy minimum-weight
    // path (descending the weight potential reproduces its exact float
    // sum), usable only if that path is itself feasible. Any label whose
    // optimistic completion exceeds it can never be optimal.
    let best_known = greedy_descent_bound(g, source, target, lb_weight, bound);
    csp_core(
        g,
        source,
        target,
        bound,
        Guided {
            lb_w: lb_weight,
            lb_r: lb_resource,
        },
        best_known,
    )
}

/// Compile-time switch between the plain lexicographic search and the
/// potential-guided one, so the plain hot path carries no lookups, no
/// zero-adds, and no incumbent check (the label search runs millions of
/// edge relaxations per planner solve — a runtime `Option` on this path
/// measurably slows the unguided case).
trait Guide {
    /// Whether real lower bounds exist (drives dead-code elimination).
    const GUIDED: bool;
    /// Admissible lower bound on the remaining weight from `v`.
    fn lb_w(&self, v: u32) -> f64;
    /// Admissible lower bound on the remaining resource from `v`.
    fn lb_r(&self, v: u32) -> f64;
}

/// Zero lower bounds: the classic lexicographic (weight, resource) search.
struct Unguided;
impl Guide for Unguided {
    const GUIDED: bool = false;
    #[inline]
    fn lb_w(&self, _: u32) -> f64 {
        0.0
    }
    #[inline]
    fn lb_r(&self, _: u32) -> f64 {
        0.0
    }
}

/// Potentials from [`dag_potentials`]: the A*-guided, pruned search.
struct Guided<'a> {
    lb_w: &'a [f64],
    lb_r: &'a [f64],
}
impl Guide for Guided<'_> {
    const GUIDED: bool = true;
    #[inline]
    fn lb_w(&self, v: u32) -> f64 {
        self.lb_w[v as usize]
    }
    #[inline]
    fn lb_r(&self, v: u32) -> f64 {
        self.lb_r[v as usize]
    }
}

/// Shared label-setting core, monomorphized per [`Guide`]. With
/// [`Unguided`] this is the classic lexicographic (weight, resource)
/// search; with [`Guided`] it becomes the A*-ordered, pruned search.
/// Either way the settled optimum is the same (see
/// `constrained_shortest_path_with_bounds` docs for the argument).
fn csp_core<X: EdgeExpand, G: Guide>(
    g: &mut X,
    source: u32,
    target: u32,
    bound: f64,
    guide: G,
    best_known: f64,
) -> CspRun {
    let n = g.node_count();
    let mut stats = CspStats::default();

    // Merged per-node frontier: settled labels at one node arrive in
    // non-decreasing weight order, so the Pareto frontier reduces to the
    // minimum settled resource (module docs).
    let mut frontier_min_r: Vec<f64> = vec![f64::INFINITY; n];
    let mut labels: Vec<Label> = Vec::new();
    let mut heap = BinaryHeap::new();

    labels.push(Label {
        node: source,
        weight: 0.0,
        resource: 0.0,
        pred: None,
    });
    heap.push(HeapItem {
        prio_w: if G::GUIDED { guide.lb_w(source) } else { 0.0 },
        prio_r: if G::GUIDED { guide.lb_r(source) } else { 0.0 },
        label_idx: 0,
    });
    stats.labels_created += 1;

    while let Some(HeapItem { label_idx, .. }) = heap.pop() {
        let Label {
            node,
            weight: w0,
            resource: r0,
            ..
        } = labels[label_idx];
        // Dominance check at settle time (lazy deletion): everything
        // settled here already has weight <= w0.
        if le_tol(frontier_min_r[node as usize], r0) {
            stats.pruned_dominated += 1;
            continue;
        }
        frontier_min_r[node as usize] = r0;
        stats.labels_settled += 1;

        if node == target {
            // First settled label at the target is the optimum.
            let mut edges = Vec::new();
            let mut cur = label_idx;
            while let Some((p, e)) = labels[cur].pred {
                edges.push(e);
                cur = p;
            }
            edges.reverse();
            return CspRun {
                solution: Some(CspSolution {
                    weight: w0,
                    resource: r0,
                    edges,
                }),
                stats,
            };
        }

        g.for_each_out(node, |eid, v, ew, er| {
            debug_assert!(ew >= 0.0 && er >= 0.0, "RCSP requires non-negative metrics");
            let nw = w0 + ew;
            let nr = r0 + er;
            // Optimistic completion: admissible bounds mean these checks
            // can only discard labels that provably cannot finish
            // feasibly (resource) or optimally (weight).
            let pr = if G::GUIDED { nr + guide.lb_r(v) } else { nr };
            if !le_tol(pr, bound) {
                stats.pruned_bound += 1;
                return;
            }
            let pw = if G::GUIDED { nw + guide.lb_w(v) } else { nw };
            if G::GUIDED && !le_tol(pw, best_known) {
                stats.pruned_upper_bound += 1;
                return;
            }
            if le_tol(frontier_min_r[v as usize], nr) {
                stats.pruned_dominated += 1;
                return;
            }
            let idx = labels.len();
            labels.push(Label {
                node: v,
                weight: nw,
                resource: nr,
                pred: Some((label_idx, eid)),
            });
            heap.push(HeapItem {
                prio_w: pw,
                prio_r: pr,
                label_idx: idx,
            });
            stats.labels_created += 1;
        });
    }
    CspRun {
        solution: None,
        stats,
    }
}

/// Walk the greedy minimum-weight path from `source` by always taking an
/// edge on which `edge weight + lb_w(next)` attains `lb_w(here)` (such
/// an edge exists by the DP definition of the potential). Returns that
/// path's exact accumulated weight if its accumulated resource meets
/// `bound`, else `INFINITY` (no incumbent).
fn greedy_descent_bound<X: EdgeExpand>(
    g: &mut X,
    source: u32,
    target: u32,
    lb_w: &[f64],
    bound: f64,
) -> f64 {
    if lb_w[source as usize].is_infinite() {
        return f64::INFINITY;
    }
    let (mut node, mut w, mut r) = (source, 0.0f64, 0.0f64);
    while node != target {
        let mut best: Option<(f64, u32, f64, f64)> = None;
        g.for_each_out(node, |_, v, ew, er| {
            let through = ew + lb_w[v as usize];
            if best.is_none_or(|(bw, _, _, _)| through < bw) {
                best = Some((through, v, ew, er));
            }
        });
        let Some((_, v, ew, er)) = best else {
            return f64::INFINITY; // dead end: no usable incumbent
        };
        w += ew;
        r += er;
        node = v;
    }
    if le_tol(r, bound) {
        w
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two-metric diamond where the cheapest path violates the bound.
    #[test]
    fn constraint_forces_the_expensive_path() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        // Fast but costly: weight 2, resource 10.
        g.add_edge(s, a, (1.0, 5.0));
        g.add_edge(a, t, (1.0, 5.0));
        // Slow but cheap: weight 6, resource 2.
        g.add_edge(s, b, (3.0, 1.0));
        g.add_edge(b, t, (3.0, 1.0));

        let sol = constrained_shortest_path(&g, s, t, 4.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, 6.0);
        assert_eq!(sol.resource, 2.0);

        let unbounded =
            constrained_shortest_path(&g, s, t, f64::INFINITY, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(unbounded.weight, 2.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        assert!(
            constrained_shortest_path(&g, s, t, 50.0, |_, e| e.0, |_, e| e.1).is_none()
        );
    }

    #[test]
    fn exact_bound_is_feasible() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        let sol = constrained_shortest_path(&g, s, t, 100.0, |_, e| e.0, |_, e| e.1);
        assert!(sol.is_some());
    }

    #[test]
    fn source_is_target() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let sol = constrained_shortest_path(&g, s, s, 0.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, 0.0);
        assert!(sol.edges.is_empty());
    }

    /// Random layered DAG for the potentials-resume tests: edges only
    /// go from lower to higher node id, so the graph is acyclic.
    fn random_dag(rng: &mut StdRng, n: usize) -> DiGraph<(), (f64, f64)> {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random_range(0..3) == 0 {
                    let w = rng.random_range(1..1000) as f64 / 7.0;
                    let r = rng.random_range(1..1000) as f64 / 11.0;
                    g.add_edge(ids[i], ids[j], (w, r));
                }
            }
        }
        // Guarantee sink reachability from every node.
        for i in 0..n - 1 {
            g.add_edge(ids[i], ids[n - 1], (1e6, 1e6));
        }
        g
    }

    fn full_potentials(g: &DiGraph<(), (f64, f64)>, target: NodeId) -> Potentials {
        dag_potentials(g, target, |_, e| e.0, |_, e| e.1).unwrap()
    }

    /// Resuming with every tail marked dirty degenerates to the full DP.
    #[test]
    fn resume_all_dirty_matches_full_dp() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 4 + (trial % 13);
            let mut g = random_dag(&mut rng, n);
            let target = NodeId(n as u32 - 1);
            let prev = full_potentials(&g, target);
            // Perturb a handful of edges in place.
            for e in 0..g.edge_count() {
                if rng.random_range(0..2) == 0 {
                    let (w, r) = *g.edge(EdgeId(e as u32));
                    *g.edge_mut(EdgeId(e as u32)) = (w * 1.5 + 0.25, r * 0.5 + 0.5);
                }
            }
            let dirty = vec![true; n];
            let resumed = dag_potentials_resume_on(
                &mut ClosureExpand {
                    g: &g,
                    weight: |_, e: &(f64, f64)| e.0,
                    resource: |_, e: &(f64, f64)| e.1,
                },
                target.0,
                &prev,
                &dirty,
            )
            .unwrap();
            let fresh = full_potentials(&g, target);
            for u in 0..n {
                assert_eq!(
                    resumed.min_weight_to[u].to_bits(),
                    fresh.min_weight_to[u].to_bits()
                );
                assert_eq!(
                    resumed.min_resource_to[u].to_bits(),
                    fresh.min_resource_to[u].to_bits()
                );
            }
        }
    }

    /// Marking only the actually-patched tails yields results that are
    /// bit-identical to a fresh full DP over the patched graph.
    #[test]
    fn resume_with_minimal_dirty_set_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..40 {
            let n = 5 + (trial % 11);
            let mut g = random_dag(&mut rng, n);
            let target = NodeId(n as u32 - 1);
            let prev = full_potentials(&g, target);
            // Patch the out-edges of a random subset of tails.
            let mut dirty = vec![false; n];
            for (u, tail_dirty) in dirty.iter_mut().enumerate().take(n - 1) {
                if rng.random_range(0..3) == 0 {
                    *tail_dirty = true;
                    let eids: Vec<EdgeId> = g.out_edges(NodeId(u as u32)).map(|(e, _)| e).collect();
                    for eid in eids {
                        let (w, r) = *g.edge(eid);
                        *g.edge_mut(eid) = (w + 3.5, (r - 0.25).abs());
                    }
                }
            }
            let resumed = dag_potentials_resume_on(
                &mut ClosureExpand {
                    g: &g,
                    weight: |_, e: &(f64, f64)| e.0,
                    resource: |_, e: &(f64, f64)| e.1,
                },
                target.0,
                &prev,
                &dirty,
            )
            .unwrap();
            let fresh = full_potentials(&g, target);
            for u in 0..n {
                assert_eq!(
                    resumed.min_weight_to[u].to_bits(),
                    fresh.min_weight_to[u].to_bits(),
                    "trial {trial} node {u} weight"
                );
                assert_eq!(
                    resumed.min_resource_to[u].to_bits(),
                    fresh.min_resource_to[u].to_bits(),
                    "trial {trial} node {u} resource"
                );
            }
        }
    }

    /// Regression for the epsilon fix: at ~1e9 metric scale (nano-dollar
    /// resources summed in f64), path sums carry float noise far above
    /// the old absolute `1e-12` slack, which therefore rejected
    /// mathematically feasible paths. The relative tolerance accepts
    /// them; a genuinely over-bound path (0.1% over) is still rejected.
    #[test]
    fn near_tied_resources_at_large_scale_use_relative_tolerance() {
        let bound = 1e9;
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        // Within float noise of the bound (3e-13 relative, ~3e-4
        // absolute): feasible under REL_TOL, "infeasible" under the old
        // absolute 1e-12 check.
        g.add_edge(s, t, (5.0, bound * (1.0 + 3e-13)));
        // Clearly under the bound but much slower: the fallback the old
        // epsilon would have wrongly selected.
        g.add_edge(s, t, (50.0, 0.5e9));
        let sol = constrained_shortest_path(&g, s, t, bound, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, 5.0, "noise-level overshoot must stay feasible");

        // A real violation (0.1% over) is still infeasible.
        let mut g2: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s2 = g2.add_node(());
        let t2 = g2.add_node(());
        g2.add_edge(s2, t2, (5.0, bound * 1.001));
        assert!(constrained_shortest_path(&g2, s2, t2, bound, |_, e| e.0, |_, e| e.1).is_none());
    }

    /// Near-tied *dominance* at large scale: a slightly-heavier label
    /// (noise-level difference) is treated as tied and pruned, keeping
    /// frontiers tight without changing which optimum is returned.
    #[test]
    fn near_tied_dominance_prunes_noise_level_duplicates() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        let w = 1e9;
        g.add_edge(s, m, (w, 1.0));
        g.add_edge(s, m, (w * (1.0 + 1e-13), 1.0)); // noise-level twin
        g.add_edge(m, t, (1.0, 1.0));
        let sol = constrained_shortest_path(&g, s, t, 10.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.weight, w + 1.0);
    }

    /// Exhaustive DFS reference for randomized cross-checks.
    fn brute_force(
        g: &DiGraph<(), (f64, f64)>,
        s: NodeId,
        t: NodeId,
        bound: f64,
    ) -> Option<(f64, f64)> {
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &DiGraph<(), (f64, f64)>,
            u: NodeId,
            t: NodeId,
            bound: f64,
            w: f64,
            r: f64,
            visited: &mut Vec<bool>,
            best: &mut Option<(f64, f64)>,
        ) {
            if r > bound + 1e-12 {
                return;
            }
            if u == t {
                if best.is_none() || w < best.unwrap().0 {
                    *best = Some((w, r));
                }
                return;
            }
            visited[u.0 as usize] = true;
            for (eid, &(ew, er)) in g.out_edges(u) {
                let (_, v) = g.endpoints(eid);
                if !visited[v.0 as usize] {
                    dfs(g, v, t, bound, w + ew, r + er, visited, best);
                }
            }
            visited[u.0 as usize] = false;
        }
        let mut best = None;
        let mut visited = vec![false; g.node_count()];
        dfs(g, s, t, bound, 0.0, 0.0, &mut visited, &mut best);
        best
    }

    /// Random layered DAG like the planner's: 4 layers, 2-4 nodes each.
    fn random_layered_dag(rng: &mut StdRng) -> (DiGraph<(), (f64, f64)>, NodeId, NodeId) {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let mut prev = vec![s];
        for _ in 0..4 {
            let k = rng.random_range(2..5usize);
            let layer: Vec<NodeId> = (0..k).map(|_| g.add_node(())).collect();
            for &u in &prev {
                for &v in &layer {
                    g.add_edge(
                        u,
                        v,
                        (rng.random_range(0.0..5.0), rng.random_range(0.0..5.0)),
                    );
                }
            }
            prev = layer;
        }
        let t = g.add_node(());
        for &u in &prev {
            g.add_edge(u, t, (0.0, 0.0));
        }
        (g, s, t)
    }

    #[test]
    fn matches_brute_force_on_random_layered_dags() {
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..60 {
            let (g, s, t) = random_layered_dag(&mut rng);
            let bound = rng.random_range(5.0..20.0);
            let got = constrained_shortest_path(&g, s, t, bound, |_, e| e.0, |_, e| e.1);
            let want = brute_force(&g, s, t, bound);
            match (got, want) {
                (None, None) => {}
                (Some(sol), Some((bw, _))) => {
                    assert!(
                        (sol.weight - bw).abs() < 1e-9,
                        "case {case}: got {} want {bw}",
                        sol.weight
                    );
                    assert!(sol.resource <= bound + 1e-9);
                }
                other => panic!("case {case}: feasibility mismatch {other:?}"),
            }
        }
    }

    /// The potential-guided search must return bit-identical optima to
    /// the plain search — same weight, resource, and edge sequence — on
    /// randomized layered DAGs across tight, binding, and loose bounds.
    #[test]
    fn potentials_match_plain_search_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(4242);
        for case in 0..60 {
            let (g, s, t) = random_layered_dag(&mut rng);
            let pot = dag_potentials(&g, t, |_, e| e.0, |_, e| e.1).expect("layered DAG");
            for bound in [3.0, 8.0, 14.0, f64::INFINITY] {
                let plain = constrained_shortest_path(&g, s, t, bound, |_, e| e.0, |_, e| e.1);
                let run = constrained_shortest_path_with_bounds(
                    &g,
                    s,
                    t,
                    bound,
                    |_, e| e.0,
                    |_, e| e.1,
                    &pot.min_weight_to,
                    &pot.min_resource_to,
                );
                match (&plain, &run.solution) {
                    (None, None) => {}
                    (Some(p), Some(q)) => {
                        assert_eq!(
                            p.weight.to_bits(),
                            q.weight.to_bits(),
                            "case {case} bound {bound}: weight"
                        );
                        assert_eq!(
                            p.resource.to_bits(),
                            q.resource.to_bits(),
                            "case {case} bound {bound}: resource"
                        );
                        assert_eq!(p.edges, q.edges, "case {case} bound {bound}: path");
                    }
                    other => panic!("case {case} bound {bound}: feasibility mismatch {other:?}"),
                }
            }
        }
    }

    /// The potentials themselves are true minima: descending to the
    /// target can realize them, and they lower-bound every path.
    #[test]
    fn potentials_are_admissible_minima() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, (1.0, 5.0));
        g.add_edge(a, t, (1.0, 5.0));
        g.add_edge(s, b, (3.0, 1.0));
        g.add_edge(b, t, (3.0, 1.0));
        let pot = dag_potentials(&g, t, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(pot.min_weight_to[s.0 as usize], 2.0);
        assert_eq!(pot.min_resource_to[s.0 as usize], 2.0);
        assert_eq!(pot.min_weight_to[a.0 as usize], 1.0);
        assert_eq!(pot.min_resource_to[b.0 as usize], 1.0);
        assert_eq!(pot.min_weight_to[t.0 as usize], 0.0);
    }

    /// A node that cannot reach the target carries infinite potentials
    /// and its labels are pruned instead of expanded.
    #[test]
    fn unreachable_branches_are_pruned() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let dead = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, dead, (0.1, 0.1)); // dead end
        g.add_edge(s, t, (1.0, 1.0));
        let pot = dag_potentials(&g, t, |_, e| e.0, |_, e| e.1).unwrap();
        assert!(pot.min_weight_to[dead.0 as usize].is_infinite());
        let run = constrained_shortest_path_with_bounds(
            &g,
            s,
            t,
            10.0,
            |_, e| e.0,
            |_, e| e.1,
            &pot.min_weight_to,
            &pot.min_resource_to,
        );
        assert_eq!(run.solution.unwrap().weight, 1.0);
        assert!(run.stats.pruned_bound >= 1, "dead branch must be pruned");
    }

    /// Pruning counters fire: with a binding bound, the potential-guided
    /// search discards work the plain search would have done.
    #[test]
    fn pruning_reduces_search_effort() {
        let mut rng = StdRng::seed_from_u64(99);
        let (g, s, t) = random_layered_dag(&mut rng);
        let pot = dag_potentials(&g, t, |_, e| e.0, |_, e| e.1).unwrap();
        let run = constrained_shortest_path_with_bounds(
            &g,
            s,
            t,
            9.0,
            |_, e| e.0,
            |_, e| e.1,
            &pot.min_weight_to,
            &pot.min_resource_to,
        );
        assert!(run.solution.is_some());
        assert!(
            run.stats.pruned_total() > 0,
            "expected pruning on a binding bound: {:?}",
            run.stats
        );
        // With the bound loose, the incumbent from the feasible greedy
        // min-weight path caps pushes at the true optimum's priority and
        // the answer is exactly that optimum.
        let loose = constrained_shortest_path_with_bounds(
            &g,
            s,
            t,
            f64::INFINITY,
            |_, e| e.0,
            |_, e| e.1,
            &pot.min_weight_to,
            &pot.min_resource_to,
        );
        // (Approximate: the forward path sum and the backward DP sum
        // accumulate in different orders.)
        let lsol = loose.solution.unwrap();
        assert!((lsol.weight - pot.min_weight_to[s.0 as usize]).abs() < 1e-9);
    }

    /// Infeasibility is detected from the source potential alone.
    #[test]
    fn potentials_detect_infeasibility_immediately() {
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        let pot = dag_potentials(&g, t, |_, e| e.0, |_, e| e.1).unwrap();
        let run = constrained_shortest_path_with_bounds(
            &g,
            s,
            t,
            50.0,
            |_, e| e.0,
            |_, e| e.1,
            &pot.min_weight_to,
            &pot.min_resource_to,
        );
        assert!(run.solution.is_none());
        assert_eq!(run.stats.labels_created, 0, "no search needed");
    }

    #[test]
    fn solution_edges_are_contiguous() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g: DiGraph<(), (f64, f64)> = DiGraph::new();
        let s = g.add_node(());
        let mid: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        let t = g.add_node(());
        for &m in &mid {
            g.add_edge(s, m, (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0)));
            g.add_edge(m, t, (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0)));
        }
        let sol =
            constrained_shortest_path(&g, s, t, 100.0, |_, e| e.0, |_, e| e.1).unwrap();
        assert_eq!(sol.edges.len(), 2);
        assert_eq!(g.endpoints(sol.edges[0]).0, s);
        assert_eq!(g.endpoints(sol.edges[0]).1, g.endpoints(sol.edges[1]).0);
        assert_eq!(g.endpoints(sol.edges[1]).1, t);
    }
}
