//! A small, fast, seedable 64-bit hash (FNV-1a with an avalanche
//! finisher) — dependency-free and stable across platforms, which the
//! sketches' serialized form relies on.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash `bytes` with a seed, finishing with the splitmix64 avalanche so
/// low-entropy inputs still spread over all 64 bits (plain FNV's low
/// bits are too regular for HyperLogLog's bucket selection).
pub fn hash64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finisher.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(hash64(b"abc", 0), hash64(b"abc", 0));
        assert_ne!(hash64(b"abc", 0), hash64(b"abc", 1));
        assert_ne!(hash64(b"abc", 0), hash64(b"abd", 0));
    }

    #[test]
    fn bits_are_roughly_balanced() {
        // Over many inputs, each of the 64 bits should be ~50% ones.
        let n = 4096;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let h = hash64(&u64::to_le_bytes(i), 42);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((h >> b) & 1) as u32;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!((0.45..0.55).contains(&frac), "bit {b}: {frac}");
        }
    }

    #[test]
    fn empty_input_hashes() {
        assert_ne!(hash64(b"", 0), 0);
        assert_ne!(hash64(b"", 0), hash64(b"", 1));
    }
}
