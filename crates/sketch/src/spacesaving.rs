//! SpaceSaving heavy hitters (Metwally, Agrawal, El Abbadi 2005).

use std::collections::HashMap;

/// A SpaceSaving summary tracking (approximately) the `capacity` most
/// frequent items of a stream.
///
/// Guarantees (single summary): every item with true count > N/capacity
/// is present, and each reported count overestimates the true count by
/// at most the counter's recorded error. Merging (counter-wise sum, then
/// trim to capacity) gives the weaker mergeable-summaries bound: a
/// surviving item undercounts by at most N_total/capacity — which is
/// what lets the reduce tree combine partial top-k tables in any shape
/// with bounded (though not bit-identical) drift.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSaving {
    capacity: usize,
    /// item → (count, error). `count` includes `error`.
    counters: HashMap<String, (u64, u64)>,
}

impl SpaceSaving {
    /// A summary with room for `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observe one occurrence of `item`.
    pub fn insert(&mut self, item: &str) {
        self.insert_weighted(item, 1);
    }

    /// Observe `weight` occurrences of `item`.
    pub fn insert_weighted(&mut self, item: &str, weight: u64) {
        if let Some((count, _)) = self.counters.get_mut(item) {
            *count += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item.to_string(), (weight, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // error (the SpaceSaving replacement rule).
        let (min_item, (min_count, _)) = self
            .counters
            .iter()
            .min_by(|(ka, (ca, _)), (kb, (cb, _))| ca.cmp(cb).then_with(|| ka.cmp(kb)))
            .map(|(k, v)| (k.clone(), *v))
            .expect("at capacity > 0");
        self.counters.remove(&min_item);
        self.counters
            .insert(item.to_string(), (min_count + weight, min_count));
    }

    /// Merge another summary into this one (counts and errors add), then
    /// trim back to capacity keeping the largest counters.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for (item, &(count, error)) in &other.counters {
            let entry = self.counters.entry(item.clone()).or_insert((0, 0));
            entry.0 += count;
            entry.1 += error;
        }
        if self.counters.len() > self.capacity {
            let mut all: Vec<(String, (u64, u64))> = self.counters.drain().collect();
            // Keep the largest counts; deterministic tie-break by name.
            all.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
            all.truncate(self.capacity);
            self.counters = all.into_iter().collect();
        }
    }

    /// The `k` heaviest items as `(item, count, error)`, ordered by count
    /// descending (ties by name for determinism).
    pub fn top(&self, k: usize) -> Vec<(String, u64, u64)> {
        let mut all: Vec<(String, u64, u64)> = self
            .counters
            .iter()
            .map(|(item, &(c, e))| (item.clone(), c, e))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Serialize as `capacity` then one `item\tcount\terror` line each,
    /// sorted for determinism.
    pub fn to_lines(&self) -> String {
        let mut out = format!("capacity\t{}\n", self.capacity);
        for (item, count, error) in self.top(self.counters.len()) {
            out.push_str(&format!("{item}\t{count}\t{error}\n"));
        }
        out
    }

    /// Parse the [`to_lines`](Self::to_lines) format.
    pub fn from_lines(text: &str) -> Option<SpaceSaving> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let capacity: usize = header.strip_prefix("capacity\t")?.parse().ok()?;
        let mut out = SpaceSaving::new(capacity);
        for line in lines {
            let mut cols = line.split('\t');
            let item = cols.next()?;
            let count: u64 = cols.next()?.parse().ok()?;
            let error: u64 = cols.next()?.parse().ok()?;
            out.counters.insert(item.to_string(), (count, error));
        }
        (out.counters.len() <= capacity).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(10);
        for _ in 0..5 {
            s.insert("a");
        }
        for _ in 0..3 {
            s.insert("b");
        }
        s.insert("c");
        assert_eq!(
            s.top(3),
            vec![
                ("a".to_string(), 5, 0),
                ("b".to_string(), 3, 0),
                ("c".to_string(), 1, 0)
            ]
        );
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        // Zipf-ish stream: "hot" appears far more than capacity admits
        // losing.
        let mut s = SpaceSaving::new(8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut true_hot = 0u64;
        for _ in 0..10_000 {
            if rng.random::<f64>() < 0.3 {
                s.insert("hot");
                true_hot += 1;
            } else {
                let cold = format!("cold{}", rng.random_range(0..500u32));
                s.insert(&cold);
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, "hot");
        // Overestimate bounded by recorded error.
        assert!(top[0].1 >= true_hot);
        assert!(top[0].1 - top[0].2 <= true_hot);
    }

    #[test]
    fn count_bounds_hold() {
        // count - error <= true <= count, for every surviving counter.
        let mut s = SpaceSaving::new(4);
        let stream = ["a", "b", "a", "c", "d", "e", "a", "f", "b", "a"];
        let mut truth: HashMap<&str, u64> = HashMap::new();
        for item in stream {
            s.insert(item);
            *truth.entry(item).or_default() += 1;
        }
        for (item, count, error) in s.top(4) {
            let t = truth[item.as_str()];
            assert!(count >= t, "{item}: count {count} < true {t}");
            assert!(count - error <= t, "{item}: lower bound violated");
        }
    }

    #[test]
    fn merge_preserves_totals_for_hot_items() {
        let mut a = SpaceSaving::new(16);
        let mut b = SpaceSaving::new(16);
        for _ in 0..100 {
            a.insert("x");
            b.insert("x");
            b.insert("y");
        }
        a.merge(&b);
        let top = a.top(2);
        assert_eq!(top[0], ("x".to_string(), 200, 0));
        assert_eq!(top[1], ("y".to_string(), 100, 0));
    }

    #[test]
    fn merge_trims_to_capacity() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for item in ["a", "b", "c"] {
            a.insert(item);
        }
        for item in ["d", "e", "f"] {
            b.insert(item);
            b.insert(item);
        }
        a.merge(&b);
        assert_eq!(a.len(), 3);
        // The doubled items win.
        let names: Vec<String> = a.top(3).into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["d", "e", "f"]);
    }

    #[test]
    fn lines_roundtrip() {
        let mut s = SpaceSaving::new(5);
        for item in ["a", "b", "a", "c", "a"] {
            s.insert(item);
        }
        let text = s.to_lines();
        let parsed = SpaceSaving::from_lines(&text).unwrap();
        assert_eq!(parsed, s);
        assert!(SpaceSaving::from_lines("nonsense").is_none());
    }

    proptest! {
        /// The mergeable-summaries bound (Agarwal et al. 2012): after a
        /// merge, a surviving item's count can undercount its true
        /// frequency by at most (N_a + N_b) / capacity — occurrences it
        /// lost to eviction on either side. (The single-summary
        /// "count >= true" guarantee does NOT survive merging; this
        /// weaker bound is what the top-k MapReduce app relies on.)
        #[test]
        fn merged_counts_obey_the_mergeable_bound(
            xs in proptest::collection::vec(0u32..20, 1..200),
            ys in proptest::collection::vec(0u32..20, 1..200),
        ) {
            let cap = 8u64;
            let mut truth: HashMap<String, u64> = HashMap::new();
            let mut a = SpaceSaving::new(cap as usize);
            for x in &xs {
                let item = format!("i{x}");
                a.insert(&item);
                *truth.entry(item).or_default() += 1;
            }
            let mut b = SpaceSaving::new(cap as usize);
            for y in &ys {
                let item = format!("i{y}");
                b.insert(&item);
                *truth.entry(item).or_default() += 1;
            }
            a.merge(&b);
            let slack = (xs.len() as u64 + ys.len() as u64) / cap;
            for (item, count, _) in a.top(cap as usize) {
                prop_assert!(
                    count + slack >= truth[&item],
                    "{item}: count {count} + slack {slack} < true {}",
                    truth[&item]
                );
            }
        }
    }
}
