#![warn(missing_docs)]

//! Mergeable probabilistic sketches for distributed aggregation.
//!
//! The paper's Discussion argues Astra "is suitable for other data
//! analytics workloads which are directly in or convertible to the
//! MapReduce form". The key property such workloads need is an
//! *associative, commutative merge* — exactly what sketch data
//! structures provide. This crate implements two classics from scratch:
//!
//! * [`HyperLogLog`] — approximate distinct counting (Flajolet et al.
//!   2007), ~1.04/√m relative error in a few KB;
//! * [`SpaceSaving`] — top-k heavy hitters (Metwally et al. 2005) with
//!   deterministic error bounds.
//!
//! Both serialize to a compact line format so they flow through the
//! byte-level MapReduce runtime like any other intermediate object;
//! `astra-workloads::apps_sketch` wraps them as
//! [`MapReduceApp`](../astra_mapreduce/trait.MapReduceApp.html)s with
//! property tests asserting the merge laws the coordinator relies on.

pub mod hash;
pub mod hll;
pub mod spacesaving;

pub use hll::HyperLogLog;
pub use spacesaving::SpaceSaving;
