//! HyperLogLog distinct counting (Flajolet, Fusy, Gandouet, Meunier 2007)
//! with the standard small-range (linear counting) correction.

use crate::hash::hash64;

/// Hash seed fixed so that independently-built sketches merge correctly.
const HLL_SEED: u64 = 0x48_4c_4c; // "HLL"

/// A HyperLogLog sketch with `2^precision` registers.
///
/// Standard error ≈ 1.04 / √(2^precision): precision 12 (4096 registers,
/// 4 KB) gives ~1.6 %. Merging is a per-register `max` — associative,
/// commutative and idempotent, so any reduce-tree shape the coordinator
/// schedules yields the same estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// A sketch with `2^precision` registers; `precision` in 4..=16.
    pub fn new(precision: u8) -> Self {
        assert!((4..=16).contains(&precision), "precision must be 4..=16");
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// The precision parameter.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Observe one item.
    pub fn insert(&mut self, item: &[u8]) {
        let h = hash64(item, HLL_SEED);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank = position of the first 1-bit in the remaining bits.
        let rest = h << self.precision;
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch of the same precision into this one.
    ///
    /// Panics on precision mismatch — merging differently-sized sketches
    /// silently would corrupt the estimate.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge sketches of different precision"
        );
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-(r as i32)))
            .sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are
        // sparsely populated.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Serialize to a single ASCII line: `precision:hex-registers`.
    pub fn to_line(&self) -> String {
        let mut out = format!("{}:", self.precision);
        for &r in &self.registers {
            out.push_str(&format!("{r:02x}"));
        }
        out
    }

    /// Parse the [`to_line`](Self::to_line) format.
    pub fn from_line(line: &str) -> Option<HyperLogLog> {
        let (p, regs) = line.split_once(':')?;
        let precision: u8 = p.parse().ok()?;
        if !(4..=16).contains(&precision) {
            return None;
        }
        let expected = 1usize << precision;
        if regs.len() != expected * 2 {
            return None;
        }
        let mut registers = Vec::with_capacity(expected);
        for i in 0..expected {
            registers.push(u8::from_str_radix(&regs[i * 2..i * 2 + 2], 16).ok()?);
        }
        Some(HyperLogLog {
            precision,
            registers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn filled(range: std::ops::Range<u64>, precision: u8) -> HyperLogLog {
        let mut h = HyperLogLog::new(precision);
        for i in range {
            h.insert(&i.to_le_bytes());
        }
        h
    }

    #[test]
    fn estimates_within_expected_error() {
        for &n in &[100u64, 1_000, 10_000, 100_000] {
            let h = filled(0..n, 12);
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // 1.04/sqrt(4096) ≈ 1.6%; allow 5 sigma.
            assert!(rel < 0.08, "n={n}: estimate {est} (rel {rel})");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(10);
        for _ in 0..100 {
            for i in 0..50u64 {
                h.insert(&i.to_le_bytes());
            }
        }
        let est = h.estimate();
        assert!((est - 50.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn merge_equals_union() {
        // Overlapping ranges: 0..6000 and 4000..10000 → 10000 distinct.
        let mut a = filled(0..6_000, 12);
        let b = filled(4_000..10_000, 12);
        a.merge(&b);
        let est = a.estimate();
        let rel = (est - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.08, "estimate {est}");
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = filled(0..1_000, 12);
        let snapshot = a.clone();
        let b = snapshot.clone();
        a.merge(&b);
        assert_eq!(a, snapshot);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn precision_mismatch_panics() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }

    #[test]
    fn line_roundtrip() {
        let h = filled(0..5_000, 12);
        let line = h.to_line();
        let parsed = HyperLogLog::from_line(&line).unwrap();
        assert_eq!(parsed, h);
        assert!(HyperLogLog::from_line("garbage").is_none());
        assert!(HyperLogLog::from_line("12:zz").is_none());
    }

    proptest! {
        /// The merge law the MapReduce coordinator relies on: any tree
        /// shape gives the same sketch.
        #[test]
        fn merge_is_associative_and_commutative(
            xs in proptest::collection::vec(0u64..5_000, 1..300),
            ys in proptest::collection::vec(0u64..5_000, 1..300),
            zs in proptest::collection::vec(0u64..5_000, 1..300),
        ) {
            let sk = |v: &Vec<u64>| {
                let mut h = HyperLogLog::new(8);
                for x in v {
                    h.insert(&x.to_le_bytes());
                }
                h
            };
            let (a, b, c) = (sk(&xs), sk(&ys), sk(&zs));
            // (a ∪ b) ∪ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ∪ (c ∪ b)
            let mut right = c.clone();
            right.merge(&b);
            right.merge(&a);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn estimate_is_monotone_under_merge(
            xs in proptest::collection::vec(0u64..10_000, 1..500),
            ys in proptest::collection::vec(10_000u64..20_000, 1..500),
        ) {
            let mut a = HyperLogLog::new(10);
            for x in &xs {
                a.insert(&x.to_le_bytes());
            }
            let before = a.estimate();
            let mut b = HyperLogLog::new(10);
            for y in &ys {
                b.insert(&y.to_le_bytes());
            }
            a.merge(&b);
            prop_assert!(a.estimate() >= before - 1e-9);
        }
    }
}
