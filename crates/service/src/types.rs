//! Job specification, lifecycle and result types.
//!
//! [`JobRequest`] is what a tenant submits; [`JobSnapshot`] is what the
//! service answers status queries with. Both have strict JSON twins in
//! [`crate::wire`]. The lifecycle state machine is encoded once, in
//! [`JobStatus::can_transition_to`], and the daemon asserts every edge
//! it takes against it — the integration suite re-checks recorded
//! histories with the same predicate.

use astra_core::{Objective, PlanSpec};
use astra_model::JobSpec;
use astra_pricing::Money;
use serde::{Deserialize, Serialize};

/// Service-assigned job identifier, dense in submission order (the first
/// accepted submission gets id 1).
pub type JobId = u64;

/// Simulation parameters of one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Runtime-noise coefficient of variation (0 = deterministic).
    pub noise_cv: f64,
    /// Base seed; replication `i` runs with
    /// `astra_faas::derive_seed(seed, i)`.
    pub seed: u64,
    /// Number of simulated replications; 0 means plan-only (the job goes
    /// `Planned → Done` without a `Simulating` phase).
    pub replications: u32,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            noise_cv: 0.1,
            seed: 42,
            replications: 1,
        }
    }
}

/// One job submission: who wants what planned (and simulated) under
/// which objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Client-visible job name (reports, spans).
    pub name: String,
    /// Tenant label for multi-tenant bookkeeping ("" = anonymous).
    pub tenant: String,
    /// The workload to plan.
    pub job: JobSpec,
    /// Budget or deadline requirement.
    pub objective: Objective,
    /// Simulation parameters.
    pub sim: SimOptions,
}

impl JobRequest {
    /// A request with default simulation options and no tenant label.
    pub fn new(name: impl Into<String>, job: JobSpec, objective: Objective) -> Self {
        JobRequest {
            name: name.into(),
            tenant: String::new(),
            job,
            objective,
            sim: SimOptions::default(),
        }
    }

    /// Attach a tenant label.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Replace the simulation options.
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// Validate the request without panicking (the model types assert on
    /// bad values; the service must answer `Rejected` instead).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("job name must not be empty".to_string());
        }
        if self.job.object_sizes_mb.is_empty() {
            return Err("job needs at least one input object".to_string());
        }
        for (i, &mb) in self.job.object_sizes_mb.iter().enumerate() {
            if !(mb > 0.0 && mb.is_finite()) {
                return Err(format!("object {i} has invalid size {mb} MB"));
            }
        }
        let p = &self.job.profile;
        if !(p.map_secs_per_mb_128 >= 0.0
            && p.reduce_secs_per_mb_128 >= 0.0
            && p.coord_secs_per_mb_128 >= 0.0
            && p.state_object_mb >= 0.0)
        {
            return Err("profile intensities must be non-negative".to_string());
        }
        if !(p.shuffle_ratio > 0.0 && p.shuffle_ratio.is_finite()) {
            return Err(format!("shuffle ratio {} out of range", p.shuffle_ratio));
        }
        if !(p.reduce_ratio > 0.0 && p.reduce_ratio <= 1.0) {
            return Err(format!("reduce ratio {} out of (0, 1]", p.reduce_ratio));
        }
        match self.objective {
            Objective::MinimizeTime { budget } => {
                if budget <= Money::ZERO {
                    return Err(format!("budget {budget} must be positive"));
                }
            }
            Objective::MinimizeCost { deadline_s } => {
                if deadline_s.is_nan() || deadline_s <= 0.0 {
                    return Err(format!("deadline {deadline_s}s must be positive"));
                }
            }
        }
        if !(self.sim.noise_cv >= 0.0 && self.sim.noise_cv.is_finite()) {
            return Err(format!("noise CV {} out of range", self.sim.noise_cv));
        }
        Ok(())
    }

    /// True when this request carries a finite completion deadline —
    /// the QoS-bearing class the scheduler's overload shedding protects
    /// (deadline jobs are never shed; see [`crate::scheduler`]).
    pub fn carries_deadline(&self) -> bool {
        matches!(
            self.objective,
            Objective::MinimizeCost { deadline_s } if deadline_s.is_finite()
        )
    }
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Past admission, waiting in the submission queue.
    Accepted,
    /// A worker resolved the execution plan.
    Planned,
    /// Replications are running on the simulator.
    Simulating,
    /// Terminal: planned (and, if requested, simulated) successfully.
    Done,
    /// Terminal: refused — invalid spec, infeasible objective, envelope
    /// overflow or queue overload. The snapshot carries the reason.
    Rejected,
    /// Terminal: an internal error after admission. Should not happen;
    /// the snapshot carries the reason.
    Failed,
}

impl JobStatus {
    /// Every status, in lifecycle order.
    pub const ALL: [JobStatus; 6] = [
        JobStatus::Accepted,
        JobStatus::Planned,
        JobStatus::Simulating,
        JobStatus::Done,
        JobStatus::Rejected,
        JobStatus::Failed,
    ];

    /// True for `Done`, `Rejected` and `Failed`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Rejected | JobStatus::Failed
        )
    }

    /// The legal lifecycle edges. `Planned → Done` covers plan-only
    /// requests (`replications == 0`); there is no skipping `Planned`
    /// and no leaving a terminal state.
    pub fn can_transition_to(self, next: JobStatus) -> bool {
        use JobStatus::*;
        matches!(
            (self, next),
            (Accepted, Planned)
                | (Accepted, Rejected)
                | (Accepted, Failed)
                | (Planned, Simulating)
                | (Planned, Done)
                | (Planned, Failed)
                | (Simulating, Done)
                | (Simulating, Failed)
        )
    }

    /// Canonical SCREAMING_SNAKE_CASE wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Accepted => "ACCEPTED",
            JobStatus::Planned => "PLANNED",
            JobStatus::Simulating => "SIMULATING",
            JobStatus::Done => "DONE",
            JobStatus::Rejected => "REJECTED",
            JobStatus::Failed => "FAILED",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobStatus> {
        JobStatus::ALL.into_iter().find(|j| j.as_str() == s)
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The planning half of a job's result.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The chosen configuration.
    pub spec: PlanSpec,
    /// Model-predicted completion time (s).
    pub predicted_jct_s: f64,
    /// Model-predicted bill.
    pub predicted_cost: Money,
    /// One-line human summary.
    pub summary: String,
}

/// The simulation half of a job's result: one entry per replication, in
/// replication order (replication `i` used seed `derive_seed(seed, i)`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimOutcome {
    /// Simulated completion time per replication (s).
    pub jct_s: Vec<f64>,
    /// Simulated bill per replication.
    pub cost: Vec<Money>,
    /// Engine events per replication.
    pub events: Vec<u64>,
}

impl SimOutcome {
    /// Mean simulated JCT across replications.
    pub fn mean_jct_s(&self) -> f64 {
        if self.jct_s.is_empty() {
            0.0
        } else {
            self.jct_s.iter().sum::<f64>() / self.jct_s.len() as f64
        }
    }

    /// Mean simulated bill across replications (nanodollar-exact sum,
    /// rounded division).
    pub fn mean_cost(&self) -> Money {
        if self.cost.is_empty() {
            Money::ZERO
        } else {
            let total: i128 = self.cost.iter().map(|c| c.nanos()).sum();
            Money::from_nanos(total).div_round(self.cost.len() as i128)
        }
    }
}

/// Wall-clock accounting of one job's trip through the service, in
/// nanoseconds (monotonic process clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobMetrics {
    /// Submission → picked up by a worker.
    pub queue_wait_ns: u64,
    /// Time inside the planning phase.
    pub plan_ns: u64,
    /// Time inside the simulation phase.
    pub sim_ns: u64,
    /// Submission → terminal state.
    pub total_ns: u64,
}

/// One point of a cost–performance frontier answer.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Predicted bill of this plan.
    pub cost: Money,
    /// Predicted completion time (s).
    pub jct_s: f64,
    /// One-line plan summary.
    pub summary: String,
}

/// A point-in-time copy of one job's record: what `status` and
/// `await_done` return.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Service-assigned id.
    pub id: JobId,
    /// The submitted request (parse failures keep a placeholder).
    pub request: JobRequest,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Every state entered, oldest first, with monotonic wall-clock
    /// stamps (`astra_telemetry::wall_clock_ns`). The first entry is
    /// always `Accepted`.
    pub history: Vec<(JobStatus, u64)>,
    /// Why the job was rejected or failed, if it was.
    pub reason: Option<String>,
    /// Planning result, present from `Planned` on.
    pub plan: Option<PlanOutcome>,
    /// Simulation result, present on `Done` when replications > 0.
    pub sim: Option<SimOutcome>,
    /// Wall-clock accounting (complete once terminal).
    pub metrics: JobMetrics,
    /// Whether this job's planning was served from the session cache.
    pub session_cache_hit: bool,
    /// Set only on overload-shed rejections: how long the client should
    /// wait before retrying (the `OVERLOADED` protocol error carries
    /// it; see PROTOCOL.md).
    pub retry_after_ms: Option<u64>,
}

impl JobSnapshot {
    /// True once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        self.status.is_terminal()
    }

    /// Assert that the recorded history walks only legal lifecycle
    /// edges, starts at `Accepted`, has non-decreasing timestamps, and
    /// agrees with the current status. Returns an error string instead
    /// of panicking so property tests can report context.
    pub fn check_history(&self) -> Result<(), String> {
        let Some(&(first, _)) = self.history.first() else {
            return Err(format!("job {}: empty history", self.id));
        };
        if first != JobStatus::Accepted {
            return Err(format!("job {}: history starts at {first}", self.id));
        }
        for pair in self.history.windows(2) {
            let ((from, t0), (to, t1)) = (pair[0], pair[1]);
            if !from.can_transition_to(to) {
                return Err(format!("job {}: illegal edge {from} -> {to}", self.id));
            }
            if t1 < t0 {
                return Err(format!("job {}: time went backwards at {to}", self.id));
            }
        }
        let (last, _) = *self.history.last().expect("non-empty");
        if last != self.status {
            return Err(format!(
                "job {}: status {} but history ends at {last}",
                self.id, self.status
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn request() -> JobRequest {
        JobRequest::new(
            "t",
            JobSpec::uniform("t", 4, 1.0, WorkloadProfile::uniform_test()),
            Objective::fastest(),
        )
    }

    #[test]
    fn terminal_states_have_no_exits() {
        for s in [JobStatus::Done, JobStatus::Rejected, JobStatus::Failed] {
            assert!(s.is_terminal());
            for t in JobStatus::ALL {
                assert!(!s.can_transition_to(t), "{s} -> {t} must be illegal");
            }
        }
    }

    #[test]
    fn lifecycle_has_no_skips_or_backsteps() {
        use JobStatus::*;
        assert!(Accepted.can_transition_to(Planned));
        assert!(Planned.can_transition_to(Simulating));
        assert!(Simulating.can_transition_to(Done));
        assert!(Planned.can_transition_to(Done), "plan-only shortcut");
        // No skipping the planning phase, no going backwards.
        assert!(!Accepted.can_transition_to(Simulating));
        assert!(!Accepted.can_transition_to(Done));
        assert!(!Planned.can_transition_to(Accepted));
        assert!(!Simulating.can_transition_to(Planned));
        // Rejection only happens before planning.
        assert!(!Planned.can_transition_to(Rejected));
        assert!(!Simulating.can_transition_to(Rejected));
    }

    #[test]
    fn status_names_round_trip() {
        for s in JobStatus::ALL {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobStatus::parse("nope"), None);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(request().validate().is_ok());

        let mut r = request();
        r.job.object_sizes_mb[0] = -1.0;
        assert!(r.validate().unwrap_err().contains("invalid size"));

        let mut r = request();
        r.job.profile.reduce_ratio = 2.0;
        assert!(r.validate().unwrap_err().contains("reduce ratio"));

        let mut r = request();
        r.objective = Objective::MinimizeTime {
            budget: Money::ZERO,
        };
        assert!(r.validate().unwrap_err().contains("budget"));

        let mut r = request();
        r.sim.noise_cv = f64::NAN;
        assert!(r.validate().unwrap_err().contains("noise"));
    }

    #[test]
    fn sim_outcome_means() {
        let out = SimOutcome {
            jct_s: vec![1.0, 3.0],
            cost: vec![Money::from_nanos(10), Money::from_nanos(20)],
            events: vec![5, 6],
        };
        assert!((out.mean_jct_s() - 2.0).abs() < 1e-12);
        assert_eq!(out.mean_cost(), Money::from_nanos(15));
        assert_eq!(SimOutcome::default().mean_cost(), Money::ZERO);
    }

    #[test]
    fn history_checker_flags_violations() {
        let mut snap = JobSnapshot {
            id: 1,
            request: request(),
            status: JobStatus::Done,
            history: vec![
                (JobStatus::Accepted, 0),
                (JobStatus::Planned, 1),
                (JobStatus::Simulating, 2),
                (JobStatus::Done, 3),
            ],
            reason: None,
            plan: None,
            sim: None,
            metrics: JobMetrics::default(),
            session_cache_hit: false,
            retry_after_ms: None,
        };
        assert!(snap.check_history().is_ok());

        snap.history[1].0 = JobStatus::Simulating; // skipped Planned
        assert!(snap.check_history().unwrap_err().contains("illegal edge"));

        snap.history[1].0 = JobStatus::Planned;
        snap.status = JobStatus::Failed; // disagrees with history tail
        assert!(snap.check_history().unwrap_err().contains("ends at"));
    }
}
