//! Shared admission envelopes: concurrency and budget caps over the
//! whole worker pool.
//!
//! Admission draws a hard line between two kinds of "no":
//!
//! * **Reject** is *state-independent*: the job could never run under
//!   this envelope no matter what else is in flight (its planned cost
//!   claim alone exceeds the total budget). Because the check ignores
//!   current occupancy, the verdict depends only on the request and the
//!   envelope — submission timing cannot flip it, which keeps the
//!   service's results deterministic.
//! * **Defer** is *state-dependent*: the job fits the envelope but not
//!   right now (all slots busy, or admitted claims would overflow the
//!   budget). Deferral is strictly FIFO — the queue head blocks until
//!   *it* fits, rather than letting smaller jobs overtake — so a
//!   deferred job's latency changes but its result does not, and no
//!   admissible job is ever starved.
//!
//! `tests/service_admission.rs` property-checks both invariants: the
//! sum of admitted claims never exceeds the budget, and every
//! admissible job is eventually admitted.

use astra_pricing::Money;

/// The shared resource envelope all in-flight jobs draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Maximum number of jobs holding admission at once.
    pub max_in_flight: usize,
    /// Total planned-cost budget the in-flight set may claim.
    pub budget: Money,
}

impl Envelope {
    /// An envelope that admits everything immediately: practically
    /// unbounded slots and budget.
    pub fn unbounded() -> Self {
        Envelope {
            max_in_flight: usize::MAX,
            // Half of the representable range: headroom for arithmetic
            // while still dwarfing any real claim.
            budget: Money::from_nanos(i128::MAX / 2),
        }
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::unbounded()
    }
}

/// The three admission verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The claim was debited; the job may run now.
    Admit,
    /// The job fits the envelope but not current occupancy; retry when
    /// a slot or budget is released.
    Defer,
    /// The job can never fit this envelope; the reason says why.
    Reject(String),
}

/// Tracks envelope occupancy. Not internally synchronized — the
/// scheduler holds it under its own lock.
#[derive(Debug)]
pub struct AdmissionController {
    envelope: Envelope,
    in_flight: usize,
    claimed: Money,
}

impl AdmissionController {
    /// A controller with the whole envelope free.
    pub fn new(envelope: Envelope) -> Self {
        AdmissionController {
            envelope,
            in_flight: 0,
            claimed: Money::ZERO,
        }
    }

    /// The envelope this controller enforces.
    pub fn envelope(&self) -> Envelope {
        self.envelope
    }

    /// Jobs currently holding admission.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Planned cost currently claimed by in-flight jobs.
    pub fn claimed(&self) -> Money {
        self.claimed
    }

    /// State-independent feasibility: would this claim fit an *empty*
    /// envelope? `Err` carries the rejection reason.
    pub fn feasible(&self, claim: Money) -> Result<(), String> {
        if self.envelope.max_in_flight == 0 {
            return Err("envelope admits no jobs (max_in_flight = 0)".to_string());
        }
        if claim > self.envelope.budget {
            return Err(format!(
                "planned cost {} exceeds the admission budget {}",
                claim, self.envelope.budget
            ));
        }
        Ok(())
    }

    /// Decide without mutating: what would happen if the queue head
    /// carried this claim?
    pub fn decide(&self, claim: Money) -> Admission {
        if let Err(reason) = self.feasible(claim) {
            return Admission::Reject(reason);
        }
        if self.in_flight >= self.envelope.max_in_flight {
            return Admission::Defer;
        }
        if self.claimed + claim > self.envelope.budget {
            return Admission::Defer;
        }
        Admission::Admit
    }

    /// Decide and, on `Admit`, debit the claim.
    pub fn admit(&mut self, claim: Money) -> Admission {
        let verdict = self.decide(claim);
        if verdict == Admission::Admit {
            self.in_flight += 1;
            self.claimed += claim;
        }
        verdict
    }

    /// Release a previously admitted claim.
    ///
    /// # Panics
    /// If nothing is in flight — a release must pair with an admit.
    pub fn release(&mut self, claim: Money) {
        assert!(self.in_flight > 0, "release without a matching admit");
        self.in_flight -= 1;
        self.claimed -= claim;
        assert!(
            self.claimed >= Money::ZERO,
            "released more budget than was claimed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(slots: usize, dollars: f64) -> AdmissionController {
        AdmissionController::new(Envelope {
            max_in_flight: slots,
            budget: Money::from_dollars_f64(dollars),
        })
    }

    #[test]
    fn admit_until_slots_run_out() {
        let mut c = controller(2, 100.0);
        assert_eq!(c.admit(Money::from_dollars_f64(1.0)), Admission::Admit);
        assert_eq!(c.admit(Money::from_dollars_f64(1.0)), Admission::Admit);
        assert_eq!(c.admit(Money::from_dollars_f64(1.0)), Admission::Defer);
        c.release(Money::from_dollars_f64(1.0));
        assert_eq!(c.admit(Money::from_dollars_f64(1.0)), Admission::Admit);
    }

    #[test]
    fn admit_until_budget_runs_out() {
        let mut c = controller(10, 5.0);
        assert_eq!(c.admit(Money::from_dollars_f64(3.0)), Admission::Admit);
        assert_eq!(c.admit(Money::from_dollars_f64(3.0)), Admission::Defer);
        assert_eq!(c.admit(Money::from_dollars_f64(2.0)), Admission::Admit);
        assert_eq!(c.claimed(), Money::from_dollars_f64(5.0));
        c.release(Money::from_dollars_f64(3.0));
        assert_eq!(c.admit(Money::from_dollars_f64(3.0)), Admission::Admit);
    }

    #[test]
    fn oversized_claim_is_rejected_not_deferred() {
        let mut c = controller(10, 5.0);
        // Even with the envelope fully occupied, an oversized claim is a
        // Reject — the verdict cannot depend on occupancy.
        assert_eq!(c.admit(Money::from_dollars_f64(5.0)), Admission::Admit);
        match c.decide(Money::from_dollars_f64(5.5)) {
            Admission::Reject(reason) => assert!(reason.contains("exceeds"), "{reason}"),
            other => panic!("expected Reject, got {other:?}"),
        }
        // A claim exactly at the budget is feasible (deferred, not rejected).
        assert_eq!(c.decide(Money::from_dollars_f64(5.0)), Admission::Defer);
    }

    #[test]
    fn zero_slot_envelope_rejects_everything() {
        let c = controller(0, 100.0);
        assert!(matches!(c.decide(Money::ZERO), Admission::Reject(_)));
    }

    #[test]
    #[should_panic(expected = "release without a matching admit")]
    fn unmatched_release_panics() {
        controller(1, 1.0).release(Money::ZERO);
    }
}
