//! Deterministic fault injection for chaos testing the service.
//!
//! A [`FaultPlan`] is a seeded set of rules saying "at this injection
//! site, roughly one key in `one_in` suffers this fault". The verdict
//! for a given `(site, key)` pair is a pure function of the plan — it
//! is derived with the same SplitMix64 mixing as
//! [`astra_faas::derive_seed`], so it does not depend on thread
//! interleaving, worker count, or how many times it is asked. That is
//! what lets `tests/service_chaos.rs` *predict* exactly which jobs a
//! plan will fault and assert that everything else stays bit-identical
//! to a fault-free run.
//!
//! Sites cover the worker lifecycle (panic or simulated process crash
//! before planning, before simulating, before completion), the session
//! cache (synthetic build failures), and the TCP transport (connection
//! resets and short writes mid-frame, plus a client-side stall knob the
//! chaos suite uses to play a slow-loris peer). The daemon, scheduler
//! and net layers each consult the shared plan at their own sites; a
//! production daemon runs with [`FaultPlan::disabled`], which never
//! fires and costs one branch per site.

use astra_faas::derive_seed;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// In the worker, before the job transitions to `Planned`.
    WorkerPlan,
    /// In the worker, before the job transitions to `Simulating`.
    WorkerSim,
    /// In the worker, before the terminal `Done` transition.
    WorkerFinish,
    /// In [`crate::daemon`]'s session-cache planning path, keyed by job
    /// id (fires identically at admission and worker re-plan).
    CacheBuild,
    /// In the TCP server: drop the connection instead of answering,
    /// keyed by connection sequence number.
    ConnReset,
    /// In the TCP server: write only half the response frame, then
    /// close — the client observes a short read mid-frame.
    ShortWrite,
    /// Client-side: the chaos suite stalls mid-request-line to act as a
    /// slow-loris peer (the server never consults this site).
    ClientStall,
}

impl FaultSite {
    /// A fixed per-site salt folded into the seed so the same key gets
    /// independent verdicts at different sites.
    fn tag(self) -> u64 {
        match self {
            FaultSite::WorkerPlan => 0x5149_7c6a_9e01_a101,
            FaultSite::WorkerSim => 0x5149_7c6a_9e01_a202,
            FaultSite::WorkerFinish => 0x5149_7c6a_9e01_a303,
            FaultSite::CacheBuild => 0x5149_7c6a_9e01_a404,
            FaultSite::ConnReset => 0x5149_7c6a_9e01_a505,
            FaultSite::ShortWrite => 0x5149_7c6a_9e01_a606,
            FaultSite::ClientStall => 0x5149_7c6a_9e01_a707,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultSite::WorkerPlan => "worker-plan",
            FaultSite::WorkerSim => "worker-sim",
            FaultSite::WorkerFinish => "worker-finish",
            FaultSite::CacheBuild => "cache-build",
            FaultSite::ConnReset => "conn-reset",
            FaultSite::ShortWrite => "short-write",
            FaultSite::ClientStall => "client-stall",
        };
        f.write_str(name)
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic in place. The worker loop catches it and records the job
    /// `Failed` with the captured payload; the claim is released.
    Panic,
    /// Simulate a process crash: the scheduler halts, the panicking
    /// worker leaves its job non-terminal and its claim unreleased, and
    /// only a journal replay can recover the abandoned work.
    Crash,
    /// Return a synthetic error from the site instead of panicking
    /// (used by [`FaultSite::CacheBuild`]); transport sites treat any
    /// firing rule as "do the disruptive thing" regardless of action.
    Error,
}

/// One injection rule: at `site`, one key in `one_in` gets `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection site.
    pub site: FaultSite,
    /// Average firing rate — `derive`-hashed keys hitting `0 mod
    /// one_in` fire, so `1` fires for every key.
    pub one_in: u64,
    /// What the site does when the rule fires.
    pub action: FaultAction,
}

/// A seeded, deterministic set of fault-injection rules (see module
/// docs). `Default` is [`FaultPlan::disabled`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan that never fires — the production configuration.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// An empty plan under `seed`; add rules with
    /// [`FaultPlan::with_fault`].
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add one rule.
    ///
    /// # Panics
    /// If `one_in` is 0 (a rule that can never be evaluated).
    pub fn with_fault(mut self, site: FaultSite, one_in: u64, action: FaultAction) -> Self {
        assert!(one_in > 0, "fault rate must be at least one-in-one");
        self.rules.push(FaultRule {
            site,
            one_in,
            action,
        });
        self
    }

    /// True when no rule can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.rules.is_empty()
    }

    /// The deterministic verdict for `(site, key)`: the first matching
    /// rule whose hash fires, or `None`. Pure — safe to call from tests
    /// to predict exactly what a daemon under this plan will do.
    pub fn decide(&self, site: FaultSite, key: u64) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|rule| {
                rule.site == site
                    && derive_seed(self.seed ^ site.tag(), key).is_multiple_of(rule.one_in)
            })
            .map(|rule| rule.action)
    }

    /// Whether any rule fires at `(site, key)`.
    pub fn fires(&self, site: FaultSite, key: u64) -> bool {
        self.decide(site, key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        for key in 0..100 {
            assert_eq!(plan.decide(FaultSite::WorkerPlan, key), None);
            assert_eq!(plan.decide(FaultSite::ConnReset, key), None);
        }
        assert!(plan.is_disabled());
    }

    #[test]
    fn verdicts_are_deterministic_and_site_independent() {
        let plan = FaultPlan::seeded(7)
            .with_fault(FaultSite::WorkerPlan, 3, FaultAction::Panic)
            .with_fault(FaultSite::WorkerSim, 3, FaultAction::Crash);
        let first: Vec<_> = (0..64)
            .map(|k| {
                (
                    plan.decide(FaultSite::WorkerPlan, k),
                    plan.decide(FaultSite::WorkerSim, k),
                )
            })
            .collect();
        let second: Vec<_> = (0..64)
            .map(|k| {
                (
                    plan.decide(FaultSite::WorkerPlan, k),
                    plan.decide(FaultSite::WorkerSim, k),
                )
            })
            .collect();
        assert_eq!(first, second);
        // The two sites must not fire on the same key set (independent
        // hashes); with 64 keys at 1-in-3 a perfect overlap is a bug.
        assert_ne!(
            first.iter().map(|v| v.0.is_some()).collect::<Vec<_>>(),
            first.iter().map(|v| v.1.is_some()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn one_in_one_always_fires_and_rate_is_roughly_right() {
        let always = FaultPlan::seeded(1).with_fault(FaultSite::ConnReset, 1, FaultAction::Error);
        assert!((0..32).all(|k| always.fires(FaultSite::ConnReset, k)));

        let sometimes =
            FaultPlan::seeded(1).with_fault(FaultSite::WorkerPlan, 4, FaultAction::Panic);
        let hits = (0..400)
            .filter(|&k| sometimes.fires(FaultSite::WorkerPlan, k))
            .count();
        assert!((50..200).contains(&hits), "1-in-4 fired {hits}/400");
    }

    #[test]
    fn seeds_select_different_victims() {
        let a = FaultPlan::seeded(1).with_fault(FaultSite::WorkerPlan, 2, FaultAction::Panic);
        let b = FaultPlan::seeded(2).with_fault(FaultSite::WorkerPlan, 2, FaultAction::Panic);
        let va: Vec<bool> = (0..64).map(|k| a.fires(FaultSite::WorkerPlan, k)).collect();
        let vb: Vec<bool> = (0..64).map(|k| b.fires(FaultSite::WorkerPlan, k)).collect();
        assert_ne!(va, vb);
    }
}
