//! The daemon: a worker pool over the scheduler, the job table, and
//! the synchronous client handle.
//!
//! ## Submission path
//!
//! [`ServiceHandle::submit`] never fails — every outcome is a job id
//! whose snapshot tells the story. The submitter thread validates the
//! request, plans it once through the shared session cache (the
//! *admission plan*, whose predicted cost becomes the job's envelope
//! claim) and enqueues it; anything that goes wrong — invalid spec,
//! infeasible objective, claim larger than the whole envelope, full
//! queue, shutdown — lands the job in `Rejected` with a reason.
//!
//! ## Worker path
//!
//! Workers block in [`crate::scheduler::Scheduler::next`], then drive
//! the job `Accepted → Planned → Simulating → Done` (skipping
//! `Simulating` for plan-only requests). The worker re-plans through
//! the same session cache the submitter warmed — a guaranteed cache
//! hit in the steady state, which is why the service reports a non-zero
//! `service.cache.hits` count after any batch. Replications fan out on
//! a [`SimBatch`], whose results are bit-identical to a serial loop at
//! any thread count; combined with the scheduler's FIFO dispatch this
//! yields the service determinism contract (crate docs).
//!
//! A worker panic is caught per job and recorded as `Failed` with the
//! captured panic payload as its reason (plus a
//! `service.worker.panics` count) — the claim is always released, so
//! one poisoned job cannot wedge the envelope.
//!
//! ## Crash safety
//!
//! With [`ServiceConfig::with_journal_path`] every lifecycle transition
//! is appended to a durable [`crate::journal::Journal`] before the
//! daemon acknowledges it. A daemon restarted on the same path replays
//! the log: jobs that reached a terminal state are restored verbatim
//! (their ids keep answering `status`/`await`), and jobs caught
//! mid-flight are re-admitted under their original ids — safe because
//! results are deterministic, so the re-run is bit-identical to what
//! the dead daemon would have produced. `tests/service_chaos.rs`
//! proves the invariant under injected crashes
//! ([`crate::faults::FaultPlan`], threaded here via
//! [`ServiceConfig::with_faults`]): same terminal set, bit-identical
//! results, no leaked claims.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use astra_core::{Astra, ConfigSpace, PruneConfig, Strategy};
use astra_faas::{derive_seed, SimBatch, SimConfig};
use astra_model::{JobSpec, Platform, WorkloadProfile};
use astra_pricing::PriceCatalog;
use astra_telemetry::{wall_clock_ns, Telemetry};

use crate::admission::Envelope;
use crate::cache::{CacheLookup, SessionCache, SessionCacheStats, SessionKey};
use crate::fairness::{FairnessConfig, TenantStats};
use crate::faults::{FaultAction, FaultPlan, FaultSite};
use crate::journal::Journal;
use crate::scheduler::{OverloadConfig, Scheduler, SubmitError};
use crate::types::{
    FrontierPoint, JobId, JobRequest, JobSnapshot, JobStatus, PlanOutcome, SimOutcome,
};
use crate::wire;

/// The panic payload a [`FaultAction::Crash`] throws: the worker loop
/// recognizes it and dies *without* failing the job or releasing its
/// claim, modeling a process that vanished mid-job. Everything a real
/// crash would leak, this leaks — recovery is the journal's problem.
struct CrashSignal;

/// Human-readable panic payload (panics carry `String` or `&str`;
/// anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Everything a daemon is configured with. The planner quadruple
/// (platform, catalog, strategy, prune) is fixed per daemon — it is
/// part of every session-cache key, and keeping it daemon-wide is what
/// lets jobs share sessions at all.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads driving job lifecycles.
    pub workers: usize,
    /// Bounded submission-queue length; submissions beyond it are
    /// rejected (never silently dropped).
    pub queue_capacity: usize,
    /// Maximum resident [`crate::cache::SessionCache`] sessions.
    pub cache_capacity: usize,
    /// Shared concurrency/budget envelope (see [`crate::admission`]).
    pub envelope: Envelope,
    /// Multi-tenant fairness: DRR quantum and per-tenant envelopes
    /// (see [`crate::fairness`]).
    pub fairness: FairnessConfig,
    /// Platform every job is planned and simulated against.
    pub platform: Platform,
    /// Price catalog in effect.
    pub catalog: PriceCatalog,
    /// Solver strategy.
    pub strategy: Strategy,
    /// Dominance-pruning configuration.
    pub prune: PruneConfig,
    /// Telemetry handle; defaults to a snapshot of the process-global
    /// one, so a binary that installed a recorder gets `service.*`
    /// spans and counters with no extra plumbing.
    pub telemetry: Telemetry,
    /// Durable journal path; `None` (the default) runs without crash
    /// safety. See the module docs' crash-safety section.
    pub journal_path: Option<PathBuf>,
    /// Fault-injection plan; defaults to disabled (production).
    pub faults: FaultPlan,
    /// Overload-shedding thresholds; defaults to disabled.
    pub overload: OverloadConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 1024,
            cache_capacity: 32,
            envelope: Envelope::unbounded(),
            fairness: FairnessConfig::default(),
            platform: Platform::aws_lambda(),
            catalog: PriceCatalog::aws_2020(),
            strategy: Strategy::default(),
            prune: PruneConfig::default(),
            telemetry: astra_telemetry::global(),
            journal_path: None,
            faults: FaultPlan::disabled(),
            overload: OverloadConfig::disabled(),
        }
    }
}

impl ServiceConfig {
    /// Override the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override the admission envelope.
    pub fn with_envelope(mut self, envelope: Envelope) -> Self {
        self.envelope = envelope;
        self
    }

    /// Override the fairness configuration.
    pub fn with_fairness(mut self, fairness: FairnessConfig) -> Self {
        self.fairness = fairness;
        self
    }

    /// Override the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Persist every lifecycle transition to a journal at `path` and
    /// replay it on startup (see module docs).
    pub fn with_journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Inject deterministic faults (chaos testing only).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the overload-shedding thresholds.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }
}

struct JobTable {
    next_id: JobId,
    jobs: HashMap<JobId, JobSnapshot>,
}

struct Inner {
    astra: Astra,
    platform: Platform,
    catalog: PriceCatalog,
    scheduler: Scheduler,
    cache: SessionCache,
    telemetry: Telemetry,
    table: Mutex<JobTable>,
    job_changed: Condvar,
    journal: Option<Journal>,
    faults: FaultPlan,
    /// Set when an injected [`FaultAction::Crash`] fires — the daemon
    /// is then simulating a dead process and only a journal-replaying
    /// restart makes progress.
    crashed: AtomicBool,
}

impl Inner {
    /// Insert a fresh `Accepted` record under `id` (journaled).
    fn insert_accepted(&self, table: &mut JobTable, id: JobId, request: JobRequest) {
        let snap = JobSnapshot {
            id,
            request,
            status: JobStatus::Accepted,
            history: vec![(JobStatus::Accepted, wall_clock_ns())],
            reason: None,
            plan: None,
            sim: None,
            metrics: Default::default(),
            session_cache_hit: false,
            retry_after_ms: None,
        };
        if let Some(journal) = &self.journal {
            journal.record_submitted(id, &snap.request, snap.history[0].1);
        }
        table.jobs.insert(id, snap);
    }

    /// Insert a fresh `Accepted` record and return its id.
    fn register(&self, request: JobRequest) -> JobId {
        let mut table = self.table.lock().unwrap();
        table.next_id += 1;
        let id = table.next_id;
        self.insert_accepted(&mut table, id, request);
        id
    }

    /// Take a lifecycle edge, asserting it is legal, stamping the
    /// history, and waking `await_done` waiters on terminal states.
    /// Journaled before the lock drops, so the log's transition order
    /// matches the table's.
    fn transition(&self, id: JobId, to: JobStatus, mutate: impl FnOnce(&mut JobSnapshot)) {
        let mut table = self.table.lock().unwrap();
        let snap = table.jobs.get_mut(&id).expect("transition on unknown job");
        assert!(
            snap.status.can_transition_to(to),
            "illegal lifecycle edge {} -> {to} (job {id})",
            snap.status
        );
        let now = wall_clock_ns();
        snap.status = to;
        snap.history.push((to, now));
        mutate(snap);
        if to.is_terminal() {
            snap.metrics.total_ns = now.saturating_sub(snap.history[0].1);
        }
        if let Some(journal) = &self.journal {
            journal.record_transition(snap);
        }
        if to.is_terminal() {
            self.job_changed.notify_all();
        }
    }

    /// Evaluate the fault plan at a worker lifecycle site. `Ok` means
    /// no fault; `Err` is a synthetic failure reason; `Panic`/`Crash`
    /// actions do not return.
    fn inject(&self, site: FaultSite, id: JobId) -> Result<(), String> {
        match self.faults.decide(site, id) {
            None => Ok(()),
            Some(action) => {
                self.telemetry.counter("service.faults.injected", 1);
                match action {
                    FaultAction::Error => Err(format!("injected fault: {site} error (job {id})")),
                    FaultAction::Panic => {
                        panic!("injected fault: {site} panic (job {id})")
                    }
                    FaultAction::Crash => {
                        self.telemetry.counter("service.faults.crashes", 1);
                        self.crashed.store(true, Ordering::SeqCst);
                        // Freeze the queue and held claims in place —
                        // nothing of this "process" survives but the
                        // journal.
                        self.scheduler.halt();
                        self.job_changed.notify_all();
                        std::panic::panic_any(CrashSignal)
                    }
                }
            }
        }
    }

    fn reject(&self, id: JobId, reason: String) {
        self.telemetry.counter("service.rejected", 1);
        self.transition(id, JobStatus::Rejected, |snap| snap.reason = Some(reason));
    }

    /// Record a post-admission failure, from whatever non-terminal
    /// state the job is in.
    fn fail(&self, id: JobId, reason: String) {
        let already_terminal = {
            let table = self.table.lock().unwrap();
            table.jobs.get(&id).map(|s| s.is_terminal()).unwrap_or(true)
        };
        if already_terminal {
            return;
        }
        self.telemetry.counter("service.failed", 1);
        self.transition(id, JobStatus::Failed, |snap| snap.reason = Some(reason));
    }

    /// The session-cache key and space for a job under this daemon's
    /// planner quadruple.
    fn session_key(&self, job: &JobSpec) -> (ConfigSpace, SessionKey) {
        let space = ConfigSpace::full(job, &self.platform);
        let key = SessionKey::for_inputs(
            job,
            &space,
            &self.platform,
            &self.catalog,
            self.astra.strategy(),
            self.astra.prune_config(),
        );
        (space, key)
    }

    /// Fetch or create the session for `job` through the shared cache,
    /// revalidating near-misses: a resident session whose inputs differ
    /// only by a patchable delta is cloned and patched instead of
    /// cold-built (see [`SessionCache::get_or_patch`]).
    fn session_cached(
        &self,
        job: &JobSpec,
    ) -> (Arc<astra_core::PlannerSession>, CacheLookup) {
        let (space, key) = self.session_key(job);
        self.cache.get_or_patch(
            key,
            job,
            &space,
            &self.platform,
            &self.catalog,
            self.astra.strategy(),
            self.astra.prune_config(),
            || self.astra.session_with_space(job, &space),
        )
    }

    /// Plan `job` under this daemon's configuration through the shared
    /// session cache. Returns the plan and whether the cache hit. The
    /// [`FaultSite::CacheBuild`] check is keyed by job id, so it fires
    /// identically at admission and at the worker re-plan (a job either
    /// never queues or never trips here).
    fn plan_cached(
        &self,
        id: JobId,
        job: &JobSpec,
        objective: astra_core::Objective,
    ) -> (Result<astra_core::Plan, String>, bool) {
        if self.faults.fires(FaultSite::CacheBuild, id) {
            self.telemetry.counter("service.faults.injected", 1);
            return (
                Err(format!(
                    "injected fault: {} failure (job {id})",
                    FaultSite::CacheBuild
                )),
                false,
            );
        }
        let (session, lookup) = self.session_cached(job);
        (
            session.plan(objective).map_err(|e| e.to_string()),
            lookup == CacheLookup::Hit,
        )
    }

    /// The whole per-job worker path; `Err` is a failure reason.
    fn run_job(&self, id: JobId) -> Result<(), String> {
        let (request, accepted_ns) = {
            let table = self.table.lock().unwrap();
            let snap = table.jobs.get(&id).expect("dispatched unknown job");
            (snap.request.clone(), snap.history[0].1)
        };
        let _span = self.telemetry.wall_span("service", "service.job", "service");
        let picked_up = wall_clock_ns();

        self.inject(FaultSite::WorkerPlan, id)?;
        let (planned, hit) = self.plan_cached(id, &request.job, request.objective);
        // Admission already planned this exact request successfully;
        // planning is deterministic, so failure here is a real bug.
        let plan = planned.map_err(|e| format!("re-plan after admission failed: {e}"))?;
        let plan_ns = wall_clock_ns().saturating_sub(picked_up);
        let outcome = PlanOutcome {
            spec: plan.spec.clone(),
            predicted_jct_s: plan.predicted_jct_s(),
            predicted_cost: plan.predicted_cost(),
            summary: plan.summary(),
        };
        self.telemetry.counter("service.planned", 1);
        self.transition(id, JobStatus::Planned, |snap| {
            snap.plan = Some(outcome);
            snap.session_cache_hit |= hit;
            snap.metrics.queue_wait_ns = picked_up.saturating_sub(accepted_ns);
            snap.metrics.plan_ns = plan_ns;
        });

        if request.sim.replications == 0 {
            self.inject(FaultSite::WorkerFinish, id)?;
            self.telemetry.counter("service.completed", 1);
            self.transition(id, JobStatus::Done, |_| {});
            return Ok(());
        }

        self.inject(FaultSite::WorkerSim, id)?;
        self.transition(id, JobStatus::Simulating, |_| {});
        let sim_started = wall_clock_ns();
        let compiled = astra_mapreduce::compile(&request.job, &plan);
        let mut batch = SimBatch::with_capacity(request.sim.replications as usize);
        for rep in 0..request.sim.replications as u64 {
            let config = SimConfig::deterministic(self.platform.clone())
                .with_catalog(self.catalog)
                .with_noise(request.sim.noise_cv, derive_seed(request.sim.seed, rep))
                .with_telemetry(self.telemetry.clone());
            batch.push(config, compiled.roots.clone(), compiled.inputs.clone());
        }
        let mut sim = SimOutcome::default();
        for report in batch.run() {
            let report = report.map_err(|e| format!("simulation failed: {e}"))?;
            sim.jct_s.push(report.jct_s());
            sim.cost.push(report.total_cost());
            sim.events.push(report.events);
        }
        let sim_ns = wall_clock_ns().saturating_sub(sim_started);
        self.inject(FaultSite::WorkerFinish, id)?;
        self.telemetry.counter("service.completed", 1);
        self.transition(id, JobStatus::Done, |snap| {
            snap.sim = Some(sim);
            snap.metrics.sim_ns = sim_ns;
        });
        Ok(())
    }

    /// The admission path a registered `Accepted` job takes to the
    /// queue: validate, admission-plan through the session cache, then
    /// enqueue under the scheduler's envelope/overload policy. Every
    /// refusal lands the job in `Rejected` with a reason; shed refusals
    /// also stamp `retry_after_ms`. Shared by live submission
    /// ([`ServiceHandle::submit`]) and startup recovery, so a replayed
    /// job is re-admitted by exactly the rules a fresh one faces.
    fn admit(&self, id: JobId, request: &JobRequest) {
        if let Err(reason) = request.validate() {
            self.reject(id, reason);
            return;
        }
        // The model layer asserts on inputs validate() vouched for; a
        // panic past this point is a validation gap, answered as a
        // rejection rather than a dead submitter thread.
        let admission = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.plan_cached(id, &request.job, request.objective)
        }));
        let (planned, hit) = match admission {
            Ok(result) => result,
            Err(payload) => {
                self.telemetry.counter("service.worker.panics", 1);
                self.reject(
                    id,
                    format!(
                        "request failed admission planning: {}",
                        panic_message(payload.as_ref())
                    ),
                );
                return;
            }
        };
        {
            let mut table = self.table.lock().unwrap();
            if let Some(snap) = table.jobs.get_mut(&id) {
                snap.session_cache_hit |= hit;
            }
        }
        let plan = match planned {
            Ok(plan) => plan,
            Err(reason) => {
                self.reject(id, reason);
                return;
            }
        };
        match self.scheduler.submit(
            id,
            &request.tenant,
            plan.predicted_cost(),
            request.carries_deadline(),
        ) {
            Ok(()) => {}
            Err(SubmitError::Refused(reason)) => self.reject(id, reason),
            Err(SubmitError::Overloaded {
                reason,
                retry_after_ms,
            }) => {
                self.telemetry.counter("service.rejected", 1);
                self.transition(id, JobStatus::Rejected, |snap| {
                    snap.reason = Some(reason);
                    snap.retry_after_ms = Some(retry_after_ms);
                });
            }
        }
    }

    fn jobs_sorted(&self) -> Vec<JobSnapshot> {
        let table = self.table.lock().unwrap();
        let mut jobs: Vec<JobSnapshot> = table.jobs.values().cloned().collect();
        jobs.sort_by_key(|s| s.id);
        jobs
    }
}

fn worker_loop(inner: Arc<Inner>) {
    while let Some(queued) = inner.scheduler.next() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| inner.run_job(queued.id)));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(reason)) => inner.fail(queued.id, reason),
            Err(payload) => {
                if payload.is::<CrashSignal>() {
                    // Simulated process death: the job stays
                    // non-terminal and the claim stays held, exactly
                    // as a kill -9 would leave them. The journal is
                    // the only way back.
                    return;
                }
                inner.telemetry.counter("service.worker.panics", 1);
                inner.fail(
                    queued.id,
                    format!("worker panicked: {}", panic_message(payload.as_ref())),
                );
            }
        }
        // Unconditionally (short of a crash): a held claim must never
        // outlive its job.
        inner.scheduler.complete(&queued);
    }
}

/// The running daemon: owns the worker threads. Dropping it (or calling
/// [`ServiceDaemon::shutdown`]) closes the queue, drains queued jobs
/// and joins the pool.
pub struct ServiceDaemon {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceDaemon {
    /// Start a daemon: spin up the worker pool against a fresh queue,
    /// job table and session cache.
    ///
    /// # Panics
    /// If `config.workers` is 0 — a poolless daemon would accept jobs
    /// and never run them — or if the configured journal cannot be
    /// opened ([`ServiceDaemon::try_start`] surfaces that as an error
    /// instead).
    pub fn start(config: ServiceConfig) -> ServiceDaemon {
        ServiceDaemon::try_start(config).expect("open service journal")
    }

    /// [`ServiceDaemon::start`], with journal I/O errors surfaced.
    /// When the config names a journal path, the existing log is
    /// replayed before any worker starts: terminal jobs are restored
    /// verbatim, mid-flight jobs are re-admitted under their original
    /// ids, and fresh submissions continue the recovered id sequence.
    pub fn try_start(config: ServiceConfig) -> std::io::Result<ServiceDaemon> {
        assert!(config.workers > 0, "a daemon needs at least one worker");
        let (journal, recovery) = match &config.journal_path {
            None => (None, None),
            Some(path) => {
                let (journal, recovery) = Journal::open(path, config.telemetry.clone())?;
                (Some(journal), Some(recovery))
            }
        };
        let astra = Astra::new(
            config.platform.clone(),
            config.catalog,
            config.strategy,
        )
        .with_prune_config(config.prune)
        .with_telemetry(config.telemetry.clone());
        let inner = Arc::new(Inner {
            astra,
            platform: config.platform,
            catalog: config.catalog,
            scheduler: Scheduler::new(
                config.queue_capacity,
                config.envelope,
                config.fairness,
                config.overload,
                config.telemetry.clone(),
            ),
            cache: SessionCache::new(config.cache_capacity, config.telemetry.clone()),
            telemetry: config.telemetry,
            table: Mutex::new(JobTable {
                next_id: 0,
                jobs: HashMap::new(),
            }),
            job_changed: Condvar::new(),
            journal,
            faults: config.faults,
            crashed: AtomicBool::new(false),
        });
        if let Some(recovery) = recovery {
            // Before any worker runs: restore terminal snapshots
            // verbatim, then re-admit mid-flight jobs under their
            // original ids through the normal admission path.
            {
                let mut table = inner.table.lock().unwrap();
                table.next_id = recovery.max_id().unwrap_or(0);
                for job in &recovery.jobs {
                    if let Some(snapshot) = &job.terminal {
                        table.jobs.insert(job.id, snapshot.clone());
                    }
                }
            }
            for job in recovery.in_flight() {
                {
                    let mut table = inner.table.lock().unwrap();
                    inner.insert_accepted(&mut table, job.id, job.request.clone());
                }
                inner.admit(job.id, &job.request);
            }
        }
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("astra-service-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(ServiceDaemon { inner, workers })
    }

    /// A clonable client handle onto this daemon.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// True once an injected [`FaultAction::Crash`] fired — the daemon
    /// is simulating a dead process (queue frozen, claims held); only
    /// [`ServiceDaemon::abandon`] and a journal-replaying restart make
    /// progress.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Tear down *without* draining: halt the scheduler where it
    /// stands (queued jobs stay queued, held claims stay held) and
    /// join the workers. This is how a chaos test disposes of a
    /// "crashed" daemon before restarting from its journal — the live
    /// path is [`ServiceDaemon::shutdown`].
    pub fn abandon(mut self) {
        self.inner.scheduler.halt();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stop accepting submissions, drain every queued job to a terminal
    /// state, join the workers, and return all job records in id order.
    pub fn shutdown(mut self) -> Vec<JobSnapshot> {
        self.close_and_join();
        self.inner.jobs_sorted()
    }

    fn close_and_join(&mut self) {
        self.inner.scheduler.close();
        for handle in self.workers.drain(..) {
            // Worker panics are caught per job; a join error here means
            // the loop itself died, and shutdown should still proceed.
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceDaemon {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Synchronous client handle: submit jobs, poll status, block on
/// completion, ask frontier questions. Clone freely — handles share the
/// daemon.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl ServiceHandle {
    /// Submit a job. Infallible by design: the returned id's snapshot
    /// carries the outcome, with every refusal an explicit `Rejected`
    /// reason. The admission plan runs on the submitter thread, through
    /// the shared session cache.
    pub fn submit(&self, request: JobRequest) -> JobId {
        let _span = self
            .inner
            .telemetry
            .wall_span("service", "service.submit", "service");
        self.inner.telemetry.counter("service.submitted", 1);
        let id = self.inner.register(request.clone());
        self.inner.admit(id, &request);
        id
    }

    /// Register a `Rejected` job carrying `reason`, without ever
    /// touching the queue — the service's answer to a request that
    /// could not even be parsed (framing errors, malformed JSON). The
    /// snapshot's request field holds a placeholder; the id is real and
    /// pollable like any other.
    pub fn reject_submission(&self, reason: String) -> JobId {
        self.inner.telemetry.counter("service.submitted", 1);
        let placeholder = JobRequest::new(
            "<unparsed>",
            JobSpec::uniform("<unparsed>", 1, 1.0, WorkloadProfile::uniform_test()),
            astra_core::Objective::cheapest(),
        );
        let id = self.inner.register(placeholder);
        self.inner.reject(id, reason);
        id
    }

    /// Parse a JSON request body and submit it. Parse and validation
    /// failures still get a job id whose snapshot is `Rejected` with
    /// the wire error as reason (the request field holds a placeholder).
    pub fn submit_json(&self, body: &str) -> JobId {
        match wire::job_request_from_str(body) {
            Ok(request) => self.submit(request),
            Err(e) => self.reject_submission(e.to_string()),
        }
    }

    /// Resubmit a prior job, optionally with a revised request — the
    /// interactive re-quote path. Returns `None` when `prior` was never
    /// issued by this daemon; otherwise the new job id (the new job is
    /// planned through the session cache, so a revised spec that differs
    /// from the prior one only by a patchable delta — tweaked
    /// coefficients, new prices, resized objects — is served by
    /// clone-and-patch instead of a cold DAG build). When `revised` is
    /// `None` the prior request is replayed verbatim (typically an exact
    /// cache hit).
    pub fn resubmit(&self, prior: JobId, revised: Option<JobRequest>) -> Option<JobId> {
        let prior_request = {
            let table = self.inner.table.lock().unwrap();
            table.jobs.get(&prior)?.request.clone()
        };
        self.inner.telemetry.counter("service.resubmitted", 1);
        Some(self.submit(revised.unwrap_or(prior_request)))
    }

    /// A point-in-time copy of one job's record.
    pub fn status(&self, id: JobId) -> Option<JobSnapshot> {
        self.inner.table.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Block until the job reaches a terminal state; returns its final
    /// snapshot (`None` for an unknown id).
    pub fn await_done(&self, id: JobId) -> Option<JobSnapshot> {
        let mut table = self.inner.table.lock().unwrap();
        loop {
            match table.jobs.get(&id) {
                None => return None,
                Some(snap) if snap.is_terminal() => return Some(snap.clone()),
                Some(_) => table = self.inner.job_changed.wait(table).unwrap(),
            }
        }
    }

    /// Walk the cost–performance Pareto frontier for a job spec,
    /// through the shared session cache (so a frontier question about a
    /// job the daemon has planned costs label searches only).
    pub fn frontier(&self, job: &JobSpec, points: usize) -> Result<Vec<FrontierPoint>, String> {
        let _span = self
            .inner
            .telemetry
            .wall_span("service", "service.frontier", "service");
        let (session, _) = self.inner.session_cached(job);
        session
            .pareto_frontier(points)
            .map(|plans| {
                plans
                    .iter()
                    .map(|p| FrontierPoint {
                        cost: p.predicted_cost(),
                        jct_s: p.predicted_jct_s(),
                        summary: p.summary(),
                    })
                    .collect()
            })
            .map_err(|e| e.to_string())
    }

    /// All job records so far, in id order.
    pub fn jobs(&self) -> Vec<JobSnapshot> {
        self.inner.jobs_sorted()
    }

    /// Session-cache statistics (hits / patched / misses / evictions /
    /// residency).
    pub fn cache_stats(&self) -> SessionCacheStats {
        self.inner.cache.stats()
    }

    /// Jobs waiting in the submission queue right now.
    pub fn queue_len(&self) -> usize {
        self.inner.scheduler.queue_len()
    }

    /// Jobs currently holding envelope admission.
    pub fn in_flight(&self) -> usize {
        self.inner.scheduler.in_flight()
    }

    /// The admission envelope in force.
    pub fn envelope(&self) -> Envelope {
        self.inner.scheduler.envelope()
    }

    /// Occupancy of one tenant's lane (`None` if the tenant has never
    /// had a job queued).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner.scheduler.tenant_stats(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Objective;

    fn request(n: usize) -> JobRequest {
        JobRequest::new(
            format!("daemon-{n}"),
            JobSpec::uniform(format!("daemon-{n}"), n, 1.0, WorkloadProfile::uniform_test()),
            Objective::min_time_with_budget_dollars(5.0),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            platform: Platform::paper_literal(10.0),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn a_job_runs_to_done() {
        let daemon = ServiceDaemon::start(small_config());
        let handle = daemon.handle();
        let id = handle.submit(request(4));
        let snap = handle.await_done(id).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        snap.check_history().unwrap();
        assert!(snap.plan.is_some());
        let sim = snap.sim.as_ref().unwrap();
        assert_eq!(sim.jct_s.len(), 1);
        assert!(sim.jct_s[0] > 0.0);
        assert!(snap.metrics.total_ns > 0);
    }

    #[test]
    fn plan_only_requests_skip_simulating() {
        let daemon = ServiceDaemon::start(small_config());
        let handle = daemon.handle();
        let id = handle.submit(request(4).with_sim(crate::types::SimOptions {
            replications: 0,
            ..Default::default()
        }));
        let snap = handle.await_done(id).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        assert!(snap.sim.is_none());
        assert!(!snap.history.iter().any(|&(s, _)| s == JobStatus::Simulating));
        snap.check_history().unwrap();
    }

    #[test]
    fn invalid_and_infeasible_requests_are_rejected_with_reasons() {
        let daemon = ServiceDaemon::start(small_config());
        let handle = daemon.handle();

        let mut bad = request(4);
        bad.job.object_sizes_mb[0] = -3.0;
        let id = handle.submit(bad);
        let snap = handle.await_done(id).unwrap();
        assert_eq!(snap.status, JobStatus::Rejected);
        assert!(snap.reason.as_ref().unwrap().contains("invalid size"));
        snap.check_history().unwrap();

        let mut hopeless = request(4);
        hopeless.objective = Objective::MinimizeTime {
            budget: astra_pricing::Money::from_nanos(1),
        };
        let id = handle.submit(hopeless);
        let snap = handle.await_done(id).unwrap();
        assert_eq!(snap.status, JobStatus::Rejected);
        assert!(snap.reason.as_ref().unwrap().contains("no configuration"));
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_late_submissions() {
        let daemon = ServiceDaemon::start(small_config().with_workers(1));
        let handle = daemon.handle();
        let ids: Vec<JobId> = (0..4).map(|i| handle.submit(request(3 + i))).collect();
        let snapshots = daemon.shutdown();
        assert_eq!(snapshots.len(), 4);
        for id in ids {
            let snap = snapshots.iter().find(|s| s.id == id).unwrap();
            assert_eq!(snap.status, JobStatus::Done, "job {id} not drained");
        }
        let late = handle.submit(request(4));
        let snap = handle.await_done(late).unwrap();
        assert_eq!(snap.status, JobStatus::Rejected);
        assert!(snap.reason.as_ref().unwrap().contains("shutting down"));
    }

    #[test]
    fn worker_replans_hit_the_session_cache() {
        let daemon = ServiceDaemon::start(small_config());
        let handle = daemon.handle();
        let id = handle.submit(request(4));
        let snap = handle.await_done(id).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        // Admission planning missed (cold cache); the worker re-plan hit.
        assert!(snap.session_cache_hit);
        let stats = handle.cache_stats();
        assert!(stats.hits >= 1, "stats: {stats:?}");
    }

    #[test]
    fn resubmit_replays_and_patches_through_the_cache() {
        let daemon = ServiceDaemon::start(ServiceConfig {
            // Pruning off keeps the DAG shape insensitive to coefficient
            // tweaks, so the revised resubmit exercises clone-and-patch.
            prune: PruneConfig::off(),
            ..small_config()
        });
        let handle = daemon.handle();

        let id = handle.submit(request(4));
        assert_eq!(handle.await_done(id).unwrap().status, JobStatus::Done);

        // Verbatim resubmit: a fresh job with the prior spec, planned
        // from the already-resident session.
        let replay = handle.resubmit(id, None).unwrap();
        assert_ne!(replay, id);
        let snap = handle.await_done(replay).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        assert_eq!(snap.request.job, request(4).job);
        assert!(snap.session_cache_hit);

        // Revised resubmit differing only by a mapper coefficient: the
        // cached session is cloned and patched, not cold-built.
        let mut revised = request(4);
        revised.job.profile.map_secs_per_mb_128 *= 1.3;
        let requote = handle.resubmit(id, Some(revised.clone())).unwrap();
        let snap = handle.await_done(requote).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        assert_eq!(snap.request.job, revised.job);
        let stats = handle.cache_stats();
        assert!(stats.patched >= 1, "stats: {stats:?}");

        // A prior id the daemon never issued is a lookup miss.
        assert!(handle.resubmit(99_999, None).is_none());
    }

    #[test]
    fn frontier_answers_through_the_cache() {
        let daemon = ServiceDaemon::start(small_config());
        let handle = daemon.handle();
        let job = request(6).job;
        let frontier = handle.frontier(&job, 6).unwrap();
        assert!(frontier.len() >= 2);
        for pair in frontier.windows(2) {
            assert!(pair[1].cost >= pair[0].cost);
            assert!(pair[1].jct_s <= pair[0].jct_s + 1e-9);
        }
    }
}
