//! A bounded LRU of [`PlannerSession`]s shared by admission planning
//! and the worker pool.
//!
//! A [`PlannerSession`] pays the Fig. 5 DAG construction and the
//! backward-potential sweep once per `(job, space, platform, prices)`
//! tuple; the service sees the same tuple repeatedly — admission plans
//! a job at submit time, a worker re-plans it when it dispatches, and
//! tenants resubmit identical specs with different objectives. Caching
//! sessions turns all of those into label-search-speed queries.
//!
//! The key is a canonical fingerprint of every input that affects the
//! session ([`SessionKey::for_inputs`]); two jobs share a session only
//! if they would build bit-identical DAGs, so reuse can never change a
//! result. Lookups are single-flight: the build runs under the cache
//! lock, so concurrent workers asking for the same key produce one
//! session, not several.
//!
//! A miss is not always a cold build: [`SessionCache::get_or_patch`]
//! revalidates near-misses. When the submitted inputs differ from a
//! resident session only by a patchable delta (model coefficients,
//! prices, per-object sizes — anything that keeps the DAG shape), the
//! cached session is cloned and repaired in place via
//! [`PlannerSession::apply_delta`], which recosts only the affected edge
//! families and resumes the potential sweep instead of rebuilding the
//! Fig. 5 DAG. Resubmitted jobs with tweaked profiles therefore re-quote
//! at interactive latency.
//!
//! Reuse is observable as `service.cache.hits` / `.patched` /
//! `.misses` / `.evictions` counters and a `service.cache.entries`
//! gauge.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use astra_core::{ConfigSpace, JobDelta, PlannerSession, PruneConfig, ReplanOutcome, Strategy};
use astra_model::{JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_telemetry::Telemetry;

/// Canonical fingerprint of everything a [`PlannerSession`] depends on.
///
/// Built field by field: floats are fingerprinted by their IEEE-754 bit
/// pattern (exact — no formatting round-trip), strings are
/// length-prefixed so a separator inside a job name cannot collide with
/// field boundaries, and every list is length-prefixed. Two inputs
/// produce the same key iff every field is bit-identical, which is
/// exactly the condition under which two sessions are interchangeable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey(String);

/// Append-only canonical encoder behind [`SessionKey::for_inputs`].
struct Fingerprint(String);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(String::with_capacity(512))
    }

    /// Length-prefixed so embedded separators cannot forge boundaries.
    fn str(&mut self, v: &str) {
        let _ = write!(self.0, "s{}:{};", v.len(), v);
    }

    /// Exact bit pattern: distinguishes `-0.0`/`0.0` and NaN payloads,
    /// and never loses precision to decimal formatting.
    fn f64(&mut self, v: f64) {
        let _ = write!(self.0, "f{:016x};", v.to_bits());
    }

    fn u64(&mut self, v: u64) {
        let _ = write!(self.0, "u{v};");
    }

    fn i128(&mut self, v: i128) {
        let _ = write!(self.0, "i{v};");
    }

    fn bool(&mut self, v: bool) {
        self.0.push(if v { 'T' } else { 'F' });
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v as u64);
        }
    }

    fn usizes(&mut self, vs: &[usize]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v as u64);
        }
    }

    fn money(&mut self, v: astra_pricing::Money) {
        self.i128(v.nanos());
    }
}

impl SessionKey {
    /// Fingerprint the full session input tuple.
    pub fn for_inputs(
        job: &JobSpec,
        space: &ConfigSpace,
        platform: &Platform,
        catalog: &PriceCatalog,
        strategy: Strategy,
        prune: PruneConfig,
    ) -> Self {
        let mut f = Fingerprint::new();

        // Job: name, inputs, workload profile.
        f.str(&job.name);
        f.f64s(&job.object_sizes_mb);
        let p = &job.profile;
        f.str(&p.name);
        f.f64(p.map_secs_per_mb_128);
        f.f64(p.reduce_secs_per_mb_128);
        f.f64(p.coord_secs_per_mb_128);
        f.f64(p.shuffle_ratio);
        f.f64(p.reduce_ratio);
        f.f64(p.state_object_mb);
        f.bool(p.single_pass_reduce);

        // Configuration space.
        f.u32s(&space.memory_tiers_mb);
        f.usizes(&space.k_m_values);
        f.usizes(&space.k_r_values);
        f.usizes(&space.k_m_weights);

        // Platform, including the transfer model and the optional
        // ephemeral intermediate store.
        f.u32s(&platform.memory_tiers_mb);
        f.u64(platform.cpu_ceiling_mb as u64);
        f.u64(platform.max_concurrency as u64);
        f.f64(platform.timeout_s);
        f.f64(platform.max_storage_mb);
        f.f64(platform.cold_start_s);
        f.f64(platform.transfer.bandwidth_mbps);
        f.f64(platform.transfer.get_latency_s);
        f.f64(platform.transfer.put_latency_s);
        f.f64(platform.efficiency_at_min);
        f.u64(platform.efficiency_full_mb as u64);
        f.f64(platform.bandwidth_exponent);
        f.f64(platform.max_bandwidth_mbps);
        f.f64(platform.orchestration_overhead_s);
        f.f64(platform.invoke_call_s);
        match &platform.intermediate {
            None => f.bool(false),
            Some(store) => {
                f.bool(true);
                f.str(&store.name);
                f.f64(store.get_latency_s);
                f.f64(store.put_latency_s);
                f.f64(store.bandwidth_mbps);
                f.money(store.per_get);
                f.money(store.per_put);
                f.f64(store.storage_gb_month_dollars);
                f.money(store.rental_per_hour);
            }
        }

        // Prices (Money is exact integer nanodollars).
        f.money(catalog.lambda.per_invocation);
        f.money(catalog.lambda.per_gb_second);
        f.u64(catalog.lambda.billing_granularity_us);
        f.money(catalog.s3.per_put);
        f.money(catalog.s3.per_get);
        f.f64(catalog.s3.gb_month_dollars);
        f.money(catalog.vm.emr_per_hour);
        f.u64(catalog.vm.min_billed_us);

        // Solver knobs.
        f.u64(match strategy {
            Strategy::Algorithm1 => 0,
            Strategy::ExactCsp => 1,
            Strategy::PathEnumeration => 2,
            Strategy::Exhaustive => 3,
        });
        f.bool(prune.pareto_tiers);

        SessionKey(f.0)
    }

    /// The fingerprint text (diagnostics only).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCacheStats {
    /// Lookups answered by an existing session.
    pub hits: u64,
    /// Near-miss lookups answered by cloning a cached session and
    /// patching it with the delta instead of cold-building.
    pub patched: u64,
    /// Lookups that had to build a session.
    pub misses: u64,
    /// Sessions evicted to stay within capacity.
    pub evictions: u64,
    /// Sessions currently resident.
    pub entries: usize,
}

impl SessionCacheStats {
    /// Hits over total lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    session: Arc<PlannerSession>,
    /// Last-touch stamp from the shared counter; smallest = LRU victim.
    touched: u64,
}

struct CacheState {
    entries: HashMap<SessionKey, Entry>,
    clock: u64,
    hits: u64,
    patched: u64,
    misses: u64,
    evictions: u64,
}

impl CacheState {
    /// Insert `session` under `key`, evicting the LRU entry if the cache
    /// is at `capacity`. Capacity 0 stores nothing.
    fn insert(&mut self, key: SessionKey, session: &Arc<PlannerSession>, stamp: u64, capacity: usize, telemetry: &Telemetry) {
        if capacity == 0 {
            return;
        }
        if self.entries.len() >= capacity {
            // Smallest touch stamp is the least recently used; ties
            // are impossible because stamps are unique.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
                telemetry.counter("service.cache.evictions", 1);
            }
        }
        self.entries.insert(
            key,
            Entry {
                session: Arc::clone(session),
                touched: stamp,
            },
        );
    }
}

/// How a [`SessionCache::get_or_patch`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Exact fingerprint match — the cached session was returned as-is.
    Hit,
    /// A cached session for different inputs was cloned and patched in
    /// place via [`PlannerSession::apply_delta`] (cheaper than a cold
    /// build for coefficient/price deltas).
    Patched,
    /// No usable entry: a session was cold-built.
    Miss,
}

/// The bounded LRU itself. Clone-cheap (`Arc` inside); all methods take
/// `&self`.
#[derive(Clone)]
pub struct SessionCache {
    state: Arc<Mutex<CacheState>>,
    capacity: usize,
    telemetry: Telemetry,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions. Capacity 0 disables
    /// retention entirely: every lookup builds and nothing is stored.
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        SessionCache {
            state: Arc::new(Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                patched: 0,
                misses: 0,
                evictions: 0,
            })),
            capacity,
            telemetry,
        }
    }

    /// Maximum resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch the session for `key`, building it with `build` on a miss.
    /// The build runs under the cache lock (single-flight).
    pub fn get_or_build(
        &self,
        key: SessionKey,
        build: impl FnOnce() -> PlannerSession,
    ) -> (Arc<PlannerSession>, bool) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;

        if let Some(entry) = state.entries.get_mut(&key) {
            entry.touched = stamp;
            let session = Arc::clone(&entry.session);
            state.hits += 1;
            self.telemetry.counter("service.cache.hits", 1);
            return (session, true);
        }

        state.misses += 1;
        self.telemetry.counter("service.cache.misses", 1);
        let session = Arc::new(build());

        state.insert(key, &session, stamp, self.capacity, &self.telemetry);
        self.telemetry
            .gauge("service.cache.entries", state.entries.len() as f64);
        (session, false)
    }

    /// Fetch the session for `key`, revalidating a near-miss before
    /// falling back to a cold build.
    ///
    /// On an exact fingerprint hit this is [`SessionCache::get_or_build`].
    /// On a miss, every resident session with the same solver knobs is
    /// classified against the new inputs with [`JobDelta::classify`]; if
    /// one differs only by a patchable delta (coefficients, prices,
    /// per-object sizes — not DAG shape), the most recently used such
    /// donor is cloned and patched via [`PlannerSession::apply_delta`],
    /// which is far cheaper than rebuilding the Fig. 5 DAG and is
    /// proptest-pinned to answer bit-identically to a cold build. Only if
    /// no donor qualifies (or the patch degenerated to a rebuild) does
    /// `build` run.
    ///
    /// The patched session is inserted under `key`; the donor entry is
    /// left untouched, so a tenant alternating between two specs keeps
    /// both resident.
    #[allow(clippy::too_many_arguments)] // the full session-input tuple, flattened
    pub fn get_or_patch(
        &self,
        key: SessionKey,
        job: &JobSpec,
        space: &ConfigSpace,
        platform: &Platform,
        catalog: &PriceCatalog,
        strategy: Strategy,
        prune: PruneConfig,
        build: impl FnOnce() -> PlannerSession,
    ) -> (Arc<PlannerSession>, CacheLookup) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;

        if let Some(entry) = state.entries.get_mut(&key) {
            entry.touched = stamp;
            let session = Arc::clone(&entry.session);
            state.hits += 1;
            self.telemetry.counter("service.cache.hits", 1);
            return (session, CacheLookup::Hit);
        }

        // Near-miss scan: most recently used donor whose inputs differ
        // from the request only by a patchable delta. `touched` stamps
        // are unique, so the choice is deterministic.
        let donor = state
            .entries
            .values()
            .filter(|e| {
                let s = &e.session;
                s.strategy() == strategy
                    && s.prune() == prune
                    && JobDelta::classify(
                        s.job(),
                        s.space(),
                        s.platform(),
                        s.catalog(),
                        job,
                        space,
                        platform,
                        catalog,
                    )
                    .patchable()
            })
            .max_by_key(|e| e.touched)
            .map(|e| Arc::clone(&e.session));

        if let Some(donor) = donor {
            let mut patched = (*donor).clone();
            let outcome = patched.apply_delta(job, platform, catalog, space);
            if outcome != ReplanOutcome::Rebuilt {
                let session = Arc::new(patched);
                state.patched += 1;
                self.telemetry.counter("service.cache.patched", 1);
                state.insert(key, &session, stamp, self.capacity, &self.telemetry);
                self.telemetry
                    .gauge("service.cache.entries", state.entries.len() as f64);
                return (session, CacheLookup::Patched);
            }
            // The classifier said patchable but the session had to
            // rebuild anyway (e.g. a recost gate flipped). The rebuilt
            // session is still exact — keep it, but account for it as a
            // miss since the full build price was paid.
            let session = Arc::new(patched);
            state.misses += 1;
            self.telemetry.counter("service.cache.misses", 1);
            state.insert(key, &session, stamp, self.capacity, &self.telemetry);
            self.telemetry
                .gauge("service.cache.entries", state.entries.len() as f64);
            return (session, CacheLookup::Miss);
        }

        state.misses += 1;
        self.telemetry.counter("service.cache.misses", 1);
        let session = Arc::new(build());
        state.insert(key, &session, stamp, self.capacity, &self.telemetry);
        self.telemetry
            .gauge("service.cache.entries", state.entries.len() as f64);
        (session, CacheLookup::Miss)
    }

    /// Current statistics.
    pub fn stats(&self) -> SessionCacheStats {
        let state = self.state.lock().unwrap();
        SessionCacheStats {
            hits: state.hits,
            patched: state.patched,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Objective;
    use astra_model::WorkloadProfile;
    use astra_pricing::Money;

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform(format!("cache-{n}"), n, 1.0, WorkloadProfile::uniform_test())
    }

    fn key_for(job: &JobSpec, platform: &Platform) -> SessionKey {
        SessionKey::for_inputs(
            job,
            &ConfigSpace::with_tiers(job, platform, &[128, 512]),
            platform,
            &PriceCatalog::aws_2020(),
            Strategy::ExactCsp,
            PruneConfig::default(),
        )
    }

    fn session_for(job: &JobSpec, platform: &Platform) -> PlannerSession {
        PlannerSession::new(
            job,
            platform.clone(),
            PriceCatalog::aws_2020(),
            ConfigSpace::with_tiers(job, platform, &[128, 512]),
            Strategy::ExactCsp,
            PruneConfig::default(),
        )
    }

    #[test]
    fn same_key_hits_different_key_misses() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let (a, b) = (job(4), job(5));

        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit);
        let (_, hit) = cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        assert!(!hit);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_platforms_do_not_collide() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let j = job(4);
        let lambda = Platform::aws_lambda();
        let literal = Platform::paper_literal(10.0);
        cache.get_or_build(key_for(&j, &lambda), || session_for(&j, &lambda));
        let (_, hit) = cache.get_or_build(key_for(&j, &literal), || session_for(&j, &literal));
        assert!(!hit, "different platforms must not share a session");
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let cache = SessionCache::new(2, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let (a, b, c) = (job(3), job(4), job(5));

        cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        // Touch `a` so `b` becomes the LRU victim.
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit);
        cache.get_or_build(key_for(&c, &platform), || session_for(&c, &platform));

        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit, "recently touched entry must survive eviction");
        let (_, hit) = cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        assert!(!hit, "LRU entry must have been evicted");
    }

    #[test]
    fn fingerprint_distinguishes_every_field_class() {
        let platform = Platform::aws_lambda();
        let j = job(4);
        let base = key_for(&j, &platform);

        // Same inputs → same key.
        assert_eq!(base, key_for(&j, &platform));

        // A job name that tries to forge the field separator still gets
        // its own key (length-prefixing defeats injection).
        let mut renamed = j.clone();
        renamed.name = format!("{};f0000000000000000;", j.name);
        assert_ne!(base, key_for(&renamed, &platform));

        // Coefficient, price, platform and knob changes all move the key.
        let mut coeff = j.clone();
        coeff.profile.map_secs_per_mb_128 *= 1.5;
        assert_ne!(base, key_for(&coeff, &platform));

        let mut bumped = platform.clone();
        bumped.timeout_s += 1.0;
        assert_ne!(base, key_for(&j, &bumped));

        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 512]);
        let mut catalog = PriceCatalog::aws_2020();
        catalog.lambda.per_gb_second = catalog.lambda.per_gb_second.scale(2.0);
        assert_ne!(
            base,
            SessionKey::for_inputs(
                &j,
                &space,
                &platform,
                &catalog,
                Strategy::ExactCsp,
                PruneConfig::default(),
            )
        );
        let catalog = PriceCatalog::aws_2020();
        assert_ne!(
            base,
            SessionKey::for_inputs(
                &j,
                &space,
                &platform,
                &catalog,
                Strategy::Algorithm1,
                PruneConfig::default(),
            )
        );
        assert_ne!(
            base,
            SessionKey::for_inputs(
                &j,
                &space,
                &platform,
                &catalog,
                Strategy::ExactCsp,
                PruneConfig::off(),
            )
        );
    }

    fn patch_lookup(
        cache: &SessionCache,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        prune: PruneConfig,
    ) -> (Arc<PlannerSession>, CacheLookup) {
        let space = ConfigSpace::with_tiers(job, platform, &[128, 512]);
        let key = SessionKey::for_inputs(job, &space, platform, catalog, Strategy::ExactCsp, prune);
        cache.get_or_patch(
            key,
            job,
            &space,
            platform,
            catalog,
            Strategy::ExactCsp,
            prune,
            || {
                PlannerSession::new(
                    job,
                    platform.clone(),
                    *catalog,
                    space.clone(),
                    Strategy::ExactCsp,
                    prune,
                )
            },
        )
    }

    #[test]
    fn near_miss_patches_instead_of_building() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let j = job(4);
        // Pruning off keeps the DAG shape insensitive to coefficient
        // tweaks, so the near-miss is served by the fast recost tier.
        let prune = PruneConfig::off();

        let (_, lookup) = patch_lookup(&cache, &j, &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Miss);
        let (_, lookup) = patch_lookup(&cache, &j, &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Hit);

        // Coefficient tweak: patchable, must be served by clone-and-patch.
        let mut tweaked = j.clone();
        tweaked.profile.map_secs_per_mb_128 *= 1.25;
        let (patched, lookup) = patch_lookup(&cache, &tweaked, &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Patched);

        // The patched session must answer exactly like a cold build.
        let space = ConfigSpace::with_tiers(&tweaked, &platform, &[128, 512]);
        let cold = PlannerSession::new(
            &tweaked,
            platform.clone(),
            catalog,
            space,
            Strategy::ExactCsp,
            prune,
        );
        for objective in [
            Objective::MinimizeCost { deadline_s: 1e6 },
            Objective::MinimizeCost { deadline_s: 120.0 },
            Objective::MinimizeTime {
                budget: Money::from_dollars(1_000),
            },
        ] {
            assert_eq!(patched.solve(objective), cold.solve(objective));
        }

        // The patched entry is now resident under its own key.
        let (_, lookup) = patch_lookup(&cache, &tweaked, &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.patched, stats.misses), (2, 1, 1));
    }

    #[test]
    fn shape_change_still_cold_builds() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let prune = PruneConfig::off();

        let (_, lookup) = patch_lookup(&cache, &job(4), &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Miss);
        // Different object count reshapes the DAG: not patchable.
        let (_, lookup) = patch_lookup(&cache, &job(6), &platform, &catalog, prune);
        assert_eq!(lookup, CacheLookup::Miss);
        assert_eq!(cache.stats().patched, 0);
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = SessionCache::new(0, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let j = job(4);
        for _ in 0..3 {
            let (_, hit) = cache.get_or_build(key_for(&j, &platform), || session_for(&j, &platform));
            assert!(!hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.entries), (3, 0));
    }
}
