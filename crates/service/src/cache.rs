//! A bounded LRU of [`PlannerSession`]s shared by admission planning
//! and the worker pool.
//!
//! A [`PlannerSession`] pays the Fig. 5 DAG construction and the
//! backward-potential sweep once per `(job, space, platform, prices)`
//! tuple; the service sees the same tuple repeatedly — admission plans
//! a job at submit time, a worker re-plans it when it dispatches, and
//! tenants resubmit identical specs with different objectives. Caching
//! sessions turns all of those into label-search-speed queries.
//!
//! The key is a canonical fingerprint of every input that affects the
//! session ([`SessionKey::for_inputs`]); two jobs share a session only
//! if they would build bit-identical DAGs, so reuse can never change a
//! result. Lookups are single-flight: the build runs under the cache
//! lock, so concurrent workers asking for the same key produce one
//! session, not several.
//!
//! Reuse is observable as `service.cache.hits` / `.misses` /
//! `.evictions` counters and a `service.cache.entries` gauge.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use astra_core::{ConfigSpace, PlannerSession, PruneConfig, Strategy};
use astra_model::{JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_telemetry::Telemetry;

/// Canonical fingerprint of everything a [`PlannerSession`] depends on.
///
/// Built from `Debug` renderings: Rust's `f64` Debug format is
/// shortest-round-trip, so distinct inputs always produce distinct
/// fingerprints, and equal inputs equal ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey(String);

impl SessionKey {
    /// Fingerprint the full session input tuple.
    pub fn for_inputs(
        job: &JobSpec,
        space: &ConfigSpace,
        platform: &Platform,
        catalog: &PriceCatalog,
        strategy: Strategy,
        prune: PruneConfig,
    ) -> Self {
        SessionKey(format!(
            "job={job:?}|space={space:?}|platform={platform:?}|catalog={catalog:?}|strategy={strategy:?}|prune={prune:?}"
        ))
    }

    /// The fingerprint text (diagnostics only).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCacheStats {
    /// Lookups answered by an existing session.
    pub hits: u64,
    /// Lookups that had to build a session.
    pub misses: u64,
    /// Sessions evicted to stay within capacity.
    pub evictions: u64,
    /// Sessions currently resident.
    pub entries: usize,
}

impl SessionCacheStats {
    /// Hits over total lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    session: Arc<PlannerSession>,
    /// Last-touch stamp from the shared counter; smallest = LRU victim.
    touched: u64,
}

struct CacheState {
    entries: HashMap<SessionKey, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The bounded LRU itself. Clone-cheap (`Arc` inside); all methods take
/// `&self`.
#[derive(Clone)]
pub struct SessionCache {
    state: Arc<Mutex<CacheState>>,
    capacity: usize,
    telemetry: Telemetry,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions. Capacity 0 disables
    /// retention entirely: every lookup builds and nothing is stored.
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        SessionCache {
            state: Arc::new(Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            })),
            capacity,
            telemetry,
        }
    }

    /// Maximum resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch the session for `key`, building it with `build` on a miss.
    /// The build runs under the cache lock (single-flight).
    pub fn get_or_build(
        &self,
        key: SessionKey,
        build: impl FnOnce() -> PlannerSession,
    ) -> (Arc<PlannerSession>, bool) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;

        if let Some(entry) = state.entries.get_mut(&key) {
            entry.touched = stamp;
            let session = Arc::clone(&entry.session);
            state.hits += 1;
            self.telemetry.counter("service.cache.hits", 1);
            return (session, true);
        }

        state.misses += 1;
        self.telemetry.counter("service.cache.misses", 1);
        let session = Arc::new(build());

        if self.capacity > 0 {
            if state.entries.len() >= self.capacity {
                // Smallest touch stamp is the least recently used; ties
                // are impossible because stamps are unique.
                if let Some(victim) = state
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.touched)
                    .map(|(k, _)| k.clone())
                {
                    state.entries.remove(&victim);
                    state.evictions += 1;
                    self.telemetry.counter("service.cache.evictions", 1);
                }
            }
            state.entries.insert(
                key,
                Entry {
                    session: Arc::clone(&session),
                    touched: stamp,
                },
            );
        }
        self.telemetry
            .gauge("service.cache.entries", state.entries.len() as f64);
        (session, false)
    }

    /// Current statistics.
    pub fn stats(&self) -> SessionCacheStats {
        let state = self.state.lock().unwrap();
        SessionCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform(format!("cache-{n}"), n, 1.0, WorkloadProfile::uniform_test())
    }

    fn key_for(job: &JobSpec, platform: &Platform) -> SessionKey {
        SessionKey::for_inputs(
            job,
            &ConfigSpace::with_tiers(job, platform, &[128, 512]),
            platform,
            &PriceCatalog::aws_2020(),
            Strategy::ExactCsp,
            PruneConfig::default(),
        )
    }

    fn session_for(job: &JobSpec, platform: &Platform) -> PlannerSession {
        PlannerSession::new(
            job,
            platform.clone(),
            PriceCatalog::aws_2020(),
            ConfigSpace::with_tiers(job, platform, &[128, 512]),
            Strategy::ExactCsp,
            PruneConfig::default(),
        )
    }

    #[test]
    fn same_key_hits_different_key_misses() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let (a, b) = (job(4), job(5));

        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit);
        let (_, hit) = cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        assert!(!hit);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_platforms_do_not_collide() {
        let cache = SessionCache::new(4, Telemetry::disabled());
        let j = job(4);
        let lambda = Platform::aws_lambda();
        let literal = Platform::paper_literal(10.0);
        cache.get_or_build(key_for(&j, &lambda), || session_for(&j, &lambda));
        let (_, hit) = cache.get_or_build(key_for(&j, &literal), || session_for(&j, &literal));
        assert!(!hit, "different platforms must not share a session");
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let cache = SessionCache::new(2, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let (a, b, c) = (job(3), job(4), job(5));

        cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        // Touch `a` so `b` becomes the LRU victim.
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit);
        cache.get_or_build(key_for(&c, &platform), || session_for(&c, &platform));

        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        let (_, hit) = cache.get_or_build(key_for(&a, &platform), || session_for(&a, &platform));
        assert!(hit, "recently touched entry must survive eviction");
        let (_, hit) = cache.get_or_build(key_for(&b, &platform), || session_for(&b, &platform));
        assert!(!hit, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = SessionCache::new(0, Telemetry::disabled());
        let platform = Platform::aws_lambda();
        let j = job(4);
        for _ in 0..3 {
            let (_, hit) = cache.get_or_build(key_for(&j, &platform), || session_for(&j, &platform));
            assert!(!hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.entries), (3, 0));
    }
}
