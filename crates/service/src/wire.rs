//! Strict JSON wire format for service types.
//!
//! The offline `serde` shim's derives are no-ops, so the wire format is
//! explicit code over the `serde_json` document model — which also
//! makes the service's compatibility promises explicit:
//!
//! * **Unknown fields are errors.** A request carrying a field this
//!   version does not understand is rejected (mapped onto the
//!   `Rejected` lifecycle state by [`crate::ServiceHandle::submit_json`])
//!   rather than silently ignored — a misspelt `"deadline_s"` must not
//!   quietly plan an unconstrained job.
//! * **Money is exact.** Budgets travel as decimal nanodollar strings
//!   (`"budget_nanos": "2500000000"`), never floats, so a budget
//!   round-trips bit-identically; `"budget_dollars": 2.5` is accepted
//!   as a convenience on input.
//! * **Round-trip is lossless.** `from_json(to_json(x)) == x` for every
//!   request/status/snapshot — `tests/service_serde.rs` pins it.

use astra_core::Objective;
use astra_model::{JobSpec, WorkloadProfile};
use astra_pricing::Money;
use serde_json::{json, Map, Value};

use crate::types::{JobRequest, JobSnapshot, SimOptions};

/// Why decoding failed. The message is what lands in a `Rejected`
/// snapshot's reason.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Not valid JSON at all.
    Parse(String),
    /// A field this version does not understand.
    UnknownField {
        /// The object it appeared in.
        context: &'static str,
        /// The offending key.
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// The object it is missing from.
        context: &'static str,
        /// The absent key.
        field: &'static str,
    },
    /// A field is present but has the wrong type or an invalid value.
    Invalid {
        /// The object the field lives in.
        context: &'static str,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Parse(m) => write!(f, "invalid JSON: {m}"),
            WireError::UnknownField { context, field } => {
                write!(f, "unknown field '{field}' in {context}")
            }
            WireError::MissingField { context, field } => {
                write!(f, "missing field '{field}' in {context}")
            }
            WireError::Invalid { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Check that `object` only carries keys from `allowed`.
fn deny_unknown(
    object: &Map<String, Value>,
    context: &'static str,
    allowed: &[&str],
) -> Result<(), WireError> {
    for key in object.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::UnknownField {
                context,
                field: key.clone(),
            });
        }
    }
    Ok(())
}

fn as_object<'v>(
    value: &'v Value,
    context: &'static str,
) -> Result<&'v Map<String, Value>, WireError> {
    value.as_object().ok_or(WireError::Invalid {
        context,
        message: "expected a JSON object".to_string(),
    })
}

fn get_str(
    object: &Map<String, Value>,
    context: &'static str,
    field: &'static str,
) -> Result<String, WireError> {
    object
        .get(field)
        .ok_or(WireError::MissingField { context, field })?
        .as_str()
        .map(String::from)
        .ok_or(WireError::Invalid {
            context,
            message: format!("'{field}' must be a string"),
        })
}

fn get_f64(
    object: &Map<String, Value>,
    context: &'static str,
    field: &'static str,
) -> Result<f64, WireError> {
    object
        .get(field)
        .ok_or(WireError::MissingField { context, field })?
        .as_f64()
        .ok_or(WireError::Invalid {
            context,
            message: format!("'{field}' must be a number"),
        })
}

fn get_bool(
    object: &Map<String, Value>,
    context: &'static str,
    field: &'static str,
) -> Result<bool, WireError> {
    object
        .get(field)
        .ok_or(WireError::MissingField { context, field })?
        .as_bool()
        .ok_or(WireError::Invalid {
            context,
            message: format!("'{field}' must be a boolean"),
        })
}

fn get_u64(
    object: &Map<String, Value>,
    context: &'static str,
    field: &'static str,
) -> Result<u64, WireError> {
    object
        .get(field)
        .ok_or(WireError::MissingField { context, field })?
        .as_u64()
        .ok_or(WireError::Invalid {
            context,
            message: format!("'{field}' must be a non-negative integer"),
        })
}

// ---------------------------------------------------------------- profile

const PROFILE_FIELDS: [&str; 8] = [
    "name",
    "map_secs_per_mb_128",
    "reduce_secs_per_mb_128",
    "coord_secs_per_mb_128",
    "shuffle_ratio",
    "reduce_ratio",
    "state_object_mb",
    "single_pass_reduce",
];

/// Encode a workload profile.
pub fn profile_to_json(p: &WorkloadProfile) -> Value {
    json!({
        "name": p.name.clone(),
        "map_secs_per_mb_128": p.map_secs_per_mb_128,
        "reduce_secs_per_mb_128": p.reduce_secs_per_mb_128,
        "coord_secs_per_mb_128": p.coord_secs_per_mb_128,
        "shuffle_ratio": p.shuffle_ratio,
        "reduce_ratio": p.reduce_ratio,
        "state_object_mb": p.state_object_mb,
        "single_pass_reduce": p.single_pass_reduce,
    })
}

/// Decode a workload profile (strict).
pub fn profile_from_json(value: &Value) -> Result<WorkloadProfile, WireError> {
    const CTX: &str = "profile";
    let object = as_object(value, CTX)?;
    deny_unknown(object, CTX, &PROFILE_FIELDS)?;
    Ok(WorkloadProfile {
        name: get_str(object, CTX, "name")?,
        map_secs_per_mb_128: get_f64(object, CTX, "map_secs_per_mb_128")?,
        reduce_secs_per_mb_128: get_f64(object, CTX, "reduce_secs_per_mb_128")?,
        coord_secs_per_mb_128: get_f64(object, CTX, "coord_secs_per_mb_128")?,
        shuffle_ratio: get_f64(object, CTX, "shuffle_ratio")?,
        reduce_ratio: get_f64(object, CTX, "reduce_ratio")?,
        state_object_mb: get_f64(object, CTX, "state_object_mb")?,
        single_pass_reduce: get_bool(object, CTX, "single_pass_reduce")?,
    })
}

// ---------------------------------------------------------------- job spec

/// Encode a job spec.
pub fn job_spec_to_json(job: &JobSpec) -> Value {
    json!({
        "name": job.name.clone(),
        "object_sizes_mb": Value::Array(
            job.object_sizes_mb.iter().map(|&mb| Value::from(mb)).collect()
        ),
        "profile": profile_to_json(&job.profile),
    })
}

/// Decode a job spec (strict).
pub fn job_spec_from_json(value: &Value) -> Result<JobSpec, WireError> {
    const CTX: &str = "job";
    let object = as_object(value, CTX)?;
    deny_unknown(object, CTX, &["name", "object_sizes_mb", "profile"])?;
    let sizes = object
        .get("object_sizes_mb")
        .ok_or(WireError::MissingField {
            context: CTX,
            field: "object_sizes_mb",
        })?
        .as_array()
        .ok_or(WireError::Invalid {
            context: CTX,
            message: "'object_sizes_mb' must be an array".to_string(),
        })?
        .iter()
        .map(|v| {
            v.as_f64().ok_or(WireError::Invalid {
                context: CTX,
                message: "'object_sizes_mb' entries must be numbers".to_string(),
            })
        })
        .collect::<Result<Vec<f64>, WireError>>()?;
    let profile = profile_from_json(object.get("profile").ok_or(WireError::MissingField {
        context: CTX,
        field: "profile",
    })?)?;
    Ok(JobSpec {
        name: get_str(object, CTX, "name")?,
        object_sizes_mb: sizes,
        profile,
    })
}

// --------------------------------------------------------------- objective

/// Encode an objective. Budgets are emitted as exact nanodollar
/// strings; an unbounded deadline (`Objective::cheapest()` carries
/// `f64::INFINITY`, which JSON numbers cannot express) encodes as
/// `null`.
pub fn objective_to_json(objective: &Objective) -> Value {
    match objective {
        Objective::MinimizeTime { budget } => json!({
            "minimize": "time",
            "budget_nanos": budget.nanos().to_string(),
        }),
        Objective::MinimizeCost { deadline_s } => json!({
            "minimize": "cost",
            "deadline_s": if deadline_s.is_finite() {
                Value::from(*deadline_s)
            } else {
                Value::Null
            },
        }),
    }
}

/// Decode an objective (strict). Accepts `budget_nanos` (exact decimal
/// string) or `budget_dollars` (float convenience), but not both.
pub fn objective_from_json(value: &Value) -> Result<Objective, WireError> {
    const CTX: &str = "objective";
    let object = as_object(value, CTX)?;
    deny_unknown(
        object,
        CTX,
        &["minimize", "budget_nanos", "budget_dollars", "deadline_s"],
    )?;
    match get_str(object, CTX, "minimize")?.as_str() {
        "time" => {
            let budget = match (object.get("budget_nanos"), object.get("budget_dollars")) {
                (Some(nanos), None) => {
                    let text = nanos.as_str().ok_or(WireError::Invalid {
                        context: CTX,
                        message: "'budget_nanos' must be a decimal string".to_string(),
                    })?;
                    Money::from_nanos(text.parse::<i128>().map_err(|e| WireError::Invalid {
                        context: CTX,
                        message: format!("'budget_nanos': {e}"),
                    })?)
                }
                (None, Some(dollars)) => {
                    Money::from_dollars_f64(dollars.as_f64().ok_or(WireError::Invalid {
                        context: CTX,
                        message: "'budget_dollars' must be a number".to_string(),
                    })?)
                }
                (Some(_), Some(_)) => {
                    return Err(WireError::Invalid {
                        context: CTX,
                        message: "give 'budget_nanos' or 'budget_dollars', not both".to_string(),
                    })
                }
                (None, None) => {
                    return Err(WireError::MissingField {
                        context: CTX,
                        field: "budget_nanos",
                    })
                }
            };
            if object.get("deadline_s").is_some() {
                return Err(WireError::Invalid {
                    context: CTX,
                    message: "'deadline_s' does not apply when minimizing time".to_string(),
                });
            }
            Ok(Objective::MinimizeTime { budget })
        }
        "cost" => {
            if object.get("budget_nanos").is_some() || object.get("budget_dollars").is_some() {
                return Err(WireError::Invalid {
                    context: CTX,
                    message: "a budget does not apply when minimizing cost".to_string(),
                });
            }
            let deadline_s = match object.get("deadline_s") {
                None => {
                    return Err(WireError::MissingField {
                        context: CTX,
                        field: "deadline_s",
                    })
                }
                // null = unbounded (the encoding of Objective::cheapest()).
                Some(Value::Null) => f64::INFINITY,
                Some(_) => get_f64(object, CTX, "deadline_s")?,
            };
            Ok(Objective::MinimizeCost { deadline_s })
        }
        other => Err(WireError::Invalid {
            context: CTX,
            message: format!("'minimize' must be \"time\" or \"cost\", got \"{other}\""),
        }),
    }
}

// ----------------------------------------------------------------- request

/// Encode a job request.
pub fn job_request_to_json(request: &JobRequest) -> Value {
    json!({
        "name": request.name.clone(),
        "tenant": request.tenant.clone(),
        "job": job_spec_to_json(&request.job),
        "objective": objective_to_json(&request.objective),
        "sim": {
            "noise_cv": request.sim.noise_cv,
            "seed": request.sim.seed,
            "replications": request.sim.replications as u64,
        },
    })
}

/// Decode a job request (strict). `tenant` and `sim` are optional and
/// default; everything else is required.
pub fn job_request_from_json(value: &Value) -> Result<JobRequest, WireError> {
    const CTX: &str = "request";
    let object = as_object(value, CTX)?;
    deny_unknown(object, CTX, &["name", "tenant", "job", "objective", "sim"])?;
    let sim = match object.get("sim") {
        None => SimOptions::default(),
        Some(v) => {
            const SIM_CTX: &str = "sim options";
            let sim_obj = as_object(v, SIM_CTX)?;
            deny_unknown(sim_obj, SIM_CTX, &["noise_cv", "seed", "replications"])?;
            let defaults = SimOptions::default();
            SimOptions {
                noise_cv: match sim_obj.get("noise_cv") {
                    Some(_) => get_f64(sim_obj, SIM_CTX, "noise_cv")?,
                    None => defaults.noise_cv,
                },
                seed: match sim_obj.get("seed") {
                    Some(_) => get_u64(sim_obj, SIM_CTX, "seed")?,
                    None => defaults.seed,
                },
                replications: match sim_obj.get("replications") {
                    Some(_) => {
                        let n = get_u64(sim_obj, SIM_CTX, "replications")?;
                        u32::try_from(n).map_err(|_| WireError::Invalid {
                            context: SIM_CTX,
                            message: format!("'replications' {n} out of range"),
                        })?
                    }
                    None => defaults.replications,
                },
            }
        }
    };
    Ok(JobRequest {
        name: get_str(object, CTX, "name")?,
        tenant: match object.get("tenant") {
            Some(_) => get_str(object, CTX, "tenant")?,
            None => String::new(),
        },
        job: job_spec_from_json(object.get("job").ok_or(WireError::MissingField {
            context: CTX,
            field: "job",
        })?)?,
        objective: objective_from_json(object.get("objective").ok_or(
            WireError::MissingField {
                context: CTX,
                field: "objective",
            },
        )?)?,
        sim,
    })
}

/// Parse a job request from JSON text.
pub fn job_request_from_str(text: &str) -> Result<JobRequest, WireError> {
    let value = serde_json::from_str(text).map_err(|e| WireError::Parse(e.to_string()))?;
    job_request_from_json(&value)
}

// ---------------------------------------------------------------- snapshot

/// Encode a job snapshot (status answers; one-way — the service never
/// ingests snapshots).
pub fn snapshot_to_json(snap: &JobSnapshot) -> Value {
    let history: Vec<Value> = snap
        .history
        .iter()
        .map(|&(status, at_ns)| json!({ "status": status.as_str(), "at_ns": at_ns }))
        .collect();
    let plan = match &snap.plan {
        None => Value::Null,
        Some(p) => json!({
            "summary": p.summary.clone(),
            "predicted_jct_s": p.predicted_jct_s,
            "predicted_cost_nanos": p.predicted_cost.nanos().to_string(),
        }),
    };
    let sim = match &snap.sim {
        None => Value::Null,
        Some(s) => json!({
            "jct_s": Value::Array(s.jct_s.iter().map(|&x| Value::from(x)).collect()),
            "cost_nanos": Value::Array(
                s.cost.iter().map(|c| Value::from(c.nanos().to_string())).collect()
            ),
            "events": Value::Array(s.events.iter().map(|&e| Value::from(e)).collect()),
            "mean_jct_s": s.mean_jct_s(),
            "mean_cost_nanos": s.mean_cost().nanos().to_string(),
        }),
    };
    let mut value = json!({
        "id": snap.id,
        "name": snap.request.name.clone(),
        "tenant": snap.request.tenant.clone(),
        "status": snap.status.as_str(),
        "history": Value::Array(history),
        "reason": snap.reason.clone().map(Value::from).unwrap_or(Value::Null),
        "plan": plan,
        "sim": sim,
        "session_cache_hit": snap.session_cache_hit,
        "metrics": {
            "queue_wait_ns": snap.metrics.queue_wait_ns,
            "plan_ns": snap.metrics.plan_ns,
            "sim_ns": snap.metrics.sim_ns,
            "total_ns": snap.metrics.total_ns,
        },
    });
    // Emitted only on overload-shed rejections, so ordinary snapshots
    // (including PROTOCOL.md's byte-exact transcript) are unchanged.
    if let Some(retry_after_ms) = snap.retry_after_ms {
        if let Value::Object(map) = &mut value {
            map.insert("retry_after_ms".to_string(), Value::from(retry_after_ms));
        }
    }
    value
}

// ----------------------------------------------------------------- journal
//
// The journal persists *complete* snapshots — unlike the status answer
// above they carry the full request and the chosen PlanSpec, so a
// restarted daemon can serve terminal results without re-planning and
// re-admit the rest. `from(to(x)) == x` bit-for-bit: Money travels as
// nanodollar strings and f64s rely on Rust's shortest-round-trip float
// formatting (which the serde_json shim uses).

/// Encode a plan spec (journal records; not part of the status wire
/// format).
pub fn plan_spec_to_json(spec: &astra_core::PlanSpec) -> Value {
    let reduce_spec = match &spec.reduce_spec {
        astra_core::ReduceSpec::PerReducer(k) => json!({ "per_reducer": *k as u64 }),
        astra_core::ReduceSpec::ExplicitSteps(steps) => json!({
            "explicit_steps": Value::Array(steps.iter().map(|&s| Value::from(s as u64)).collect()),
        }),
    };
    json!({
        "mapper_mem_mb": spec.mapper_mem_mb,
        "coordinator_mem_mb": spec.coordinator_mem_mb,
        "reducer_mem_mb": spec.reducer_mem_mb,
        "objects_per_mapper": spec.objects_per_mapper as u64,
        "reduce_spec": reduce_spec,
    })
}

/// Decode a plan spec (strict).
pub fn plan_spec_from_json(value: &Value) -> Result<astra_core::PlanSpec, WireError> {
    const CTX: &str = "plan spec";
    let object = as_object(value, CTX)?;
    deny_unknown(
        object,
        CTX,
        &[
            "mapper_mem_mb",
            "coordinator_mem_mb",
            "reducer_mem_mb",
            "objects_per_mapper",
            "reduce_spec",
        ],
    )?;
    let mem = |field| -> Result<u32, WireError> {
        let raw = get_u64(object, CTX, field)?;
        u32::try_from(raw).map_err(|_| WireError::Invalid {
            context: CTX,
            message: format!("'{field}' {raw} out of range"),
        })
    };
    let reduce_value = object.get("reduce_spec").ok_or(WireError::MissingField {
        context: CTX,
        field: "reduce_spec",
    })?;
    const RCTX: &str = "reduce spec";
    let reduce_obj = as_object(reduce_value, RCTX)?;
    deny_unknown(reduce_obj, RCTX, &["per_reducer", "explicit_steps"])?;
    let reduce_spec = match (reduce_obj.get("per_reducer"), reduce_obj.get("explicit_steps")) {
        (Some(_), None) => {
            astra_core::ReduceSpec::PerReducer(get_u64(reduce_obj, RCTX, "per_reducer")? as usize)
        }
        (None, Some(steps)) => {
            let steps = steps
                .as_array()
                .ok_or(WireError::Invalid {
                    context: RCTX,
                    message: "'explicit_steps' must be an array".to_string(),
                })?
                .iter()
                .map(|v| {
                    v.as_u64().map(|n| n as usize).ok_or(WireError::Invalid {
                        context: RCTX,
                        message: "'explicit_steps' entries must be non-negative integers"
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<usize>, WireError>>()?;
            astra_core::ReduceSpec::ExplicitSteps(steps)
        }
        _ => {
            return Err(WireError::Invalid {
                context: RCTX,
                message: "give exactly one of 'per_reducer' or 'explicit_steps'".to_string(),
            })
        }
    };
    Ok(astra_core::PlanSpec {
        mapper_mem_mb: mem("mapper_mem_mb")?,
        coordinator_mem_mb: mem("coordinator_mem_mb")?,
        reducer_mem_mb: mem("reducer_mem_mb")?,
        objects_per_mapper: get_u64(object, CTX, "objects_per_mapper")? as usize,
        reduce_spec,
    })
}

fn money_from_nanos_str(
    object: &Map<String, Value>,
    context: &'static str,
    field: &'static str,
) -> Result<Money, WireError> {
    let text = object
        .get(field)
        .ok_or(WireError::MissingField { context, field })?
        .as_str()
        .ok_or(WireError::Invalid {
            context,
            message: format!("'{field}' must be a decimal string"),
        })?;
    Ok(Money::from_nanos(text.parse::<i128>().map_err(|e| {
        WireError::Invalid {
            context,
            message: format!("'{field}': {e}"),
        }
    })?))
}

/// Encode a full job snapshot for the journal (complete request, plan
/// spec, and `retry_after_ms` included).
pub fn snapshot_to_journal_json(snap: &JobSnapshot) -> Value {
    let history: Vec<Value> = snap
        .history
        .iter()
        .map(|&(status, at_ns)| json!({ "status": status.as_str(), "at_ns": at_ns }))
        .collect();
    let plan = match &snap.plan {
        None => Value::Null,
        Some(p) => json!({
            "spec": plan_spec_to_json(&p.spec),
            "predicted_jct_s": p.predicted_jct_s,
            "predicted_cost_nanos": p.predicted_cost.nanos().to_string(),
            "summary": p.summary.clone(),
        }),
    };
    let sim = match &snap.sim {
        None => Value::Null,
        Some(s) => json!({
            "jct_s": Value::Array(s.jct_s.iter().map(|&x| Value::from(x)).collect()),
            "cost_nanos": Value::Array(
                s.cost.iter().map(|c| Value::from(c.nanos().to_string())).collect()
            ),
            "events": Value::Array(s.events.iter().map(|&e| Value::from(e)).collect()),
        }),
    };
    json!({
        "id": snap.id,
        "request": job_request_to_json(&snap.request),
        "status": snap.status.as_str(),
        "history": Value::Array(history),
        "reason": snap.reason.clone().map(Value::from).unwrap_or(Value::Null),
        "plan": plan,
        "sim": sim,
        "metrics": {
            "queue_wait_ns": snap.metrics.queue_wait_ns,
            "plan_ns": snap.metrics.plan_ns,
            "sim_ns": snap.metrics.sim_ns,
            "total_ns": snap.metrics.total_ns,
        },
        "session_cache_hit": snap.session_cache_hit,
        "retry_after_ms": snap.retry_after_ms.map(Value::from).unwrap_or(Value::Null),
    })
}

/// Decode a journal snapshot (strict). The exact inverse of
/// [`snapshot_to_journal_json`].
pub fn snapshot_from_journal_json(value: &Value) -> Result<JobSnapshot, WireError> {
    const CTX: &str = "journal snapshot";
    let object = as_object(value, CTX)?;
    deny_unknown(
        object,
        CTX,
        &[
            "id",
            "request",
            "status",
            "history",
            "reason",
            "plan",
            "sim",
            "metrics",
            "session_cache_hit",
            "retry_after_ms",
        ],
    )?;
    let status_name = get_str(object, CTX, "status")?;
    let status = crate::types::JobStatus::parse(&status_name).ok_or(WireError::Invalid {
        context: CTX,
        message: format!("unknown status '{status_name}'"),
    })?;
    let history = object
        .get("history")
        .ok_or(WireError::MissingField {
            context: CTX,
            field: "history",
        })?
        .as_array()
        .ok_or(WireError::Invalid {
            context: CTX,
            message: "'history' must be an array".to_string(),
        })?
        .iter()
        .map(|entry| {
            const HCTX: &str = "history entry";
            let entry = as_object(entry, HCTX)?;
            deny_unknown(entry, HCTX, &["status", "at_ns"])?;
            let name = get_str(entry, HCTX, "status")?;
            let status = crate::types::JobStatus::parse(&name).ok_or(WireError::Invalid {
                context: HCTX,
                message: format!("unknown status '{name}'"),
            })?;
            Ok((status, get_u64(entry, HCTX, "at_ns")?))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let plan = match object.get("plan") {
        None | Some(Value::Null) => None,
        Some(value) => {
            const PCTX: &str = "plan outcome";
            let plan = as_object(value, PCTX)?;
            deny_unknown(
                plan,
                PCTX,
                &["spec", "predicted_jct_s", "predicted_cost_nanos", "summary"],
            )?;
            Some(crate::types::PlanOutcome {
                spec: plan_spec_from_json(plan.get("spec").ok_or(WireError::MissingField {
                    context: PCTX,
                    field: "spec",
                })?)?,
                predicted_jct_s: get_f64(plan, PCTX, "predicted_jct_s")?,
                predicted_cost: money_from_nanos_str(plan, PCTX, "predicted_cost_nanos")?,
                summary: get_str(plan, PCTX, "summary")?,
            })
        }
    };
    let sim = match object.get("sim") {
        None | Some(Value::Null) => None,
        Some(value) => {
            const SCTX: &str = "sim outcome";
            let sim = as_object(value, SCTX)?;
            deny_unknown(sim, SCTX, &["jct_s", "cost_nanos", "events"])?;
            let array = |field: &'static str| -> Result<&Vec<Value>, WireError> {
                sim.get(field)
                    .ok_or(WireError::MissingField {
                        context: SCTX,
                        field,
                    })?
                    .as_array()
                    .ok_or(WireError::Invalid {
                        context: SCTX,
                        message: format!("'{field}' must be an array"),
                    })
            };
            let jct_s = array("jct_s")?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or(WireError::Invalid {
                        context: SCTX,
                        message: "'jct_s' entries must be numbers".to_string(),
                    })
                })
                .collect::<Result<Vec<f64>, WireError>>()?;
            let cost = array("cost_nanos")?
                .iter()
                .map(|v| {
                    let text = v.as_str().ok_or(WireError::Invalid {
                        context: SCTX,
                        message: "'cost_nanos' entries must be decimal strings".to_string(),
                    })?;
                    Ok(Money::from_nanos(text.parse::<i128>().map_err(|e| {
                        WireError::Invalid {
                            context: SCTX,
                            message: format!("'cost_nanos': {e}"),
                        }
                    })?))
                })
                .collect::<Result<Vec<Money>, WireError>>()?;
            let events = array("events")?
                .iter()
                .map(|v| {
                    v.as_u64().ok_or(WireError::Invalid {
                        context: SCTX,
                        message: "'events' entries must be non-negative integers".to_string(),
                    })
                })
                .collect::<Result<Vec<u64>, WireError>>()?;
            Some(crate::types::SimOutcome {
                jct_s,
                cost,
                events,
            })
        }
    };
    const MCTX: &str = "metrics";
    let metrics_obj = as_object(
        object.get("metrics").ok_or(WireError::MissingField {
            context: CTX,
            field: "metrics",
        })?,
        MCTX,
    )?;
    deny_unknown(
        metrics_obj,
        MCTX,
        &["queue_wait_ns", "plan_ns", "sim_ns", "total_ns"],
    )?;
    let metrics = crate::types::JobMetrics {
        queue_wait_ns: get_u64(metrics_obj, MCTX, "queue_wait_ns")?,
        plan_ns: get_u64(metrics_obj, MCTX, "plan_ns")?,
        sim_ns: get_u64(metrics_obj, MCTX, "sim_ns")?,
        total_ns: get_u64(metrics_obj, MCTX, "total_ns")?,
    };
    let retry_after_ms = match object.get("retry_after_ms") {
        None | Some(Value::Null) => None,
        Some(_) => Some(get_u64(object, CTX, "retry_after_ms")?),
    };
    Ok(JobSnapshot {
        id: get_u64(object, CTX, "id")?,
        request: job_request_from_json(object.get("request").ok_or(WireError::MissingField {
            context: CTX,
            field: "request",
        })?)?,
        status,
        history,
        reason: match object.get("reason") {
            None | Some(Value::Null) => None,
            Some(_) => Some(get_str(object, CTX, "reason")?),
        },
        plan,
        sim,
        metrics,
        session_cache_hit: get_bool(object, CTX, "session_cache_hit")?,
        retry_after_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn request() -> JobRequest {
        JobRequest::new(
            "wire-test",
            JobSpec::uniform("wire-test", 6, 1.5, WorkloadProfile::uniform_test()),
            Objective::min_time_with_budget_dollars(2.5),
        )
        .with_tenant("acme")
        .with_sim(SimOptions {
            noise_cv: 0.2,
            seed: 9,
            replications: 4,
        })
    }

    #[test]
    fn request_round_trips() {
        let original = request();
        let text = serde_json::to_string(&job_request_to_json(&original)).unwrap();
        assert_eq!(job_request_from_str(&text).unwrap(), original);
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        for (path, expected) in [
            ("frobnicate", "request"),
            ("job.frobnicate", "job"),
            ("job.profile.frobnicate", "profile"),
            ("objective.frobnicate", "objective"),
            ("sim.frobnicate", "sim options"),
        ] {
            let mut value = job_request_to_json(&request());
            // Walk to the parent object and plant the unknown key.
            let mut target = &mut value;
            let parts: Vec<&str> = path.split('.').collect();
            for part in &parts[..parts.len() - 1] {
                let Value::Object(map) = target else { panic!() };
                target = map.get_mut(*part).unwrap();
            }
            let Value::Object(map) = target else { panic!() };
            map.insert(parts.last().unwrap().to_string(), Value::Bool(true));

            let err = job_request_from_json(&value).unwrap_err();
            match err {
                WireError::UnknownField { context, field } => {
                    assert_eq!(context, expected, "path {path}");
                    assert_eq!(field, "frobnicate");
                }
                other => panic!("expected UnknownField for {path}, got {other}"),
            }
        }
    }

    #[test]
    fn budget_travels_exactly() {
        // A nanodollar amount a float would mangle.
        let request = JobRequest::new(
            "exact",
            JobSpec::uniform("exact", 2, 1.0, WorkloadProfile::uniform_test()),
            Objective::MinimizeTime {
                budget: Money::from_nanos(1_000_000_000_000_000_001),
            },
        );
        let text = serde_json::to_string(&job_request_to_json(&request)).unwrap();
        assert_eq!(job_request_from_str(&text).unwrap().objective, request.objective);
    }

    #[test]
    fn dollars_convenience_accepted_but_not_both() {
        let mut value = job_request_to_json(&request());
        {
            let Value::Object(map) = &mut value else { panic!() };
            let Some(Value::Object(obj)) = map.get_mut("objective") else { panic!() };
            obj.insert("budget_dollars".to_string(), Value::from(2.5));
        }
        let err = job_request_from_json(&value).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");

        {
            let Value::Object(map) = &mut value else { panic!() };
            let Some(Value::Object(obj)) = map.get_mut("objective") else { panic!() };
            obj.remove("budget_nanos");
        }
        let parsed = job_request_from_json(&value).unwrap();
        assert_eq!(
            parsed.objective,
            Objective::min_time_with_budget_dollars(2.5)
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            job_request_from_str("{not json"),
            Err(WireError::Parse(_))
        ));
        assert!(matches!(
            job_request_from_str("[]"),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            job_request_from_str("{}"),
            Err(WireError::MissingField { .. })
        ));
    }
}
