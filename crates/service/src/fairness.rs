//! Multi-tenant fairness: per-tenant submission lanes dispatched by
//! deficit round-robin (DRR), each gated by a per-tenant admission
//! envelope.
//!
//! PR 5's scheduler was one FIFO queue: a tenant flooding the daemon
//! with a thousand submissions put every other tenant's jobs behind all
//! of them. This module gives every tenant its own *lane* (a FIFO queue
//! keyed by the request's `tenant` field) and replaces global FIFO
//! dispatch with DRR over the lanes:
//!
//! * each lane carries a **deficit counter** denominated in planned-cost
//!   nanodollars;
//! * when the round-robin cursor reaches a lane, the lane earns one
//!   [`FairnessConfig::quantum`] of credit, then dispatches queue-head
//!   jobs while its deficit covers their claims;
//! * when the head's claim exceeds the deficit, the cursor moves on and
//!   the lane keeps its credit — over R rounds every backlogged lane
//!   receives R·quantum of dispatch credit, so long-run dispatch *cost
//!   rate* is equal across tenants regardless of how many requests each
//!   one queues.
//!
//! A flooding tenant therefore defers only itself: other lanes are
//! visited every round, and a quiet tenant's job waits for at most a
//! quantum's worth of each other lane's work, never the flood's whole
//! backlog. Within a lane, order is strictly FIFO.
//!
//! ## Per-tenant envelopes
//!
//! Each lane also enforces a [`TenantEnvelope`] — a concurrency cap and
//! a planned-cost budget share, the per-tenant twin of the global
//! [`Envelope`](crate::admission::Envelope). The reject-vs-defer line
//! drawn by [`crate::admission`] is preserved exactly:
//!
//! * **Reject** stays *state-independent*: a claim larger than the
//!   tenant's whole budget share (or a tenant whose envelope admits no
//!   jobs at all) is refused at submit time, before anything queues —
//!   the verdict depends only on the request and the configuration.
//! * **Defer** stays *state-dependent and latency-only*: a lane whose
//!   head would overflow the tenant's envelope is skipped (earning no
//!   credit) until that tenant's own completions make room. Other
//!   lanes are unaffected.
//!
//! The *global* envelope keeps its head-gate discipline, applied to the
//! DRR-chosen head instead of the FIFO head: once DRR selects a job and
//! the global envelope defers it, no other lane may overtake it — the
//! selection is sticky until capacity frees up, so a large admissible
//! job is never starved by a stream of small ones.
//!
//! `tests/service_net.rs` property-checks the lot: per-tenant claims
//! never exceed the tenant envelope, lanes drain in FIFO order, and no
//! lane is starved under adversarial claim mixes.

use std::collections::HashMap;
use std::sync::Arc;

use astra_pricing::Money;
use astra_telemetry::Telemetry;

use crate::admission::{Admission, AdmissionController};
use crate::types::JobId;

/// The per-tenant resource envelope: how much of the daemon one tenant
/// may occupy at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantEnvelope {
    /// Maximum jobs from this tenant holding admission at once.
    pub max_in_flight: usize,
    /// Total planned cost this tenant's in-flight set may claim.
    pub budget: Money,
}

impl TenantEnvelope {
    /// An envelope that never constrains the tenant (the global
    /// envelope still applies).
    pub fn unbounded() -> Self {
        TenantEnvelope {
            max_in_flight: usize::MAX,
            // Same headroom convention as Envelope::unbounded().
            budget: Money::from_nanos(i128::MAX / 2),
        }
    }
}

impl Default for TenantEnvelope {
    fn default() -> Self {
        TenantEnvelope::unbounded()
    }
}

/// Fairness configuration for the scheduler: the DRR quantum plus the
/// per-tenant envelopes.
#[derive(Debug, Clone)]
pub struct FairnessConfig {
    /// Planned-cost credit a lane earns each time the DRR cursor visits
    /// it. Larger quanta approach per-job round-robin; smaller quanta
    /// approximate cost-proportional sharing more finely. Must be
    /// positive.
    pub quantum: Money,
    /// Envelope applied to tenants with no explicit entry.
    pub default_envelope: TenantEnvelope,
    /// Per-tenant envelope overrides, keyed by the request's `tenant`
    /// field (the empty string is the anonymous tenant).
    pub tenant_envelopes: HashMap<String, TenantEnvelope>,
}

impl FairnessConfig {
    /// Override the DRR quantum.
    pub fn with_quantum(mut self, quantum: Money) -> Self {
        assert!(quantum > Money::ZERO, "DRR quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Set one tenant's envelope.
    pub fn with_tenant_envelope(
        mut self,
        tenant: impl Into<String>,
        envelope: TenantEnvelope,
    ) -> Self {
        self.tenant_envelopes.insert(tenant.into(), envelope);
        self
    }

    /// Override the envelope used by tenants without an explicit entry.
    pub fn with_default_envelope(mut self, envelope: TenantEnvelope) -> Self {
        self.default_envelope = envelope;
        self
    }

    /// The envelope in force for `tenant`.
    pub fn envelope_for(&self, tenant: &str) -> TenantEnvelope {
        self.tenant_envelopes
            .get(tenant)
            .copied()
            .unwrap_or(self.default_envelope)
    }
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            // One cent of planned cost per visit. Each backlogged lane
            // earns exactly this much dispatch credit per round, so a
            // lane of sub-cent jobs bursts several per visit while a
            // lane of pricier jobs accrues across rounds — equal cost
            // rate either way. Tune it toward the deployment's typical
            // claim to trade per-job interleaving against round count.
            quantum: Money::from_dollars_f64(0.01),
            default_envelope: TenantEnvelope::unbounded(),
            tenant_envelopes: HashMap::new(),
        }
    }
}

/// A queued dispatch unit: the job, the tenant lane it belongs to, and
/// the admission claim its planned cost debits while it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// The job to run.
    pub id: JobId,
    /// Planned-cost claim held until released on completion.
    pub claim: Money,
    /// The tenant lane this job queued in ("" = anonymous).
    pub tenant: Arc<str>,
    /// Wall-clock enqueue stamp (the scheduler's head-of-line age
    /// signal for overload shedding).
    pub enqueued_ns: u64,
}

/// Point-in-time occupancy of one tenant's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Jobs waiting in this tenant's lane.
    pub queued: usize,
    /// Jobs from this tenant currently holding admission.
    pub in_flight: usize,
    /// Planned cost currently claimed by this tenant's in-flight jobs.
    pub claimed: Money,
}

struct Lane {
    queue: std::collections::VecDeque<QueuedJob>,
    /// DRR credit, in nanodollars of planned cost.
    deficit: Money,
    in_flight: usize,
    claimed: Money,
    envelope: TenantEnvelope,
}

impl Lane {
    /// Would this lane's envelope admit `claim` right now?
    fn admits(&self, claim: Money) -> bool {
        self.in_flight < self.envelope.max_in_flight
            && self.claimed + claim <= self.envelope.budget
    }
}

/// The outcome of one dispatch attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dispatch {
    /// A job was selected and its claims (global and tenant) debited.
    Job(QueuedJob),
    /// Nothing can dispatch right now: every non-empty lane is deferred
    /// by its tenant envelope, or the DRR-chosen head is head-gated on
    /// the global envelope. Retry after a release or a submission.
    Blocked,
}

/// The DRR lane set. Not internally synchronized — the scheduler holds
/// it under its own lock, exactly like [`AdmissionController`].
pub struct DrrLanes {
    config: FairnessConfig,
    lanes: Vec<Lane>,
    index: HashMap<Arc<str>, usize>,
    /// Round-robin cursor into `lanes`.
    cursor: usize,
    /// Whether the lane under the cursor already earned its quantum for
    /// the current visit (so a burst of dispatches from one visit never
    /// double-credits).
    granted_at_cursor: bool,
    /// Lane whose head the global envelope deferred: while set, only
    /// that head may dispatch (no overtaking — the no-starvation
    /// guarantee of PR 5's FIFO head gate, transplanted to DRR).
    gate: Option<usize>,
    queued: usize,
    telemetry: Telemetry,
}

impl DrrLanes {
    /// An empty lane set under `config`.
    pub fn new(config: FairnessConfig, telemetry: Telemetry) -> Self {
        assert!(config.quantum > Money::ZERO, "DRR quantum must be positive");
        DrrLanes {
            config,
            lanes: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            granted_at_cursor: false,
            gate: None,
            queued: 0,
            telemetry,
        }
    }

    /// Total jobs waiting across all lanes.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Number of lanes ever created (lanes persist once a tenant has
    /// submitted).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The earliest enqueue stamp among all lane heads — the oldest
    /// head-of-line job's age drives overload shedding. `None` when
    /// nothing is queued. Only heads matter: within a lane order is
    /// FIFO, so the head is the oldest job in it.
    pub fn oldest_enqueued_ns(&self) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.queue.front().map(|job| job.enqueued_ns))
            .min()
    }

    /// Occupancy of `tenant`'s lane, if that tenant has ever submitted.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.index.get(tenant).map(|&i| {
            let lane = &self.lanes[i];
            TenantStats {
                queued: lane.queue.len(),
                in_flight: lane.in_flight,
                claimed: lane.claimed,
            }
        })
    }

    /// State-independent per-tenant feasibility: could this claim ever
    /// be admitted under `tenant`'s envelope, regardless of occupancy?
    /// `Err` carries the rejection reason. The global-envelope twin is
    /// [`AdmissionController::feasible`].
    pub fn feasible(&self, tenant: &str, claim: Money) -> Result<(), String> {
        let envelope = self.config.envelope_for(tenant);
        if envelope.max_in_flight == 0 {
            return Err(format!(
                "tenant '{tenant}' envelope admits no jobs (max_in_flight = 0)"
            ));
        }
        if claim > envelope.budget {
            return Err(format!(
                "planned cost {} exceeds tenant '{}' budget share {}",
                claim, tenant, envelope.budget
            ));
        }
        Ok(())
    }

    fn lane_for(&mut self, tenant: &str) -> usize {
        if let Some(&i) = self.index.get(tenant) {
            return i;
        }
        let tenant: Arc<str> = Arc::from(tenant);
        let envelope = self.config.envelope_for(&tenant);
        self.lanes.push(Lane {
            queue: std::collections::VecDeque::new(),
            deficit: Money::ZERO,
            in_flight: 0,
            claimed: Money::ZERO,
            envelope,
        });
        let i = self.lanes.len() - 1;
        self.index.insert(tenant, i);
        self.telemetry
            .gauge("service.tenant.lanes", self.lanes.len() as f64);
        i
    }

    /// Append a job to its tenant's lane (creating the lane on first
    /// sight of the tenant). The caller has already checked
    /// [`DrrLanes::feasible`] and the queue bound.
    pub fn enqueue(&mut self, job: QueuedJob) {
        let i = self.lane_for(&job.tenant);
        self.lanes[i].queue.push_back(job);
        self.queued += 1;
    }

    /// Debit the dispatch of lane `i`'s head out of its deficit and its
    /// tenant envelope, and hand the job out.
    fn pop_dispatch(&mut self, i: usize) -> Dispatch {
        let lane = &mut self.lanes[i];
        let job = lane.queue.pop_front().expect("dispatch from empty lane");
        lane.deficit -= job.claim;
        lane.in_flight += 1;
        lane.claimed += job.claim;
        if lane.queue.is_empty() {
            // Classic DRR: an emptied lane forfeits leftover credit, so
            // idle tenants cannot bank a burst.
            lane.deficit = Money::ZERO;
        }
        self.queued -= 1;
        self.telemetry.counter("service.tenant.dispatched", 1);
        Dispatch::Job(job)
    }

    /// Advance the cursor one lane, resetting the per-visit grant.
    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.lanes.len().max(1);
        self.granted_at_cursor = false;
    }

    /// One DRR dispatch attempt against the shared `global` controller.
    ///
    /// Runs rounds of the cursor until a head dispatches, the chosen
    /// head is globally head-gated, or every non-empty lane is deferred
    /// by its tenant envelope — the two latter cases return
    /// [`Dispatch::Blocked`] and the caller waits for a release.
    pub fn try_dispatch(&mut self, global: &mut AdmissionController) -> Dispatch {
        if self.queued == 0 {
            return Dispatch::Blocked;
        }
        // A gated head bypasses lane scanning entirely: it was already
        // selected and credited, and nothing may overtake it.
        if let Some(i) = self.gate {
            let claim = self.lanes[i].queue.front().expect("gated empty lane").claim;
            return match global.admit(claim) {
                Admission::Admit => {
                    self.gate = None;
                    self.pop_dispatch(i)
                }
                Admission::Defer => Dispatch::Blocked,
                Admission::Reject(reason) => {
                    unreachable!("infeasible claim reached the gate: {reason}")
                }
            };
        }
        loop {
            // One full round of the cursor. Tracks whether any lane was
            // blocked only by an insufficient deficit — those earn
            // credit every round, so looping terminates (the deficit
            // reaches the head claim in at most claim/quantum rounds).
            let mut deficit_blocked = false;
            let mut visited = 0;
            let n = self.lanes.len();
            while visited < n {
                let lane = &mut self.lanes[self.cursor];
                let Some(head) = lane.queue.front() else {
                    lane.deficit = Money::ZERO;
                    self.advance();
                    visited += 1;
                    continue;
                };
                let claim = head.claim;
                if !lane.admits(claim) {
                    // Tenant-envelope deferral: the lane defers itself
                    // and earns no credit while it cannot run.
                    self.telemetry.counter("service.tenant.lane_skips", 1);
                    self.advance();
                    visited += 1;
                    continue;
                }
                if !self.granted_at_cursor {
                    lane.deficit += self.config.quantum;
                    self.granted_at_cursor = true;
                }
                if claim <= self.lanes[self.cursor].deficit {
                    match global.admit(claim) {
                        Admission::Admit => {
                            // Cursor stays put: the lane may keep
                            // dispatching on the next call until its
                            // deficit runs dry (the DRR burst), but the
                            // per-visit grant is already spent.
                            return self.pop_dispatch(self.cursor);
                        }
                        Admission::Defer => {
                            self.gate = Some(self.cursor);
                            self.telemetry.counter("service.tenant.gate_waits", 1);
                            return Dispatch::Blocked;
                        }
                        Admission::Reject(reason) => {
                            unreachable!("infeasible claim reached a lane: {reason}")
                        }
                    }
                }
                deficit_blocked = true;
                self.advance();
                visited += 1;
            }
            if !deficit_blocked {
                // Every non-empty lane is tenant-deferred; only a
                // release can change that.
                return Dispatch::Blocked;
            }
            self.telemetry.counter("service.tenant.rounds", 1);
        }
    }

    /// Release a dispatched job's tenant-envelope claim. The caller
    /// releases the global claim separately.
    ///
    /// # Panics
    /// If the tenant has nothing in flight — releases must pair with
    /// dispatches.
    pub fn release(&mut self, tenant: &str, claim: Money) {
        let &i = self
            .index
            .get(tenant)
            .expect("release for a tenant that never dispatched");
        let lane = &mut self.lanes[i];
        assert!(lane.in_flight > 0, "tenant release without a dispatch");
        lane.in_flight -= 1;
        lane.claimed -= claim;
        assert!(
            lane.claimed >= Money::ZERO,
            "tenant released more budget than claimed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Envelope;

    fn dollars(d: f64) -> Money {
        Money::from_dollars_f64(d)
    }

    fn job(id: JobId, tenant: &str, claim: f64) -> QueuedJob {
        QueuedJob {
            id,
            claim: dollars(claim),
            tenant: Arc::from(tenant),
            enqueued_ns: id,
        }
    }

    fn lanes(config: FairnessConfig) -> (DrrLanes, AdmissionController) {
        (
            DrrLanes::new(config, Telemetry::disabled()),
            AdmissionController::new(Envelope::unbounded()),
        )
    }

    /// Drain everything, returning dispatch order; releases immediately.
    fn drain(drr: &mut DrrLanes, global: &mut AdmissionController) -> Vec<JobId> {
        let mut order = Vec::new();
        while let Dispatch::Job(j) = drr.try_dispatch(global) {
            order.push(j.id);
            global.release(j.claim);
            drr.release(&j.tenant, j.claim);
        }
        order
    }

    #[test]
    fn single_tenant_is_fifo() {
        let (mut drr, mut global) = lanes(FairnessConfig::default());
        for id in 0..5 {
            drr.enqueue(job(id, "", 0.001));
        }
        assert_eq!(drain(&mut drr, &mut global), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn flooding_tenant_defers_only_itself() {
        // Tenant "flood" queues 6 jobs before "quiet" queues 2; with
        // equal claims and a quantum covering one job, DRR alternates
        // lanes instead of draining the flood first.
        let (mut drr, mut global) = lanes(FairnessConfig::default());
        for id in 0..6 {
            drr.enqueue(job(id, "flood", 0.005));
        }
        drr.enqueue(job(100, "quiet", 0.005));
        drr.enqueue(job(101, "quiet", 0.005));
        let order = drain(&mut drr, &mut global);
        let quiet_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, &id)| id >= 100)
            .map(|(pos, _)| pos)
            .collect();
        assert!(
            quiet_positions[1] <= 3,
            "quiet tenant finished at {quiet_positions:?} of {order:?}"
        );
        // Within each lane, FIFO order held.
        let flood: Vec<JobId> = order.iter().copied().filter(|&id| id < 100).collect();
        assert_eq!(flood, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn deficit_accrues_until_a_large_job_fits() {
        // A head costing 3 quanta accrues credit over 3 rounds while
        // the cheap lane spends one quantum (5 jobs) per round: the big
        // job dispatches 11th of 41, neither first (cost fairness held
        // it back) nor starved behind the whole cheap backlog.
        let config = FairnessConfig::default().with_quantum(dollars(0.01));
        let (mut drr, mut global) = lanes(config);
        drr.enqueue(job(0, "big", 0.03));
        for id in 1..41 {
            drr.enqueue(job(id, "small", 0.002));
        }
        let order = drain(&mut drr, &mut global);
        let big_pos = order.iter().position(|&id| id == 0).unwrap();
        assert!(
            (5..=12).contains(&big_pos),
            "big job at {big_pos} of {}: {order:?}",
            order.len()
        );
    }

    #[test]
    fn tenant_envelope_defers_only_that_tenant() {
        let config = FairnessConfig::default().with_tenant_envelope(
            "capped",
            TenantEnvelope {
                max_in_flight: 1,
                budget: dollars(10.0),
            },
        );
        let (mut drr, mut global) = lanes(config);
        drr.enqueue(job(0, "capped", 0.001));
        drr.enqueue(job(1, "capped", 0.001));
        drr.enqueue(job(2, "free", 0.001));

        // First capped job dispatches and holds its slot.
        let Dispatch::Job(first) = drr.try_dispatch(&mut global) else {
            panic!("expected a dispatch");
        };
        assert_eq!(first.id, 0);
        // Second capped job is deferred, but "free" still dispatches.
        let Dispatch::Job(second) = drr.try_dispatch(&mut global) else {
            panic!("capped tenant blocked an unrelated lane");
        };
        assert_eq!(second.id, 2);
        // Nothing else can run until the capped slot frees.
        assert_eq!(drr.try_dispatch(&mut global), Dispatch::Blocked);
        global.release(first.claim);
        drr.release("capped", first.claim);
        let Dispatch::Job(third) = drr.try_dispatch(&mut global) else {
            panic!("released slot not re-used");
        };
        assert_eq!(third.id, 1);
        let stats = drr.tenant_stats("capped").unwrap();
        assert_eq!((stats.queued, stats.in_flight), (0, 1));
    }

    #[test]
    fn tenant_budget_share_rejects_oversized_claims_statelessly() {
        let config = FairnessConfig::default().with_tenant_envelope(
            "metered",
            TenantEnvelope {
                max_in_flight: 8,
                budget: dollars(1.0),
            },
        );
        let (drr, _) = lanes(config);
        assert!(drr.feasible("metered", dollars(0.5)).is_ok());
        let reason = drr.feasible("metered", dollars(1.5)).unwrap_err();
        assert!(reason.contains("budget share"), "{reason}");
        assert!(drr.feasible("other", dollars(1.5)).is_ok());
    }

    #[test]
    fn global_gate_prevents_overtaking() {
        // Global envelope: one slot. Lane "a" head dispatches; lane "b"
        // head becomes the gated candidate; a later cheap job in lane
        // "c" must NOT overtake it when the slot frees.
        let mut drr = DrrLanes::new(FairnessConfig::default(), Telemetry::disabled());
        let mut global = AdmissionController::new(Envelope {
            max_in_flight: 1,
            budget: dollars(100.0),
        });
        drr.enqueue(job(0, "a", 0.005));
        drr.enqueue(job(1, "b", 0.005));
        let Dispatch::Job(first) = drr.try_dispatch(&mut global) else {
            panic!()
        };
        assert_eq!(first.id, 0);
        assert_eq!(drr.try_dispatch(&mut global), Dispatch::Blocked);
        drr.enqueue(job(2, "c", 0.001));
        assert_eq!(drr.try_dispatch(&mut global), Dispatch::Blocked);
        global.release(first.claim);
        drr.release("a", first.claim);
        let Dispatch::Job(second) = drr.try_dispatch(&mut global) else {
            panic!()
        };
        assert_eq!(second.id, 1, "gated head was overtaken");
    }

    #[test]
    fn empty_lane_forfeits_credit() {
        let config = FairnessConfig::default().with_quantum(dollars(0.01));
        let (mut drr, mut global) = lanes(config);
        drr.enqueue(job(0, "bursty", 0.001));
        assert!(matches!(drr.try_dispatch(&mut global), Dispatch::Job(_)));
        global.release(dollars(0.001));
        drr.release("bursty", dollars(0.001));
        // The lane emptied; its banked credit is gone, so a fresh big
        // job must accrue from zero (three rounds of one quantum), not
        // dispatch instantly off stale credit.
        drr.enqueue(job(1, "bursty", 0.03));
        drr.enqueue(job(2, "steady", 0.001));
        let order = drain(&mut drr, &mut global);
        assert_eq!(order[0], 2, "stale credit let the burst overtake: {order:?}");
    }

    #[test]
    #[should_panic(expected = "tenant release without a dispatch")]
    fn unmatched_tenant_release_panics() {
        let (mut drr, _) = lanes(FairnessConfig::default());
        drr.enqueue(job(0, "t", 0.001));
        drr.release("t", dollars(0.001));
    }
}
