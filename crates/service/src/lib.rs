#![warn(missing_docs)]

//! Planner-as-a-service: a long-running, in-process job-submission
//! daemon over the Astra planner and simulator.
//!
//! The planner core answers one constrained question about one job very
//! fast; this crate turns that library call into a *service* that
//! accepts many jobs from many tenants and tracks each one through an
//! explicit lifecycle:
//!
//! ```text
//! Accepted ──► Planned ──► Simulating ──► Done
//!    │            │             │
//!    └► Rejected  └──► Done     └──► Failed      (Planned→Done when the
//!    └► Failed    └──► Failed                     request asks plan-only)
//! ```
//!
//! The moving parts, one module each:
//!
//! * [`types`] — serde-style [`JobRequest`] / [`JobStatus`] /
//!   [`JobSnapshot`] spec and status types (the wire-format twins live
//!   in [`wire`]);
//! * [`wire`] — strict JSON encode/decode over the `serde_json` shim:
//!   unknown fields and invalid specs are rejected with a reason, which
//!   the daemon maps onto the `Rejected` terminal state;
//! * [`admission`] — shared concurrency/budget envelopes: every admitted
//!   job debits its planned cost from the envelope, so the sum of
//!   admitted claims never exceeds it, and FIFO ordering guarantees an
//!   admissible job is never starved;
//! * [`cache`] — a bounded LRU of [`PlannerSession`]s keyed by
//!   `(job, space, platform, prices)`, shared by admission planning and
//!   the worker pool (`service.cache.*` telemetry counts reuse);
//! * [`fairness`] — per-tenant submission lanes with deficit-round-robin
//!   dispatch and per-tenant envelopes, so one tenant flooding the
//!   queue defers only itself;
//! * [`scheduler`] — the bounded submission queue plus the
//!   envelope-gated DRR dispatch the workers pull from;
//! * [`daemon`] — the worker pool itself, the job table, and the
//!   synchronous client handle (`submit` / `status` / `await_done` /
//!   `frontier`);
//! * [`journal`] — the durable, checksummed append-only job log a
//!   daemon replays on restart, recovering terminal results verbatim
//!   and re-admitting mid-flight jobs;
//! * [`faults`] — seeded, deterministic fault injection (worker
//!   panics and crashes, cache-build failures, connection resets and
//!   short writes) for the chaos suite;
//! * [`net`] — the std-TCP line-protocol server and client speaking the
//!   newline-delimited JSON protocol specified in `PROTOCOL.md`, with
//!   idle timeouts, overload answers, and backoff reconnects.
//!
//! ## Determinism contract
//!
//! Every per-job result the service reports — the chosen [`PlanSpec`],
//! predicted JCT/cost, and each simulated replication's JCT/cost — is a
//! pure function of the [`JobRequest`] and the daemon's planner
//! configuration. Worker-pool size, `RAYON_NUM_THREADS`, queue timing
//! and admission deferrals change *latency* only, never a result bit:
//! `tests/service_determinism.rs` pins service output against direct
//! `Astra` library calls at 1/2/8 threads and several pool sizes.
//!
//! [`PlannerSession`]: astra_core::PlannerSession
//! [`PlanSpec`]: astra_core::PlanSpec
//! [`JobRequest`]: types::JobRequest
//! [`JobStatus`]: types::JobStatus
//! [`JobSnapshot`]: types::JobSnapshot

pub mod admission;
pub mod cache;
pub mod daemon;
pub mod fairness;
pub mod faults;
pub mod journal;
pub mod net;
pub mod scheduler;
pub mod types;
pub mod wire;

pub use admission::{Admission, AdmissionController, Envelope};
pub use cache::{CacheLookup, SessionCache, SessionCacheStats, SessionKey};
pub use daemon::{ServiceConfig, ServiceDaemon, ServiceHandle};
pub use fairness::{FairnessConfig, TenantEnvelope, TenantStats};
pub use faults::{FaultAction, FaultPlan, FaultRule, FaultSite};
pub use journal::{Journal, JournalRecovery, RecoveredJob};
pub use net::{BackoffPolicy, NetClient, NetConfig, NetServer};
pub use scheduler::{OverloadConfig, SubmitError};
pub use types::{
    FrontierPoint, JobId, JobMetrics, JobRequest, JobSnapshot, JobStatus, PlanOutcome, SimOptions,
    SimOutcome,
};
pub use wire::WireError;
