//! The bounded submission queue and the envelope-gated dispatch that
//! the worker pool pulls from.
//!
//! One mutex guards the whole scheduler state (tenant lanes + global
//! admission occupancy); one condvar wakes workers when either changes.
//! Since PR 8 the dispatch discipline is **deficit round-robin over
//! per-tenant lanes** ([`crate::fairness`]) instead of one global FIFO:
//! jobs queue in their tenant's lane, lanes are served round-robin with
//! planned-cost credit, and each lane additionally respects its
//! tenant's own concurrency/budget envelope. The properties the service
//! promises are preserved:
//!
//! * **no starvation** — every lane is visited each round and accrues
//!   credit until its head fits, and the DRR-chosen head keeps PR 5's
//!   head gate against the *global* envelope (nothing overtakes it
//!   while it waits for capacity), so every admissible job is
//!   eventually dispatched;
//! * **determinism of results** — per-job results depend only on the
//!   request and the daemon's planner configuration. Dispatch *order*
//!   is now a fairness decision rather than submission order, but order
//!   (like worker count and timing) only ever affects latency.
//!
//! Submission failures (queue full, globally or per-tenant infeasible
//! claim, shutting down) are returned to the submitter as reasons; the
//! daemon maps them onto the `Rejected` terminal state. All of them are
//! independent of what is currently running — reject stays
//! state-independent, deferral stays latency-only.

use std::sync::{Condvar, Mutex};

use astra_pricing::Money;
use astra_telemetry::Telemetry;

use crate::admission::{AdmissionController, Envelope};
use crate::fairness::{Dispatch, DrrLanes, FairnessConfig, TenantStats};
use crate::types::JobId;

pub use crate::fairness::QueuedJob;

struct SchedState {
    lanes: DrrLanes,
    admission: AdmissionController,
    closed: bool,
}

/// The submission queue + admission gate (see module docs).
pub struct Scheduler {
    state: Mutex<SchedState>,
    wakeup: Condvar,
    capacity: usize,
}

impl Scheduler {
    /// A scheduler with a bounded queue, a fresh global envelope, and
    /// DRR tenant lanes under `fairness`.
    pub fn new(
        queue_capacity: usize,
        envelope: Envelope,
        fairness: FairnessConfig,
        telemetry: Telemetry,
    ) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                lanes: DrrLanes::new(fairness, telemetry),
                admission: AdmissionController::new(envelope),
                closed: false,
            }),
            wakeup: Condvar::new(),
            capacity: queue_capacity,
        }
    }

    /// Enqueue a job in its tenant's lane. `Err` carries the rejection
    /// reason: the queue is full, the claim can never fit the global
    /// envelope or the tenant's budget share, or the scheduler is
    /// shutting down. All checks are independent of what is currently
    /// running, so the verdict is deterministic in submission order.
    pub fn submit(&self, id: JobId, tenant: &str, claim: Money) -> Result<(), String> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err("service is shutting down".to_string());
        }
        state.admission.feasible(claim)?;
        state.lanes.feasible(tenant, claim)?;
        if state.lanes.queued() >= self.capacity {
            return Err(format!(
                "submission queue is full ({} pending)",
                self.capacity
            ));
        }
        state.lanes.enqueue(QueuedJob {
            id,
            claim,
            tenant: tenant.into(),
        });
        self.wakeup.notify_all();
        Ok(())
    }

    /// Block until DRR selects an admissible job, then dispatch it (its
    /// global and tenant claims debited). Returns `None` once the
    /// scheduler is closed and every lane has drained — the worker's
    /// signal to exit.
    pub fn next(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            let SchedState {
                lanes, admission, ..
            } = &mut *state;
            match lanes.try_dispatch(admission) {
                Dispatch::Job(job) => return Some(job),
                Dispatch::Blocked => {
                    if state.closed && state.lanes.queued() == 0 {
                        return None;
                    }
                }
            }
            state = self.wakeup.wait(state).unwrap();
        }
    }

    /// Release a dispatched job's global and tenant claims and wake
    /// deferred workers.
    pub fn complete(&self, job: &QueuedJob) {
        let mut state = self.state.lock().unwrap();
        state.admission.release(job.claim);
        state.lanes.release(&job.tenant, job.claim);
        self.wakeup.notify_all();
    }

    /// Refuse new submissions; queued jobs still drain. Workers exit
    /// from [`Scheduler::next`] once the lanes are empty.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.wakeup.notify_all();
    }

    /// Jobs waiting across all lanes right now.
    pub fn queue_len(&self) -> usize {
        self.state.lock().unwrap().lanes.queued()
    }

    /// Jobs currently holding global admission.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().admission.in_flight()
    }

    /// The global envelope being enforced.
    pub fn envelope(&self) -> Envelope {
        self.state.lock().unwrap().admission.envelope()
    }

    /// Occupancy of one tenant's lane (`None` if the tenant has never
    /// submitted).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.state.lock().unwrap().lanes.tenant_stats(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::TenantEnvelope;
    use std::sync::Arc;

    fn dollars(d: f64) -> Money {
        Money::from_dollars_f64(d)
    }

    fn sched(capacity: usize, envelope: Envelope) -> Scheduler {
        Scheduler::new(
            capacity,
            envelope,
            FairnessConfig::default(),
            Telemetry::disabled(),
        )
    }

    #[test]
    fn single_tenant_dispatch_is_fifo() {
        let sched = sched(8, Envelope::unbounded());
        for id in 0..5 {
            sched.submit(id, "t", dollars(0.1)).unwrap();
        }
        sched.close();
        let mut order = Vec::new();
        while let Some(job) = sched.next() {
            order.push(job.id);
            sched.complete(&job);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_reason() {
        let sched = sched(2, Envelope::unbounded());
        sched.submit(0, "a", Money::ZERO).unwrap();
        sched.submit(1, "b", Money::ZERO).unwrap();
        let reason = sched.submit(2, "c", Money::ZERO).unwrap_err();
        assert!(reason.contains("queue is full"), "{reason}");
    }

    #[test]
    fn infeasible_claim_rejected_at_submit() {
        let sched = sched(
            8,
            Envelope {
                max_in_flight: 4,
                budget: dollars(1.0),
            },
        );
        let reason = sched.submit(0, "t", dollars(2.0)).unwrap_err();
        assert!(reason.contains("exceeds"), "{reason}");
        assert_eq!(sched.queue_len(), 0);
    }

    #[test]
    fn tenant_infeasible_claim_rejected_at_submit() {
        let sched = Scheduler::new(
            8,
            Envelope::unbounded(),
            FairnessConfig::default().with_tenant_envelope(
                "metered",
                TenantEnvelope {
                    max_in_flight: 4,
                    budget: dollars(1.0),
                },
            ),
            Telemetry::disabled(),
        );
        let reason = sched.submit(0, "metered", dollars(2.0)).unwrap_err();
        assert!(reason.contains("budget share"), "{reason}");
        // Another tenant with the same claim is fine.
        sched.submit(1, "other", dollars(2.0)).unwrap();
    }

    #[test]
    fn closed_scheduler_rejects_submissions_but_drains() {
        let sched = sched(8, Envelope::unbounded());
        sched.submit(0, "t", Money::ZERO).unwrap();
        sched.close();
        assert!(sched
            .submit(1, "t", Money::ZERO)
            .unwrap_err()
            .contains("shutting down"));
        let job = sched.next().unwrap();
        assert_eq!(job.id, 0);
        sched.complete(&job);
        assert!(sched.next().is_none());
    }

    #[test]
    fn deferred_candidate_blocks_until_release() {
        let sched = Arc::new(sched(
            8,
            Envelope {
                max_in_flight: 1,
                budget: dollars(10.0),
            },
        ));
        sched.submit(0, "t", dollars(1.0)).unwrap();
        sched.submit(1, "t", dollars(1.0)).unwrap();

        let first = sched.next().unwrap();
        assert_eq!(first.id, 0);

        // Job 1 is head-gated on the single slot; a worker thread
        // blocks in next() until job 0 completes.
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next().map(|j| j.id))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !worker.is_finished(),
            "candidate must be deferred while the slot is held"
        );

        sched.complete(&first);
        assert_eq!(worker.join().unwrap(), Some(1));
    }

    #[test]
    fn two_tenants_interleave() {
        // Quantum = one claim, so DRR serves one job per lane per round.
        let sched = Scheduler::new(
            16,
            Envelope::unbounded(),
            FairnessConfig::default().with_quantum(dollars(0.001)),
            Telemetry::disabled(),
        );
        for id in 0..4 {
            sched.submit(id, "flood", dollars(0.001)).unwrap();
        }
        for id in 10..12 {
            sched.submit(id, "quiet", dollars(0.001)).unwrap();
        }
        sched.close();
        let mut order = Vec::new();
        while let Some(job) = sched.next() {
            order.push(job.id);
            sched.complete(&job);
        }
        let quiet_done = order.iter().position(|&id| id == 11).unwrap();
        assert!(
            quiet_done <= 3,
            "quiet tenant waited behind the flood: {order:?}"
        );
        assert_eq!(sched.tenant_stats("flood").unwrap().queued, 0);
    }
}
