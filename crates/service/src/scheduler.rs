//! The bounded submission queue and the envelope-gated FIFO dispatch
//! that the worker pool pulls from.
//!
//! One mutex guards the whole scheduler state (queue + admission
//! occupancy); one condvar wakes workers when either changes. The
//! discipline is strict FIFO with *head gating*: workers only ever
//! dispatch the queue head, and a head whose claim the envelope defers
//! blocks every job behind it until capacity frees up. That costs some
//! utilization versus letting small jobs overtake, but it buys the two
//! properties the service promises:
//!
//! * **no starvation** — the head cannot be overtaken, and every
//!   admitted job eventually releases its claim, so every admissible
//!   job is eventually dispatched;
//! * **determinism** — dispatch *order* is the submission order,
//!   regardless of worker count or timing (which worker runs a job is
//!   racy; that a job runs, and with what inputs, is not).
//!
//! Submission failures (queue full, envelope-infeasible claim,
//! shutting down) are returned to the submitter as reasons; the daemon
//! maps them onto the `Rejected` terminal state.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use astra_pricing::Money;

use crate::admission::{Admission, AdmissionController, Envelope};
use crate::types::JobId;

/// A queue entry: the job id plus the admission claim its planned cost
/// debits from the envelope while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// The job to run.
    pub id: JobId,
    /// Planned-cost claim held until [`Scheduler::complete`].
    pub claim: Money,
}

struct SchedState {
    queue: VecDeque<QueuedJob>,
    admission: AdmissionController,
    closed: bool,
}

/// The submission queue + admission gate (see module docs).
pub struct Scheduler {
    state: Mutex<SchedState>,
    wakeup: Condvar,
    capacity: usize,
}

impl Scheduler {
    /// A scheduler with a bounded queue and a fresh envelope.
    pub fn new(queue_capacity: usize, envelope: Envelope) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                admission: AdmissionController::new(envelope),
                closed: false,
            }),
            wakeup: Condvar::new(),
            capacity: queue_capacity,
        }
    }

    /// Enqueue a job. `Err` carries the rejection reason: the queue is
    /// full, the claim can never fit the envelope, or the scheduler is
    /// shutting down. All three checks are independent of what is
    /// currently running, so the verdict is deterministic in submission
    /// order.
    pub fn submit(&self, id: JobId, claim: Money) -> Result<(), String> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err("service is shutting down".to_string());
        }
        state.admission.feasible(claim)?;
        if state.queue.len() >= self.capacity {
            return Err(format!(
                "submission queue is full ({} pending)",
                self.capacity
            ));
        }
        state.queue.push_back(QueuedJob { id, claim });
        self.wakeup.notify_all();
        Ok(())
    }

    /// Block until the queue head is admitted, then dispatch it (its
    /// claim debited). Returns `None` once the scheduler is closed and
    /// the queue has drained — the worker's signal to exit.
    pub fn next(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(&head) = state.queue.front() {
                match state.admission.admit(head.claim) {
                    Admission::Admit => {
                        state.queue.pop_front();
                        return Some(head);
                    }
                    // Head gating: wait for a release, never look past
                    // the head. Reject is unreachable — feasibility was
                    // checked at submit and is occupancy-independent.
                    Admission::Defer => {}
                    Admission::Reject(reason) => {
                        unreachable!("infeasible claim reached the queue: {reason}")
                    }
                }
            } else if state.closed {
                return None;
            }
            state = self.wakeup.wait(state).unwrap();
        }
    }

    /// Release a dispatched job's claim and wake deferred workers.
    pub fn complete(&self, claim: Money) {
        let mut state = self.state.lock().unwrap();
        state.admission.release(claim);
        self.wakeup.notify_all();
    }

    /// Refuse new submissions; queued jobs still drain. Workers exit
    /// from [`Scheduler::next`] once the queue is empty.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.wakeup.notify_all();
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Jobs currently holding admission.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().admission.in_flight()
    }

    /// The envelope being enforced.
    pub fn envelope(&self) -> Envelope {
        self.state.lock().unwrap().admission.envelope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn dollars(d: f64) -> Money {
        Money::from_dollars_f64(d)
    }

    #[test]
    fn fifo_order_is_preserved() {
        let sched = Scheduler::new(8, Envelope::unbounded());
        for id in 0..5 {
            sched.submit(id, dollars(0.1)).unwrap();
        }
        sched.close();
        let mut order = Vec::new();
        while let Some(job) = sched.next() {
            order.push(job.id);
            sched.complete(job.claim);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_reason() {
        let sched = Scheduler::new(2, Envelope::unbounded());
        sched.submit(0, Money::ZERO).unwrap();
        sched.submit(1, Money::ZERO).unwrap();
        let reason = sched.submit(2, Money::ZERO).unwrap_err();
        assert!(reason.contains("queue is full"), "{reason}");
    }

    #[test]
    fn infeasible_claim_rejected_at_submit() {
        let sched = Scheduler::new(8, Envelope {
            max_in_flight: 4,
            budget: dollars(1.0),
        });
        let reason = sched.submit(0, dollars(2.0)).unwrap_err();
        assert!(reason.contains("exceeds"), "{reason}");
        assert_eq!(sched.queue_len(), 0);
    }

    #[test]
    fn closed_scheduler_rejects_submissions_but_drains() {
        let sched = Scheduler::new(8, Envelope::unbounded());
        sched.submit(0, Money::ZERO).unwrap();
        sched.close();
        assert!(sched.submit(1, Money::ZERO).unwrap_err().contains("shutting down"));
        assert_eq!(sched.next().unwrap().id, 0);
        sched.complete(Money::ZERO);
        assert!(sched.next().is_none());
    }

    #[test]
    fn deferred_head_blocks_until_release() {
        let sched = Arc::new(Scheduler::new(8, Envelope {
            max_in_flight: 1,
            budget: dollars(10.0),
        }));
        sched.submit(0, dollars(1.0)).unwrap();
        sched.submit(1, dollars(1.0)).unwrap();

        let first = sched.next().unwrap();
        assert_eq!(first.id, 0);

        // Job 1 is head-gated on the single slot; a worker thread
        // blocks in next() until job 0 completes.
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next().map(|j| j.id))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!worker.is_finished(), "head must be deferred while the slot is held");

        sched.complete(first.claim);
        assert_eq!(worker.join().unwrap(), Some(1));
    }
}
