//! The bounded submission queue and the envelope-gated dispatch that
//! the worker pool pulls from.
//!
//! One mutex guards the whole scheduler state (tenant lanes + global
//! admission occupancy); one condvar wakes workers when either changes.
//! Since PR 8 the dispatch discipline is **deficit round-robin over
//! per-tenant lanes** ([`crate::fairness`]) instead of one global FIFO:
//! jobs queue in their tenant's lane, lanes are served round-robin with
//! planned-cost credit, and each lane additionally respects its
//! tenant's own concurrency/budget envelope. The properties the service
//! promises are preserved:
//!
//! * **no starvation** — every lane is visited each round and accrues
//!   credit until its head fits, and the DRR-chosen head keeps PR 5's
//!   head gate against the *global* envelope (nothing overtakes it
//!   while it waits for capacity), so every admissible job is
//!   eventually dispatched;
//! * **determinism of results** — per-job results depend only on the
//!   request and the daemon's planner configuration. Dispatch *order*
//!   is now a fairness decision rather than submission order, but order
//!   (like worker count and timing) only ever affects latency.
//!
//! Submission failures (queue full, globally or per-tenant infeasible
//! claim, shutting down) are returned to the submitter as reasons; the
//! daemon maps them onto the `Rejected` terminal state. All of them are
//! independent of what is currently running — reject stays
//! state-independent, deferral stays latency-only — with one deliberate
//! exception: **overload shedding** ([`OverloadConfig`]). When queue
//! depth or head-of-line age crosses its thresholds, new *non-priority*
//! submissions are refused with a retryable
//! [`SubmitError::Overloaded`] carrying a `retry_after_ms` hint, while
//! deadline-carrying (QoS) jobs are still accepted. Shedding is
//! load-dependent by design — it exists precisely so that under
//! pressure the deadline class keeps meeting QoS instead of every
//! tenant's work going stale together — and it never touches a job
//! that was already accepted.

use std::sync::{Condvar, Mutex};

use astra_pricing::Money;
use astra_telemetry::{wall_clock_ns, Telemetry};

use crate::admission::{AdmissionController, Envelope};
use crate::fairness::{Dispatch, DrrLanes, FairnessConfig, TenantStats};
use crate::types::JobId;

pub use crate::fairness::QueuedJob;

/// Queue-pressure thresholds for overload shedding. The default is
/// fully disabled (both thresholds at their `MAX` sentinel), preserving
/// the pre-overload behavior: deferral only, no shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Shed non-priority submissions once this many jobs are queued
    /// across all lanes. `usize::MAX` disables the depth trigger.
    pub shed_queue_depth: usize,
    /// Shed non-priority submissions once the oldest head-of-line job
    /// has waited this long. `u64::MAX` disables the age trigger.
    pub shed_head_age_ms: u64,
    /// The `retry_after_ms` hint attached to shed rejections.
    pub retry_after_ms: u64,
}

impl OverloadConfig {
    /// No shedding (the default).
    pub fn disabled() -> Self {
        OverloadConfig {
            shed_queue_depth: usize::MAX,
            shed_head_age_ms: u64::MAX,
            retry_after_ms: 250,
        }
    }

    /// Shed when the queue holds `depth` or more jobs.
    pub fn with_shed_queue_depth(mut self, depth: usize) -> Self {
        self.shed_queue_depth = depth;
        self
    }

    /// Shed when the oldest head-of-line job is `ms` or more old.
    pub fn with_shed_head_age_ms(mut self, ms: u64) -> Self {
        self.shed_head_age_ms = ms;
        self
    }

    /// Override the retry hint on shed rejections.
    pub fn with_retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig::disabled()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A permanent refusal: infeasible claim, full queue, shutdown.
    /// Retrying the identical request gains nothing (full-queue and
    /// shutdown refusals may clear, but carry no retry contract).
    Refused(String),
    /// Overload shedding: the service is degrading gracefully and this
    /// non-priority submission should be retried after the hint.
    Overloaded {
        /// Why the shed triggered (depth or head age).
        reason: String,
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
}

impl SubmitError {
    /// The human-readable reason (what lands in the `Rejected`
    /// snapshot).
    pub fn reason(&self) -> &str {
        match self {
            SubmitError::Refused(reason) => reason,
            SubmitError::Overloaded { reason, .. } => reason,
        }
    }
}

struct SchedState {
    lanes: DrrLanes,
    admission: AdmissionController,
    closed: bool,
    /// A halted scheduler (simulated process crash) refuses submissions
    /// AND stops dispatching, leaving queued jobs and held claims
    /// frozen — unlike `closed`, which drains.
    halted: bool,
}

/// The submission queue + admission gate (see module docs).
pub struct Scheduler {
    state: Mutex<SchedState>,
    wakeup: Condvar,
    capacity: usize,
    overload: OverloadConfig,
    telemetry: Telemetry,
}

impl Scheduler {
    /// A scheduler with a bounded queue, a fresh global envelope, DRR
    /// tenant lanes under `fairness`, and `overload` shedding
    /// thresholds.
    pub fn new(
        queue_capacity: usize,
        envelope: Envelope,
        fairness: FairnessConfig,
        overload: OverloadConfig,
        telemetry: Telemetry,
    ) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                lanes: DrrLanes::new(fairness, telemetry.clone()),
                admission: AdmissionController::new(envelope),
                closed: false,
                halted: false,
            }),
            wakeup: Condvar::new(),
            capacity: queue_capacity,
            overload,
            telemetry,
        }
    }

    /// Enqueue a job in its tenant's lane. `Err` carries the refusal:
    /// [`SubmitError::Refused`] when the queue is full, the claim can
    /// never fit the global envelope or the tenant's budget share, or
    /// the scheduler is shutting down — all independent of what is
    /// currently running; [`SubmitError::Overloaded`] when queue
    /// pressure sheds this non-priority submission (`priority`
    /// submissions — deadline-carrying jobs — are never shed).
    pub fn submit(
        &self,
        id: JobId,
        tenant: &str,
        claim: Money,
        priority: bool,
    ) -> Result<(), SubmitError> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.halted {
            return Err(SubmitError::Refused(
                "service is shutting down".to_string(),
            ));
        }
        state.admission.feasible(claim).map_err(SubmitError::Refused)?;
        state
            .lanes
            .feasible(tenant, claim)
            .map_err(SubmitError::Refused)?;
        if state.lanes.queued() >= self.capacity {
            return Err(SubmitError::Refused(format!(
                "submission queue is full ({} pending)",
                self.capacity
            )));
        }
        let now_ns = wall_clock_ns();
        if !priority {
            if let Err(reason) = self.shed_check(&state, now_ns) {
                return Err(SubmitError::Overloaded {
                    reason,
                    retry_after_ms: self.overload.retry_after_ms,
                });
            }
        }
        state.lanes.enqueue(QueuedJob {
            id,
            claim,
            tenant: tenant.into(),
            enqueued_ns: now_ns,
        });
        self.wakeup.notify_all();
        Ok(())
    }

    /// Overload verdict under the current queue state: `Err(reason)`
    /// when a shed threshold is crossed.
    fn shed_check(&self, state: &SchedState, now_ns: u64) -> Result<(), String> {
        let depth = state.lanes.queued();
        if depth >= self.overload.shed_queue_depth {
            self.telemetry.counter("service.shed.total", 1);
            self.telemetry.counter("service.shed.queue_depth", 1);
            return Err(format!(
                "service overloaded: {depth} jobs queued (threshold {})",
                self.overload.shed_queue_depth
            ));
        }
        if self.overload.shed_head_age_ms < u64::MAX {
            if let Some(oldest_ns) = state.lanes.oldest_enqueued_ns() {
                let age_ms = now_ns.saturating_sub(oldest_ns) / 1_000_000;
                if age_ms >= self.overload.shed_head_age_ms {
                    self.telemetry.counter("service.shed.total", 1);
                    self.telemetry.counter("service.shed.head_age", 1);
                    return Err(format!(
                        "service overloaded: oldest queued job waited {age_ms} ms \
                         (threshold {} ms)",
                        self.overload.shed_head_age_ms
                    ));
                }
            }
        }
        Ok(())
    }

    /// Block until DRR selects an admissible job, then dispatch it (its
    /// global and tenant claims debited). Returns `None` once the
    /// scheduler is closed and every lane has drained — the worker's
    /// signal to exit — or immediately after a halt.
    pub fn next(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.halted {
                return None;
            }
            let SchedState {
                lanes, admission, ..
            } = &mut *state;
            match lanes.try_dispatch(admission) {
                Dispatch::Job(job) => return Some(job),
                Dispatch::Blocked => {
                    if state.closed && state.lanes.queued() == 0 {
                        return None;
                    }
                }
            }
            state = self.wakeup.wait(state).unwrap();
        }
    }

    /// Release a dispatched job's global and tenant claims and wake
    /// deferred workers.
    pub fn complete(&self, job: &QueuedJob) {
        let mut state = self.state.lock().unwrap();
        state.admission.release(job.claim);
        state.lanes.release(&job.tenant, job.claim);
        self.wakeup.notify_all();
    }

    /// Refuse new submissions; queued jobs still drain. Workers exit
    /// from [`Scheduler::next`] once the lanes are empty.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.wakeup.notify_all();
    }

    /// Simulate a process crash: stop dispatching immediately, refuse
    /// submissions, and freeze queued jobs and held claims in place (no
    /// release, no drain). Workers return from [`Scheduler::next`] with
    /// `None` at their next wakeup. Only journal replay in a fresh
    /// daemon recovers the frozen work — this is the fault-injection
    /// path [`crate::faults::FaultAction::Crash`] takes.
    pub fn halt(&self) {
        let mut state = self.state.lock().unwrap();
        state.halted = true;
        self.wakeup.notify_all();
    }

    /// Jobs waiting across all lanes right now.
    pub fn queue_len(&self) -> usize {
        self.state.lock().unwrap().lanes.queued()
    }

    /// Jobs currently holding global admission.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().admission.in_flight()
    }

    /// The global envelope being enforced.
    pub fn envelope(&self) -> Envelope {
        self.state.lock().unwrap().admission.envelope()
    }

    /// Occupancy of one tenant's lane (`None` if the tenant has never
    /// submitted).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.state.lock().unwrap().lanes.tenant_stats(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::TenantEnvelope;
    use std::sync::Arc;

    fn dollars(d: f64) -> Money {
        Money::from_dollars_f64(d)
    }

    fn sched(capacity: usize, envelope: Envelope) -> Scheduler {
        Scheduler::new(
            capacity,
            envelope,
            FairnessConfig::default(),
            OverloadConfig::disabled(),
            Telemetry::disabled(),
        )
    }

    #[test]
    fn single_tenant_dispatch_is_fifo() {
        let sched = sched(8, Envelope::unbounded());
        for id in 0..5 {
            sched.submit(id, "t", dollars(0.1), false).unwrap();
        }
        sched.close();
        let mut order = Vec::new();
        while let Some(job) = sched.next() {
            order.push(job.id);
            sched.complete(&job);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_reason() {
        let sched = sched(2, Envelope::unbounded());
        sched.submit(0, "a", Money::ZERO, false).unwrap();
        sched.submit(1, "b", Money::ZERO, false).unwrap();
        let err = sched.submit(2, "c", Money::ZERO, false).unwrap_err();
        assert!(err.reason().contains("queue is full"), "{err:?}");
        assert!(matches!(err, SubmitError::Refused(_)));
    }

    #[test]
    fn infeasible_claim_rejected_at_submit() {
        let sched = sched(
            8,
            Envelope {
                max_in_flight: 4,
                budget: dollars(1.0),
            },
        );
        let err = sched.submit(0, "t", dollars(2.0), false).unwrap_err();
        assert!(err.reason().contains("exceeds"), "{err:?}");
        assert_eq!(sched.queue_len(), 0);
    }

    #[test]
    fn tenant_infeasible_claim_rejected_at_submit() {
        let sched = Scheduler::new(
            8,
            Envelope::unbounded(),
            FairnessConfig::default().with_tenant_envelope(
                "metered",
                TenantEnvelope {
                    max_in_flight: 4,
                    budget: dollars(1.0),
                },
            ),
            OverloadConfig::disabled(),
            Telemetry::disabled(),
        );
        let err = sched.submit(0, "metered", dollars(2.0), false).unwrap_err();
        assert!(err.reason().contains("budget share"), "{err:?}");
        // Another tenant with the same claim is fine.
        sched.submit(1, "other", dollars(2.0), false).unwrap();
    }

    #[test]
    fn closed_scheduler_rejects_submissions_but_drains() {
        let sched = sched(8, Envelope::unbounded());
        sched.submit(0, "t", Money::ZERO, false).unwrap();
        sched.close();
        assert!(sched
            .submit(1, "t", Money::ZERO, false)
            .unwrap_err()
            .reason()
            .contains("shutting down"));
        let job = sched.next().unwrap();
        assert_eq!(job.id, 0);
        sched.complete(&job);
        assert!(sched.next().is_none());
    }

    #[test]
    fn halted_scheduler_freezes_queue_and_claims() {
        let sched = sched(8, Envelope::unbounded());
        sched.submit(0, "t", dollars(0.5), false).unwrap();
        sched.submit(1, "t", dollars(0.5), false).unwrap();
        let running = sched.next().unwrap();
        assert_eq!(running.id, 0);
        sched.halt();
        // No drain: the queued job stays queued, the claim stays held.
        assert!(sched.next().is_none());
        assert_eq!(sched.queue_len(), 1);
        assert_eq!(sched.in_flight(), 1);
        assert!(sched
            .submit(2, "t", Money::ZERO, false)
            .unwrap_err()
            .reason()
            .contains("shutting down"));
    }

    #[test]
    fn depth_shed_spares_priority_submissions() {
        let sched = Scheduler::new(
            64,
            Envelope::unbounded(),
            FairnessConfig::default(),
            OverloadConfig::disabled()
                .with_shed_queue_depth(2)
                .with_retry_after_ms(125),
            Telemetry::disabled(),
        );
        sched.submit(0, "t", Money::ZERO, false).unwrap();
        sched.submit(1, "t", Money::ZERO, false).unwrap();
        // Depth threshold reached: non-priority submissions shed with
        // the retry hint…
        let err = sched.submit(2, "t", Money::ZERO, false).unwrap_err();
        let SubmitError::Overloaded {
            reason,
            retry_after_ms,
        } = err
        else {
            panic!("expected an overload shed, got {err:?}");
        };
        assert!(reason.contains("overloaded"), "{reason}");
        assert_eq!(retry_after_ms, 125);
        // …while a deadline-class submission is still accepted.
        sched.submit(3, "t", Money::ZERO, true).unwrap();
        assert_eq!(sched.queue_len(), 3);
    }

    #[test]
    fn head_age_shed_triggers_on_stale_queue() {
        let sched = Scheduler::new(
            64,
            Envelope::unbounded(),
            FairnessConfig::default(),
            OverloadConfig::disabled().with_shed_head_age_ms(0),
            Telemetry::disabled(),
        );
        // An empty queue has no head to be stale — first job accepted.
        sched.submit(0, "t", Money::ZERO, false).unwrap();
        // Threshold 0 ms: the queued head is instantly "stale".
        let err = sched.submit(1, "t", Money::ZERO, false).unwrap_err();
        assert!(
            matches!(err, SubmitError::Overloaded { .. }),
            "expected head-age shed, got {err:?}"
        );
        // Draining the head clears the pressure signal.
        let job = sched.next().unwrap();
        sched.complete(&job);
        sched.submit(2, "t", Money::ZERO, false).unwrap();
    }

    #[test]
    fn deferred_candidate_blocks_until_release() {
        let sched = Arc::new(sched(
            8,
            Envelope {
                max_in_flight: 1,
                budget: dollars(10.0),
            },
        ));
        sched.submit(0, "t", dollars(1.0), false).unwrap();
        sched.submit(1, "t", dollars(1.0), false).unwrap();

        let first = sched.next().unwrap();
        assert_eq!(first.id, 0);

        // Job 1 is head-gated on the single slot; a worker thread
        // blocks in next() until job 0 completes.
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next().map(|j| j.id))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !worker.is_finished(),
            "candidate must be deferred while the slot is held"
        );

        sched.complete(&first);
        assert_eq!(worker.join().unwrap(), Some(1));
    }

    #[test]
    fn two_tenants_interleave() {
        // Quantum = one claim, so DRR serves one job per lane per round.
        let sched = Scheduler::new(
            16,
            Envelope::unbounded(),
            FairnessConfig::default().with_quantum(dollars(0.001)),
            OverloadConfig::disabled(),
            Telemetry::disabled(),
        );
        for id in 0..4 {
            sched.submit(id, "flood", dollars(0.001), false).unwrap();
        }
        for id in 10..12 {
            sched.submit(id, "quiet", dollars(0.001), false).unwrap();
        }
        sched.close();
        let mut order = Vec::new();
        while let Some(job) = sched.next() {
            order.push(job.id);
            sched.complete(&job);
        }
        let quiet_done = order.iter().position(|&id| id == 11).unwrap();
        assert!(
            quiet_done <= 3,
            "quiet tenant waited behind the flood: {order:?}"
        );
        assert_eq!(sched.tenant_stats("flood").unwrap().queued, 0);
    }
}
