//! Durable job journal: append-only crash log for the service daemon.
//!
//! Every lifecycle transition the daemon makes is appended here as one
//! framed record, so a daemon restarted with the same `--journal` path
//! can reconstruct what it owed its clients at the moment it died:
//! jobs that had reached a terminal state are served from their logged
//! snapshot (no recompute), and jobs caught mid-flight are re-admitted
//! — safe because planning and simulation are deterministic, so the
//! re-run produces bit-identical results (`tests/service_chaos.rs`
//! pins this).
//!
//! # Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes of JSON]
//! ```
//!
//! The CRC-32 (IEEE, the zlib polynomial) covers only the payload. A
//! record is valid iff its full frame is present and the checksum
//! matches; recovery scans from the start and **truncates the file at
//! the first invalid frame**, which is exactly the torn-final-write a
//! crash mid-append leaves behind. Records after a torn frame are
//! unreachable anyway — the daemon only ever appends — so truncation
//! never discards committed history.
//!
//! # Record kinds
//!
//! * `{"rec":"submitted","id":…,"at_ns":…,"tenant":…,"fingerprint":…,
//!   "request":{…}}` — a job was accepted; carries the full request so
//!   recovery can re-admit it, plus an FNV-1a fingerprint of the
//!   encoded request for cheap cross-restart identity checks.
//! * `{"rec":"transition","id":…,"status":…,"at_ns":…}` — a
//!   non-terminal lifecycle edge (bookkeeping/debugging; recovery only
//!   needs it to know the job was still in flight).
//! * `{"rec":"terminal","id":…,"status":…,"at_ns":…,"snapshot":{…}}` —
//!   a terminal edge; embeds the complete snapshot (request, plan spec,
//!   sim results) so a restarted daemon answers `status`/`await` for
//!   finished jobs without recomputing anything.
//!
//! Replay folds records per job id, last record wins — replaying a
//! journal that already contains several crash/recover generations is
//! idempotent.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use astra_telemetry::Telemetry;
use serde_json::{json, Value};

use crate::types::{JobId, JobRequest, JobSnapshot, JobStatus};
use crate::wire;

/// Frame header size: length + checksum, both little-endian u32.
const HEADER_BYTES: u64 = 8;
/// Refuse absurd frames so a corrupt length field cannot make recovery
/// attempt a multi-gigabyte allocation. Generous vs. real records
/// (a large snapshot is a few hundred KiB).
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — the framing checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// FNV-1a over the canonical encoded request — the spec fingerprint
/// stored in `submitted` records.
pub fn request_fingerprint(request: &JobRequest) -> u64 {
    let encoded = wire::job_request_to_json(request).to_string();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in encoded.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One job reconstructed from replay.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The id the dead daemon assigned; preserved across restart.
    pub id: JobId,
    /// The full request, decoded from its `submitted` record.
    pub request: JobRequest,
    /// The last status the journal saw for this job.
    pub last_status: JobStatus,
    /// The logged terminal snapshot, when the job finished before the
    /// crash. `None` means the job was mid-flight and must be re-run.
    pub terminal: Option<JobSnapshot>,
}

/// The outcome of replaying a journal at startup.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Every job the journal knows about, in id order.
    pub jobs: Vec<RecoveredJob>,
    /// Valid records replayed.
    pub records: u64,
    /// Bytes cut from a torn/corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
}

impl JournalRecovery {
    /// Jobs that were mid-flight at crash time and need re-admission.
    pub fn in_flight(&self) -> impl Iterator<Item = &RecoveredJob> {
        self.jobs.iter().filter(|j| j.terminal.is_none())
    }

    /// The largest job id seen (so the restarted daemon can continue
    /// the id sequence without collisions).
    pub fn max_id(&self) -> Option<JobId> {
        self.jobs.last().map(|j| j.id)
    }
}

/// An open, append-only journal. Cheap to share behind the daemon's
/// `Arc`; appends serialize on an internal mutex and each record is
/// flushed before the call returns.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
    telemetry: Telemetry,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Open (creating if absent) the journal at `path`, replay every
    /// valid record, truncate a torn tail, and return the journal
    /// positioned for appending plus what was recovered.
    pub fn open(path: &Path, telemetry: Telemetry) -> io::Result<(Journal, JournalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let recovery = replay(&mut file, &telemetry)?;
        telemetry.counter("service.journal.replayed", recovery.records);
        telemetry.counter("service.journal.recovered_jobs", recovery.jobs.len() as u64);
        if recovery.truncated_bytes > 0 {
            telemetry.counter("service.journal.truncated_bytes", recovery.truncated_bytes);
        }
        Ok((
            Journal {
                file: Mutex::new(file),
                path: path.to_path_buf(),
                telemetry,
            },
            recovery,
        ))
    }

    /// The path this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Log an accepted submission (full request + fingerprint).
    pub fn record_submitted(&self, id: JobId, request: &JobRequest, at_ns: u64) {
        self.append(&json!({
            "rec": "submitted",
            "id": id,
            "at_ns": at_ns,
            "tenant": request.tenant.clone(),
            "fingerprint": format!("{:016x}", request_fingerprint(request)),
            "request": wire::job_request_to_json(request),
        }));
    }

    /// Log a lifecycle transition. Terminal transitions embed the full
    /// snapshot so a restart can serve the result without recompute.
    pub fn record_transition(&self, snap: &JobSnapshot) {
        let at_ns = snap.history.last().map(|&(_, t)| t).unwrap_or(0);
        let record = if snap.status.is_terminal() {
            json!({
                "rec": "terminal",
                "id": snap.id,
                "status": snap.status.as_str(),
                "at_ns": at_ns,
                "snapshot": wire::snapshot_to_journal_json(snap),
            })
        } else {
            json!({
                "rec": "transition",
                "id": snap.id,
                "status": snap.status.as_str(),
                "at_ns": at_ns,
            })
        };
        self.append(&record);
    }

    fn append(&self, record: &Value) {
        let payload = record.to_string().into_bytes();
        let len = payload.len() as u32;
        let crc = crc32(&payload);
        let mut frame = Vec::with_capacity(payload.len() + HEADER_BYTES as usize);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = self.file.lock().expect("journal lock poisoned");
        // A failed append must not take the daemon down — the journal
        // degrades to best-effort and the in-memory table stays
        // authoritative for this process's lifetime.
        if file
            .write_all(&frame)
            .and_then(|()| file.flush())
            .is_err()
        {
            self.telemetry.counter("service.journal.append_errors", 1);
            return;
        }
        self.telemetry.counter("service.journal.appends", 1);
    }
}

/// Scan `file` from the start, folding valid records into per-job
/// state; truncate at the first invalid frame and leave the cursor at
/// the new end.
fn replay(file: &mut File, _telemetry: &Telemetry) -> io::Result<JournalRecovery> {
    let total = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(0))?;
    let mut bytes = Vec::with_capacity(total.min(16 * 1024 * 1024) as usize);
    file.read_to_end(&mut bytes)?;

    let mut offset: u64 = 0;
    let mut records = 0u64;
    // id → (request record, last status, terminal snapshot)
    let mut table: BTreeMap<JobId, (Option<JobRequest>, JobStatus, Option<JobSnapshot>)> =
        BTreeMap::new();

    loop {
        let rest = &bytes[offset as usize..];
        if rest.is_empty() {
            break;
        }
        let Some(frame) = decode_frame(rest) else {
            break;
        };
        let Some(record) = parse_record(frame) else {
            break;
        };
        apply_record(&mut table, record);
        records += 1;
        offset += HEADER_BYTES + frame.len() as u64;
    }

    let truncated_bytes = total - offset;
    if truncated_bytes > 0 {
        file.set_len(offset)?;
    }
    file.seek(SeekFrom::Start(offset))?;

    let jobs = table
        .into_iter()
        .filter_map(|(id, (request, last_status, terminal))| {
            // A transition whose `submitted` record was torn away has
            // no request to re-admit; drop it (cannot happen for a
            // journal written by this module, which always logs
            // `submitted` first, but a truncated older generation
            // could theoretically surface one).
            let request = request.or_else(|| terminal.as_ref().map(|s| s.request.clone()))?;
            Some(RecoveredJob {
                id,
                request,
                last_status,
                terminal,
            })
        })
        .collect();

    Ok(JournalRecovery {
        jobs,
        records,
        truncated_bytes,
    })
}

/// The payload of the frame at the head of `bytes`, or `None` if the
/// frame is incomplete or fails its checksum.
fn decode_frame(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_BYTES as usize {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let end = HEADER_BYTES as usize + len as usize;
    if bytes.len() < end {
        return None;
    }
    let payload = &bytes[HEADER_BYTES as usize..end];
    if crc32(payload) != crc {
        return None;
    }
    Some(payload)
}

enum Record {
    Submitted { id: JobId, request: Box<JobRequest> },
    Transition { id: JobId, status: JobStatus },
    Terminal { snapshot: Box<JobSnapshot> },
}

/// Decode one record payload; `None` poisons the rest of the log (the
/// scan stops and truncates here), which is the safe reading of a
/// record this version cannot parse.
fn parse_record(payload: &[u8]) -> Option<Record> {
    let text = std::str::from_utf8(payload).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    let object = value.as_object()?;
    let id = object.get("id")?.as_u64()?;
    match object.get("rec")?.as_str()? {
        "submitted" => {
            let request = wire::job_request_from_json(object.get("request")?).ok()?;
            Some(Record::Submitted {
                id,
                request: Box::new(request),
            })
        }
        "transition" => {
            let status = JobStatus::parse(object.get("status")?.as_str()?)?;
            Some(Record::Transition { id, status })
        }
        "terminal" => {
            let snapshot = wire::snapshot_from_journal_json(object.get("snapshot")?).ok()?;
            if snapshot.id != id || !snapshot.status.is_terminal() {
                return None;
            }
            Some(Record::Terminal {
                snapshot: Box::new(snapshot),
            })
        }
        _ => None,
    }
}

fn apply_record(
    table: &mut BTreeMap<JobId, (Option<JobRequest>, JobStatus, Option<JobSnapshot>)>,
    record: Record,
) {
    match record {
        Record::Submitted { id, request } => {
            let entry = table
                .entry(id)
                .or_insert((None, JobStatus::Accepted, None));
            entry.0 = Some(*request);
            // A fresh `submitted` for an id we already saw means a
            // prior generation re-admitted it; reset to in-flight.
            entry.1 = JobStatus::Accepted;
            entry.2 = None;
        }
        Record::Transition { id, status } => {
            let entry = table
                .entry(id)
                .or_insert((None, JobStatus::Accepted, None));
            entry.1 = status;
        }
        Record::Terminal { snapshot } => {
            let entry = table
                .entry(snapshot.id)
                .or_insert((None, JobStatus::Accepted, None));
            entry.1 = snapshot.status;
            entry.2 = Some(*snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Objective;
    use astra_model::{JobSpec, WorkloadProfile};

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "astra-journal-{tag}-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn request(n: usize) -> JobRequest {
        JobRequest {
            name: format!("job-{n}"),
            tenant: "acme".to_string(),
            job: JobSpec::uniform(format!("job-{n}"), n, 64.0, WorkloadProfile::uniform_test()),
            objective: Objective::cheapest(),
            sim: crate::types::SimOptions::default(),
        }
    }

    fn terminal_snapshot(id: JobId, n: usize) -> JobSnapshot {
        JobSnapshot {
            id,
            request: request(n),
            status: JobStatus::Done,
            history: vec![
                (JobStatus::Accepted, 10),
                (JobStatus::Planned, 20),
                (JobStatus::Done, 30),
            ],
            reason: None,
            plan: None,
            sim: None,
            metrics: crate::types::JobMetrics::default(),
            session_cache_hit: false,
            retry_after_ms: None,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_recovers_submitted_and_terminal_jobs() {
        let path = temp_path("roundtrip");
        {
            let (journal, recovery) =
                Journal::open(&path, Telemetry::disabled()).expect("open fresh");
            assert!(recovery.jobs.is_empty());
            journal.record_submitted(1, &request(4), 10);
            journal.record_submitted(2, &request(6), 11);
            let done = terminal_snapshot(1, 4);
            journal.record_transition(&done);
        }
        let (_journal, recovery) =
            Journal::open(&path, Telemetry::disabled()).expect("reopen");
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(recovery.max_id(), Some(2));
        let job1 = &recovery.jobs[0];
        assert_eq!(job1.id, 1);
        assert_eq!(job1.last_status, JobStatus::Done);
        let snap = job1.terminal.as_ref().expect("terminal snapshot");
        assert_eq!(snap.request, request(4));
        let job2 = &recovery.jobs[1];
        assert_eq!(job2.id, 2);
        assert!(job2.terminal.is_none());
        assert_eq!(job2.request, request(6));
        assert_eq!(recovery.in_flight().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_last_valid_frame() {
        let path = temp_path("torn");
        {
            let (journal, _) = Journal::open(&path, Telemetry::disabled()).expect("open");
            journal.record_submitted(1, &request(4), 10);
            journal.record_submitted(2, &request(6), 11);
        }
        let clean_len = std::fs::metadata(&path).expect("metadata").len();
        // Simulate a crash mid-append: a frame header plus half a
        // payload.
        {
            let mut file = OpenOptions::new().append(true).open(&path).expect("append");
            let torn = json!({"rec": "transition", "id": 2, "status": "PLANNED", "at_ns": 12})
                .to_string()
                .into_bytes();
            let mut frame = Vec::new();
            frame.extend_from_slice(&(torn.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&torn).to_le_bytes());
            frame.extend_from_slice(&torn[..torn.len() / 2]);
            file.write_all(&frame).expect("write torn frame");
        }
        let (journal, recovery) = Journal::open(&path, Telemetry::disabled()).expect("recover");
        assert_eq!(recovery.records, 2);
        assert!(recovery.truncated_bytes > 0);
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(
            std::fs::metadata(&path).expect("metadata").len(),
            clean_len,
            "file truncated back to the last valid frame"
        );
        // Appends after recovery land at the truncation point.
        journal.record_submitted(3, &request(8), 13);
        drop(journal);
        let (_journal, recovery) = Journal::open(&path, Telemetry::disabled()).expect("reopen");
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.max_id(), Some(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_poisons_the_tail() {
        let path = temp_path("corrupt");
        {
            let (journal, _) = Journal::open(&path, Telemetry::disabled()).expect("open");
            journal.record_submitted(1, &request(4), 10);
            journal.record_submitted(2, &request(6), 11);
            journal.record_submitted(3, &request(8), 12);
        }
        // Flip one payload byte in the middle record.
        let mut bytes = std::fs::read(&path).expect("read");
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = 8 + first_len + 8;
        bytes[second_payload_start + 4] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");

        let (_journal, recovery) = Journal::open(&path, Telemetry::disabled()).expect("recover");
        // Only the first record survives; the corrupt one and
        // everything after it is discarded.
        assert_eq!(recovery.records, 1);
        assert!(recovery.truncated_bytes > 0);
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].id, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resubmitted_record_resets_terminal_state() {
        // A later `submitted` for the same id (a prior recovery
        // generation re-admitting the job) must put it back in flight.
        let path = temp_path("resubmit");
        {
            let (journal, _) = Journal::open(&path, Telemetry::disabled()).expect("open");
            journal.record_submitted(1, &request(4), 10);
            journal.record_transition(&terminal_snapshot(1, 4));
            journal.record_submitted(1, &request(4), 20);
        }
        let (_journal, recovery) = Journal::open(&path, Telemetry::disabled()).expect("recover");
        assert_eq!(recovery.jobs.len(), 1);
        assert!(recovery.jobs[0].terminal.is_none());
        assert_eq!(recovery.jobs[0].last_status, JobStatus::Accepted);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let a = request_fingerprint(&request(4));
        let b = request_fingerprint(&request(4));
        let c = request_fingerprint(&request(5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
