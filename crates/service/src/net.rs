//! The std-TCP line-protocol transport: a newline-delimited JSON
//! framing of the service wire types, specified normatively in
//! `PROTOCOL.md` at the repository root.
//!
//! One [`NetServer`] wraps one [`ServiceHandle`]: a single accept
//! thread hands each connection to its own reader thread (bounded by
//! [`NetConfig::max_connections`]), and each connection speaks a strict
//! request/response protocol — one JSON object per line in, one JSON
//! object per line out, in order. There is no pipelining within a
//! connection; concurrency comes from opening more connections.
//!
//! ## Framing errors never drop the connection
//!
//! A line the server cannot frame or parse — oversized, invalid UTF-8,
//! malformed JSON, trailing garbage, a bad envelope, an unknown op —
//! is answered like any other request: the daemon registers a
//! `Rejected` placeholder job carrying the reason (exactly as
//! [`ServiceHandle::submit_json`] does for unparseable bodies) and the
//! response line carries both the machine-readable error code and that
//! job's snapshot. The connection stays open and re-synchronized at the
//! next newline. Only two lines close a connection: the
//! [`codes::CONNECTION_LIMIT`] refusal, sent when the reader-thread
//! budget is exhausted at accept time, and the [`codes::IDLE_TIMEOUT`]
//! notice, sent when a connection goes [`NetConfig::idle_timeout_ms`]
//! without completing a request line — the defense that stops a silent
//! or slow-loris peer from pinning a connection slot forever.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) stops the accept loop,
//! shuts down every live connection socket, and joins all threads. It
//! does **not** stop the daemon: shut the server down first, then call
//! [`crate::daemon::ServiceDaemon::shutdown`], which drains every
//! queued job to a terminal state. That ordering is what makes shutdown
//! graceful — no accepted job is abandoned.
//!
//! ## Determinism
//!
//! The transport adds nothing to the result surface: a job submitted
//! over TCP produces the bit-identical snapshot the in-process
//! [`ServiceHandle`] would produce for the same request, because both
//! paths run the same `submit`. `tests/service_net.rs` pins this.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use astra_telemetry::Telemetry;
use serde_json::{json, Map, Value};

use astra_faas::derive_seed;

use crate::daemon::ServiceHandle;
use crate::faults::{FaultPlan, FaultSite};
use crate::types::{JobId, JobRequest, JobStatus};
use crate::wire;

/// The protocol identifier the server announces in its hello line and
/// `ping` responses. Bump the `/1` on any incompatible change (see
/// PROTOCOL.md, "Versioning").
pub const PROTO_VERSION: &str = "astra.jobs/1";

/// Machine-readable error codes, exactly as they appear in the
/// `error.code` field of a response line. PROTOCOL.md documents each
/// one; CI checks the two stay in sync.
pub mod codes {
    /// A line exceeded [`super::NetConfig::max_line_bytes`] before its
    /// newline. The oversized bytes are discarded up to the next
    /// newline, so the connection stays framed.
    pub const OVERSIZE_LINE: &str = "OVERSIZE_LINE";
    /// The line is not valid UTF-8.
    pub const INVALID_UTF8: &str = "INVALID_UTF8";
    /// The line is not valid JSON.
    pub const INVALID_JSON: &str = "INVALID_JSON";
    /// The line holds one valid JSON value followed by more bytes —
    /// exactly one JSON object per line is allowed.
    pub const TRAILING_GARBAGE: &str = "TRAILING_GARBAGE";
    /// The line parsed but is not a request envelope: not an object,
    /// `op` missing or not a string, a field unknown to the op, or a
    /// required field missing/mistyped.
    pub const BAD_ENVELOPE: &str = "BAD_ENVELOPE";
    /// The envelope's `op` is none of `submit` / `resubmit` / `status` /
    /// `await` / `ping` / `stats`.
    pub const UNKNOWN_OP: &str = "UNKNOWN_OP";
    /// A `submit` / `resubmit` whose `request` body failed strict wire
    /// decoding (unknown field, missing field, invalid value).
    pub const BAD_REQUEST: &str = "BAD_REQUEST";
    /// A `status` / `await` / `resubmit` for a job id this daemon never
    /// issued.
    pub const UNKNOWN_JOB: &str = "UNKNOWN_JOB";
    /// The server's reader-thread budget is exhausted; this refusal is
    /// sent as the connection's only line before the server closes it.
    pub const CONNECTION_LIMIT: &str = "CONNECTION_LIMIT";
    /// No complete request line arrived within
    /// [`super::NetConfig::idle_timeout_ms`]; the server sends this
    /// notice and closes the connection (the other closing code besides
    /// [`CONNECTION_LIMIT`]).
    pub const IDLE_TIMEOUT: &str = "IDLE_TIMEOUT";
    /// A `submit` shed by overload degradation: the service is over its
    /// queue-pressure thresholds and this non-priority submission was
    /// rejected retryably. The error object carries `retry_after_ms`;
    /// the registered `Rejected` job rides on the response like any
    /// other refusal.
    pub const OVERLOADED: &str = "OVERLOADED";
}

/// Transport limits for one [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Longest accepted request line in bytes, newline excluded.
    /// Longer lines are answered with [`codes::OVERSIZE_LINE`].
    pub max_line_bytes: usize,
    /// Reader-thread budget: connections accepted beyond it receive a
    /// one-line [`codes::CONNECTION_LIMIT`] refusal and are closed.
    pub max_connections: usize,
    /// Close a connection (with a [`codes::IDLE_TIMEOUT`] line) when no
    /// complete request line arrives for this long. 0 disables the
    /// timeout (a silent peer then pins its slot forever — test use
    /// only).
    pub idle_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Generous for job specs (a 10^6-object job request with
            // per-object sizes is ~10 MB; typical requests are < 1 KB).
            max_line_bytes: 16 * 1024 * 1024,
            max_connections: 64,
            // Five minutes: longer than any legitimate await gap a
            // batch client leaves, far shorter than forever.
            idle_timeout_ms: 300_000,
        }
    }
}

impl NetConfig {
    /// Override the maximum request-line length.
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Override the connection budget.
    pub fn with_max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections;
        self
    }

    /// Override the idle timeout (0 disables it).
    pub fn with_idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }
}

// ---------------------------------------------------------------- framing

enum ReadLine {
    /// One complete line, newline stripped (and a trailing `\r`, for
    /// CRLF tolerance).
    Line(Vec<u8>),
    /// The line outgrew the cap; bytes were discarded up to and
    /// including the next newline, so the stream is re-synchronized.
    Oversize,
    /// Clean end of stream.
    Eof,
}

/// Read one newline-terminated line with a hard length cap. Unlike
/// `BufRead::read_line`, an oversized line is consumed (to the next
/// newline) rather than buffered, so a hostile client cannot balloon
/// server memory past `max` per connection.
fn read_line_capped<R: BufRead>(reader: &mut R, max: usize) -> io::Result<ReadLine> {
    let mut line = Vec::new();
    let mut oversize = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. An unterminated trailing line still counts as a line
            // (standard `nc` behaviour on the last write).
            return Ok(if oversize {
                ReadLine::Oversize
            } else if line.is_empty() {
                ReadLine::Eof
            } else {
                trim_cr(&mut line);
                ReadLine::Line(line)
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !oversize {
                    line.extend_from_slice(&available[..newline]);
                }
                reader.consume(newline + 1);
                if oversize || line.len() > max {
                    return Ok(ReadLine::Oversize);
                }
                trim_cr(&mut line);
                return Ok(ReadLine::Line(line));
            }
            None => {
                let taken = available.len();
                if !oversize {
                    line.extend_from_slice(available);
                    if line.len() > max {
                        oversize = true;
                        line = Vec::new();
                    }
                }
                reader.consume(taken);
            }
        }
    }
}

fn trim_cr(line: &mut Vec<u8>) {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
}

// ---------------------------------------------------------------- responses

fn ok_response(op: &str) -> Map<String, Value> {
    let mut obj = Map::new();
    obj.insert("ok".to_string(), Value::from(true));
    obj.insert("op".to_string(), Value::from(op));
    obj
}

/// An `ok:false` line: the error code/message, the op if it was
/// recognisable, and the `Rejected` placeholder snapshot when the
/// failure registered one.
fn error_response(op: Option<&str>, code: &str, message: &str, job: Option<Value>) -> Value {
    let mut obj = Map::new();
    obj.insert("ok".to_string(), Value::from(false));
    obj.insert(
        "op".to_string(),
        op.map(Value::from).unwrap_or(Value::Null),
    );
    obj.insert(
        "error".to_string(),
        json!({ "code": code, "message": message }),
    );
    if let Some(job) = job {
        obj.insert("job".to_string(), job);
    }
    Value::Object(obj)
}

/// A framing/parse failure becomes a real `Rejected` job (poll-able
/// like any other) whose snapshot rides on the error line.
fn reject_with(
    handle: &ServiceHandle,
    op: Option<&str>,
    code: &str,
    message: String,
) -> Value {
    let id = handle.reject_submission(format!("{code}: {message}"));
    let snapshot = handle
        .status(id)
        .map(|snap| wire::snapshot_to_json(&snap))
        .unwrap_or(Value::Null);
    error_response(op, code, &message, Some(snapshot))
}

fn envelope_err(handle: &ServiceHandle, op: Option<&str>, message: String) -> Value {
    reject_with(handle, op, codes::BAD_ENVELOPE, message)
}

/// The response for a registered submission under `op`. An overload shed
/// answers `ok:false OVERLOADED` with the retry hint, so a client can
/// back off without polling — the rejected job still rides on the line
/// like any other refusal.
fn submitted_response(handle: &ServiceHandle, op: &str, id: JobId) -> Value {
    let shed = handle
        .status(id)
        .filter(|snap| snap.status == JobStatus::Rejected && snap.retry_after_ms.is_some());
    if let Some(snap) = shed {
        let retry_after_ms = snap.retry_after_ms.unwrap_or(0);
        let reason = snap.reason.clone().unwrap_or_default();
        let mut obj = Map::new();
        obj.insert("ok".to_string(), Value::from(false));
        obj.insert("op".to_string(), Value::from(op));
        obj.insert(
            "error".to_string(),
            json!({
                "code": codes::OVERLOADED,
                "message": reason,
                "retry_after_ms": retry_after_ms,
            }),
        );
        obj.insert("job".to_string(), wire::snapshot_to_json(&snap));
        return Value::Object(obj);
    }
    let mut obj = ok_response(op);
    obj.insert("id".to_string(), Value::from(id));
    Value::Object(obj)
}

/// Answer one framed request line. Infallible: every failure mode is an
/// `ok:false` response value.
fn handle_line(handle: &ServiceHandle, telemetry: &Telemetry, line: &[u8]) -> Value {
    let text = match std::str::from_utf8(line) {
        Ok(text) => text,
        Err(e) => {
            return reject_with(handle, None, codes::INVALID_UTF8, e.to_string());
        }
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => {
            let message = e.to_string();
            let code = if message.contains("trailing characters") {
                codes::TRAILING_GARBAGE
            } else {
                codes::INVALID_JSON
            };
            return reject_with(handle, None, code, message);
        }
    };
    let Some(envelope) = value.as_object() else {
        return envelope_err(handle, None, "request envelope must be a JSON object".into());
    };
    let op = match envelope.get("op") {
        Some(Value::String(op)) => op.clone(),
        Some(_) => return envelope_err(handle, None, "'op' must be a string".into()),
        None => return envelope_err(handle, None, "missing field 'op'".into()),
    };
    let allowed: &[&str] = match op.as_str() {
        "submit" => &["op", "request"],
        "resubmit" => &["op", "id", "request"],
        "status" | "await" => &["op", "id"],
        "ping" | "stats" => &["op"],
        other => {
            return reject_with(
                handle,
                None,
                codes::UNKNOWN_OP,
                format!("unknown op '{other}'"),
            );
        }
    };
    for key in envelope.keys() {
        if !allowed.contains(&key.as_str()) {
            return envelope_err(
                handle,
                Some(&op),
                format!("unknown field '{key}' in '{op}' envelope"),
            );
        }
    }
    match op.as_str() {
        "submit" => {
            let Some(request_value) = envelope.get("request") else {
                return envelope_err(handle, Some(&op), "missing field 'request'".into());
            };
            match wire::job_request_from_json(request_value) {
                Ok(request) => {
                    telemetry.counter("service.net.submits", 1);
                    let id = handle.submit(request);
                    submitted_response(handle, "submit", id)
                }
                Err(e) => reject_with(handle, Some(&op), codes::BAD_REQUEST, e.to_string()),
            }
        }
        "resubmit" => {
            let Some(prior) = envelope.get("id").and_then(|v| v.as_u64()) else {
                return envelope_err(
                    handle,
                    Some(&op),
                    "missing or non-integer field 'id'".into(),
                );
            };
            // `request` is optional: present, it is the revised spec;
            // absent, the prior request is replayed verbatim.
            let revised = match envelope.get("request") {
                None => None,
                Some(value) => match wire::job_request_from_json(value) {
                    Ok(request) => Some(request),
                    Err(e) => {
                        return reject_with(handle, Some(&op), codes::BAD_REQUEST, e.to_string());
                    }
                },
            };
            telemetry.counter("service.net.resubmits", 1);
            match handle.resubmit(prior as JobId, revised) {
                Some(id) => {
                    let mut response = submitted_response(handle, "resubmit", id);
                    if let Value::Object(obj) = &mut response {
                        obj.insert("prior".to_string(), Value::from(prior));
                    }
                    response
                }
                None => error_response(
                    Some(&op),
                    codes::UNKNOWN_JOB,
                    &format!("no job with id {prior}"),
                    None,
                ),
            }
        }
        "status" | "await" => {
            let id = match envelope.get("id").and_then(|v| v.as_u64()) {
                Some(id) => id as JobId,
                None => {
                    return envelope_err(
                        handle,
                        Some(&op),
                        "missing or non-integer field 'id'".into(),
                    );
                }
            };
            let snapshot = if op == "await" {
                handle.await_done(id)
            } else {
                handle.status(id)
            };
            match snapshot {
                Some(snap) => {
                    let mut obj = ok_response(&op);
                    obj.insert("job".to_string(), wire::snapshot_to_json(&snap));
                    Value::Object(obj)
                }
                None => error_response(
                    Some(&op),
                    codes::UNKNOWN_JOB,
                    &format!("no job with id {id}"),
                    None,
                ),
            }
        }
        "ping" => {
            let mut obj = ok_response("ping");
            obj.insert("proto".to_string(), Value::from(PROTO_VERSION));
            Value::Object(obj)
        }
        "stats" => {
            let mut obj = ok_response("stats");
            obj.insert(
                "stats".to_string(),
                json!({
                    "jobs": handle.jobs().len() as u64,
                    "queue_len": handle.queue_len() as u64,
                    "in_flight": handle.in_flight() as u64,
                }),
            );
            Value::Object(obj)
        }
        _ => unreachable!("op was validated above"),
    }
}

// ---------------------------------------------------------------- server

/// The shim's `to_string` never fails; centralize the expect.
fn encode(value: &Value) -> String {
    serde_json::to_string(value).expect("JSON encoding is infallible")
}

fn hello_line() -> String {
    encode(&json!({
        "ok": true,
        "op": "hello",
        "proto": PROTO_VERSION,
    }))
}

fn serve_connection(
    stream: TcpStream,
    handle: ServiceHandle,
    config: NetConfig,
    telemetry: Telemetry,
    active: Arc<AtomicUsize>,
    faults: FaultPlan,
    conn_seq: u64,
) {
    let run = || -> io::Result<()> {
        if config.idle_timeout_ms > 0 {
            // The reader parks in fill_buf between requests; this is
            // what turns a silent peer into a TimedOut error instead
            // of a forever-pinned slot.
            stream.set_read_timeout(Some(std::time::Duration::from_millis(
                config.idle_timeout_ms,
            )))?;
        }
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream.try_clone()?;
        writer.write_all(hello_line().as_bytes())?;
        writer.write_all(b"\n")?;
        loop {
            let read = match read_line_capped(&mut reader, config.max_line_bytes) {
                Ok(read) => read,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle deadline hit (a stalled mid-line write also
                    // lands here — the slow-loris case). One explicit
                    // closing line, then the slot is released.
                    telemetry.counter("service.net.idle_timeouts", 1);
                    let notice = error_response(
                        None,
                        codes::IDLE_TIMEOUT,
                        &format!(
                            "no request within {} ms; closing connection",
                            config.idle_timeout_ms
                        ),
                        None,
                    );
                    writer.write_all(encode(&notice).as_bytes())?;
                    writer.write_all(b"\n")?;
                    break;
                }
                Err(e) => return Err(e),
            };
            let response = match read {
                ReadLine::Eof => break,
                ReadLine::Oversize => {
                    telemetry.counter("service.net.lines", 1);
                    telemetry.counter("service.net.frame_errors", 1);
                    reject_with(
                        &handle,
                        None,
                        codes::OVERSIZE_LINE,
                        format!("line exceeds {} bytes", config.max_line_bytes),
                    )
                }
                ReadLine::Line(line) => {
                    if line.is_empty() {
                        // Blank lines are keep-alive no-ops (PROTOCOL.md).
                        continue;
                    }
                    telemetry.counter("service.net.lines", 1);
                    let response = handle_line(&handle, &telemetry, &line);
                    if response.as_object().and_then(|o| o.get("ok")) == Some(&Value::from(false))
                    {
                        telemetry.counter("service.net.frame_errors", 1);
                    }
                    response
                }
            };
            if faults.fires(FaultSite::ConnReset, conn_seq) {
                // Injected reset: the request was processed but the
                // connection drops before any response byte.
                telemetry.counter("service.faults.injected", 1);
                break;
            }
            let encoded = encode(&response);
            if faults.fires(FaultSite::ShortWrite, conn_seq) {
                // Injected torn frame: half the response, no newline,
                // then close — the client sees a short read mid-frame.
                telemetry.counter("service.faults.injected", 1);
                writer.write_all(&encoded.as_bytes()[..encoded.len() / 2])?;
                break;
            }
            writer.write_all(encoded.as_bytes())?;
            writer.write_all(b"\n")?;
            telemetry.counter("service.net.responses", 1);
        }
        Ok(())
    };
    // Read/write failures end the connection; there is no one left to
    // report them to.
    let _ = run();
    let _ = stream.shutdown(Shutdown::Both);
    let remaining = active.fetch_sub(1, Ordering::AcqRel) - 1;
    telemetry.gauge("service.net.active_connections", remaining as f64);
}

type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    handle: ServiceHandle,
    config: NetConfig,
    telemetry: Telemetry,
    shutdown: Arc<AtomicBool>,
    conns: ConnRegistry,
    active: Arc<AtomicUsize>,
    faults: FaultPlan,
) {
    // Monotonic per-server connection sequence — the key transport
    // fault rules are evaluated against, so a fault plan picks the
    // same victims on every run.
    let mut conn_seq: u64 = 0;
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if shutdown.load(Ordering::Acquire) => break,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::Acquire) {
            // The self-connect wake from NetServer::shutdown (or any
            // late client); either way the server is closing.
            break;
        }
        // One-line request/response framing is exactly the pattern
        // Nagle's algorithm penalizes (~40ms per roundtrip against
        // delayed ACKs); flush every response segment immediately.
        let _ = stream.set_nodelay(true);
        {
            // Reap finished reader threads so the registry tracks live
            // connections, not every connection ever accepted.
            let mut conns = conns.lock().unwrap();
            conns.retain(|(_, join)| !join.is_finished());
        }
        // Budget check: refuse with one explicit line, never silently.
        let occupied = active.load(Ordering::Acquire);
        if occupied >= config.max_connections {
            telemetry.counter("service.net.conn_refused", 1);
            let refusal = error_response(
                None,
                codes::CONNECTION_LIMIT,
                &format!("server is at its {} connection limit", config.max_connections),
                None,
            );
            let mut stream = stream;
            let _ = stream.write_all(encode(&refusal).as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let now_active = active.fetch_add(1, Ordering::AcqRel) + 1;
        telemetry.counter("service.net.connections", 1);
        telemetry.gauge("service.net.active_connections", now_active as f64);
        let Ok(registered) = stream.try_clone() else {
            active.fetch_sub(1, Ordering::AcqRel);
            continue;
        };
        let seq = conn_seq;
        conn_seq += 1;
        let reader = {
            let handle = handle.clone();
            let telemetry = telemetry.clone();
            let active = Arc::clone(&active);
            let faults = faults.clone();
            std::thread::Builder::new()
                .name("astra-net-conn".to_string())
                .spawn(move || {
                    serve_connection(stream, handle, config, telemetry, active, faults, seq)
                })
                .expect("spawn connection reader")
        };
        conns.lock().unwrap().push((registered, reader));
    }
}

/// The TCP front end: one accept thread plus one reader thread per live
/// connection, all submitting into the shared [`ServiceHandle`].
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port — see [`NetServer::local_addr`]) and start accepting.
    pub fn start(
        handle: ServiceHandle,
        addr: &str,
        config: NetConfig,
        telemetry: Telemetry,
    ) -> io::Result<NetServer> {
        NetServer::start_with_faults(handle, addr, config, telemetry, FaultPlan::disabled())
    }

    /// [`NetServer::start`] with transport fault injection (chaos
    /// testing only): `faults` rules at [`FaultSite::ConnReset`] and
    /// [`FaultSite::ShortWrite`] are evaluated per connection, keyed by
    /// the server's accept sequence number.
    pub fn start_with_faults(
        handle: ServiceHandle,
        addr: &str,
        config: NetConfig,
        telemetry: Telemetry,
        faults: FaultPlan,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("astra-net-accept".to_string())
                .spawn(move || {
                    accept_loop(
                        listener, handle, config, telemetry, shutdown, conns, active, faults,
                    )
                })
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address — the way to learn the port after binding
    /// `host:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, close every live connection, and join all
    /// threads. Idempotent; also runs on drop. The daemon behind the
    /// handle keeps running — shut it down separately (after this) to
    /// drain queued jobs.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // accept() has no timeout; a throwaway self-connection wakes it
        // so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (stream, _) in &conns {
            // Unblocks readers parked in fill_buf; their next read sees
            // EOF and the thread exits.
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, join) in conns {
            let _ = join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

// ---------------------------------------------------------------- client

/// Capped exponential backoff with deterministic jitter, for client
/// reconnects. Delays are a pure function of `(policy, attempt)` —
/// jitter comes from [`derive_seed`], not a clock — so tests can
/// assert the exact retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total connection attempts (≥ 1) before giving up.
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base_ms: u64,
    /// Ceiling on the un-jittered delay.
    pub cap_ms: u64,
    /// Jitter seed; the same seed replays the same schedule.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            attempts: 5,
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay after failed attempt number `attempt` (0-based):
    /// `min(cap, base·2^attempt)`, then jittered into the upper half of
    /// that window (`[delay/2, delay]`) so synchronized clients
    /// desynchronize without ever retrying sooner than half the nominal
    /// delay.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let nominal = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        let half = nominal / 2;
        let jitter = if half == 0 {
            0
        } else {
            derive_seed(self.seed, attempt as u64) % (half + 1)
        };
        half + jitter
    }
}

/// A synchronous line-protocol client over one TCP connection. Reads
/// the server hello at connect time; every request is one written line
/// answered by exactly one response line.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    hello: Value,
}

impl NetClient {
    /// Connect and consume the hello line.
    pub fn connect(addr: &str) -> io::Result<NetClient> {
        let writer = TcpStream::connect(addr)?;
        // See the server-side note: Nagle + delayed ACKs would add
        // ~40ms to every request line of this one-line-per-turn
        // protocol.
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut hello_text = String::new();
        reader.read_line(&mut hello_text)?;
        let hello: Value = serde_json::from_str(hello_text.trim_end()).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad server hello: {e}"))
        })?;
        Ok(NetClient {
            reader,
            writer,
            hello,
        })
    }

    /// [`NetClient::connect`] with retries under `policy`: each failed
    /// attempt sleeps [`BackoffPolicy::delay_ms`] before the next. The
    /// recovery companion to the server's injected connection resets —
    /// a client that lost its connection mid-conversation reconnects
    /// with bounded, de-synchronized pressure instead of a tight loop.
    pub fn connect_with_backoff(addr: &str, policy: BackoffPolicy) -> io::Result<NetClient> {
        let attempts = policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match NetClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(std::time::Duration::from_millis(
                            policy.delay_ms(attempt),
                        ));
                    }
                }
            }
        }
        Err(last_err.expect("at least one attempt was made"))
    }

    /// The server's hello object (`proto` carries the protocol version).
    pub fn hello(&self) -> &Value {
        &self.hello
    }

    /// Send one raw line (no trailing newline) and read the raw
    /// response line. The escape hatch for testing malformed frames.
    pub fn send_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send one request value and parse the response line.
    pub fn roundtrip(&mut self, request: &Value) -> io::Result<Value> {
        let response = self.send_raw(&encode(request))?;
        serde_json::from_str(&response).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }

    /// Submit a job; returns the full response (`id` on success).
    pub fn submit(&mut self, request: &JobRequest) -> io::Result<Value> {
        self.roundtrip(&json!({
            "op": "submit",
            "request": wire::job_request_to_json(request),
        }))
    }

    /// Submit a job and extract the assigned id, mapping protocol-level
    /// failure onto an error.
    pub fn submit_id(&mut self, request: &JobRequest) -> io::Result<JobId> {
        let response = self.submit(request)?;
        response
            .as_object()
            .filter(|o| o.get("ok") == Some(&Value::from(true)))
            .and_then(|o| o.get("id"))
            .and_then(|id| id.as_u64())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("submit refused: {}", encode(&response)),
                )
            })
    }

    /// Resubmit a prior job, optionally with a revised request — the
    /// interactive re-quote op. The server plans the new job through its
    /// session cache, patching the prior session in place when the
    /// revision is a patchable delta. Returns the full response (`id`
    /// and `prior` on success; `UNKNOWN_JOB` if the daemon never issued
    /// `prior`).
    pub fn resubmit(&mut self, prior: JobId, revised: Option<&JobRequest>) -> io::Result<Value> {
        let mut request = json!({ "op": "resubmit", "id": prior });
        if let (Value::Object(obj), Some(revised)) = (&mut request, revised) {
            obj.insert(
                "request".to_string(),
                wire::job_request_to_json(revised),
            );
        }
        self.roundtrip(&request)
    }

    /// Resubmit and extract the new job id, mapping protocol-level
    /// failure onto an error.
    pub fn resubmit_id(&mut self, prior: JobId, revised: Option<&JobRequest>) -> io::Result<JobId> {
        let response = self.resubmit(prior, revised)?;
        response
            .as_object()
            .filter(|o| o.get("ok") == Some(&Value::from(true)))
            .and_then(|o| o.get("id"))
            .and_then(|id| id.as_u64())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("resubmit refused: {}", encode(&response)),
                )
            })
    }

    /// Poll one job's snapshot (response `job` field).
    pub fn status(&mut self, id: JobId) -> io::Result<Value> {
        self.roundtrip(&json!({ "op": "status", "id": id }))
    }

    /// Block until the job is terminal; the response carries its final
    /// snapshot. The server holds this connection's turn while waiting,
    /// so interleave awaits with other traffic on separate connections.
    pub fn await_done(&mut self, id: JobId) -> io::Result<Value> {
        self.roundtrip(&json!({ "op": "await", "id": id }))
    }

    /// Liveness + protocol-version check.
    pub fn ping(&mut self) -> io::Result<Value> {
        self.roundtrip(&json!({ "op": "ping" }))
    }

    /// Daemon occupancy counters.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.roundtrip(&json!({ "op": "stats" }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reader_splits_and_resyncs() {
        let data = b"short\r\nway-too-long-line\nnext\n";
        let mut reader = BufReader::new(&data[..]);
        match read_line_capped(&mut reader, 8).unwrap() {
            ReadLine::Line(line) => assert_eq!(line, b"short"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(
            read_line_capped(&mut reader, 8).unwrap(),
            ReadLine::Oversize
        ));
        match read_line_capped(&mut reader, 8).unwrap() {
            ReadLine::Line(line) => assert_eq!(line, b"next"),
            _ => panic!("oversize line did not resync"),
        }
        assert!(matches!(
            read_line_capped(&mut reader, 8).unwrap(),
            ReadLine::Eof
        ));
    }

    #[test]
    fn unterminated_final_line_is_still_a_line() {
        let mut reader = BufReader::new(&b"tail"[..]);
        match read_line_capped(&mut reader, 8).unwrap() {
            ReadLine::Line(line) => assert_eq!(line, b"tail"),
            _ => panic!("expected the unterminated tail"),
        }
    }

    #[test]
    fn hello_is_stable() {
        assert_eq!(
            hello_line(),
            r#"{"ok":true,"op":"hello","proto":"astra.jobs/1"}"#
        );
    }

    #[test]
    fn backoff_is_deterministic_capped_and_bounded() {
        let policy = BackoffPolicy::default();
        let schedule: Vec<u64> = (0..8).map(|a| policy.delay_ms(a)).collect();
        // Pure function: same policy, same schedule.
        assert_eq!(
            schedule,
            (0..8).map(|a| policy.delay_ms(a)).collect::<Vec<u64>>()
        );
        for (attempt, &delay) in schedule.iter().enumerate() {
            let nominal = (policy.base_ms << attempt.min(32)).min(policy.cap_ms);
            assert!(
                delay >= nominal / 2 && delay <= nominal,
                "attempt {attempt}: delay {delay} outside [{}, {nominal}]",
                nominal / 2
            );
        }
        // Different seeds give different jitter somewhere.
        let other = BackoffPolicy {
            seed: 1,
            ..BackoffPolicy::default()
        };
        assert_ne!(
            schedule,
            (0..8).map(|a| other.delay_ms(a)).collect::<Vec<u64>>()
        );
    }
}
