//! Run a compiled job on the discrete-event FaaS simulator.

use astra_core::Plan;
use astra_faas::{FaasSim, SimConfig, SimError, SimReport};
use astra_model::JobSpec;
use rayon::prelude::*;

use crate::compile::compile;

/// Compile `plan` and execute it on the simulator.
///
/// With `config.noise_cv == 0` and `platform.cold_start_s == 0`, the
/// returned makespan matches the analytical model's prediction for
/// uniform-object jobs (the `model_vs_sim` integration tests assert it);
/// with realistic noise and cold starts, the gap is the model error the
/// paper's predictor also incurs.
pub fn simulate(job: &JobSpec, plan: &Plan, config: SimConfig) -> Result<SimReport, SimError> {
    let compiled = compile(job, plan);
    let sim = FaasSim::new(config, &compiled.inputs);
    sim.run(compiled.roots)
}

/// One entry of a [`simulate_batch`] sweep.
#[derive(Debug, Clone)]
pub struct SimCase<'a> {
    /// The job to simulate.
    pub job: &'a JobSpec,
    /// The execution plan.
    pub plan: &'a Plan,
    /// Engine parameters (noise CV and seed distinguish replications).
    pub config: SimConfig,
}

/// Compile and execute every case in parallel across all cores.
///
/// Each case is compiled and simulated independently inside the worker,
/// and results are collected in input order — so the returned vector is
/// bit-identical to `cases.map(|c| simulate(c.job, c.plan, c.config))`
/// run serially, at any `RAYON_NUM_THREADS`. This is the fan-out point
/// for the experiment harness's Monte-Carlo sweeps: seeds × plans × jobs
/// flatten into one batch and saturate the machine.
///
/// When a case's telemetry handle is enabled, the case is wrapped in a
/// wall-clock span on a per-worker-thread track (`sweep-worker-…`), so a
/// Chrome trace shows how the sweep was scheduled across cores. Purely
/// observational: the reports are unchanged.
pub fn simulate_batch(cases: Vec<SimCase<'_>>) -> Vec<Result<SimReport, SimError>> {
    cases
        .into_par_iter()
        .enumerate()
        .with_min_len(1)
        .map(|(index, c)| {
            let tel = c.config.telemetry.clone();
            let _span = if tel.enabled() {
                let track = format!("sweep-worker-{:?}", std::thread::current().id());
                let name = format!("case-{index}-{}", c.job.name);
                Some(tel.wall_span(track, name, "sim_case"))
            } else {
                None
            };
            simulate(c.job, c.plan, c.config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::{Plan, PlanSpec, ReduceSpec};
    use astra_model::{Platform, WorkloadProfile};
    use astra_pricing::PriceCatalog;
    use astra_simcore::summary::relative_error;

    fn setup(
        n: usize,
        size_mb: f64,
        k_m: usize,
        k_r: usize,
        mems: (u32, u32, u32),
    ) -> (JobSpec, Platform, Plan) {
        let job = JobSpec::uniform("sim", n, size_mb, WorkloadProfile::uniform_test());
        let mut platform = Platform::paper_literal(10.0);
        platform.cold_start_s = 0.0;
        let plan = Plan::evaluate(
            &job,
            &platform,
            &PriceCatalog::aws_2020(),
            PlanSpec {
                mapper_mem_mb: mems.0,
                coordinator_mem_mb: mems.1,
                reducer_mem_mb: mems.2,
                objects_per_mapper: k_m,
                reduce_spec: ReduceSpec::PerReducer(k_r),
            },
        )
        .unwrap();
        (job, platform, plan)
    }

    #[test]
    fn noise_free_sim_matches_model_jct() {
        for (k_m, k_r) in [(1, 2), (2, 2), (3, 4), (5, 2), (10, 2)] {
            let (job, platform, plan) = setup(10, 1.0, k_m, k_r, (128, 128, 128));
            let report =
                simulate(&job, &plan, SimConfig::deterministic(platform.clone())).unwrap();
            let err = relative_error(report.jct_s(), plan.predicted_jct_s());
            assert!(
                err < 1e-6,
                "k_m={k_m} k_r={k_r}: sim {} vs model {} (err {err})",
                report.jct_s(),
                plan.predicted_jct_s()
            );
        }
    }

    #[test]
    fn noise_free_sim_matches_model_cost() {
        let (job, platform, plan) = setup(10, 1.0, 2, 2, (128, 256, 1024));
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        // Lambda bills match exactly (same durations, same rounding);
        // storage differs slightly (ledger integral vs phase approximation)
        // so compare totals loosely and requests exactly.
        let err = relative_error(
            report.total_cost().dollars(),
            plan.predicted_cost().dollars(),
        );
        assert!(err < 0.02, "cost err {err}");
        // Request counts: model says N + j(puts) ... compare GET/PUT tallies.
        let structure = &plan.evaluation.perf.reduce.structure;
        let expected_gets = job.num_objects() as u64
            + structure
                .steps
                .iter()
                .map(|s| s.input_objects() as u64 + s.reducers() as u64)
                .sum::<u64>();
        let expected_puts =
            plan.mappers() as u64 + structure.num_steps() as u64 + plan.reducers() as u64;
        assert_eq!(report.ledger.gets, expected_gets);
        assert_eq!(report.ledger.puts, expected_puts);
    }

    #[test]
    fn invocation_roster_is_complete() {
        let (job, platform, plan) = setup(10, 1.0, 2, 2, (128, 128, 128));
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        // 5 mappers + 1 coordinator + 6 reducers (3+2+1); driver unbilled.
        assert_eq!(report.invocation_count(), 12);
        assert!(report.invoice("client-driver").is_none());
        assert!(report.invoice("coordinator").is_some());
        assert!(report.invoice("reducer-3-0").is_some());
    }

    #[test]
    fn coordinator_exits_before_final_step() {
        let (job, platform, plan) = setup(10, 1.0, 2, 2, (128, 128, 128));
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        let coord = report.invoice("coordinator").unwrap();
        let last_reducer = report.invoice("reducer-3-0").unwrap();
        assert!(
            coord.finished <= last_reducer.started,
            "coordinator must fire-and-forget the final step"
        );
        // And the job ends when the last reducer's PUT lands (after its
        // handler finish plus nothing else).
        assert!(report.makespan.as_secs_f64() >= last_reducer.finished.as_secs_f64());
    }

    #[test]
    fn bigger_memory_runs_faster_but_bills_more_per_second() {
        let (job, platform, small_plan) = setup(10, 2.0, 2, 2, (128, 128, 128));
        let (_, _, big_plan) = setup(10, 2.0, 2, 2, (1792, 1792, 1792));
        let small = simulate(&job, &small_plan, SimConfig::deterministic(platform.clone())).unwrap();
        let big = simulate(&job, &big_plan, SimConfig::deterministic(platform)).unwrap();
        assert!(big.jct_s() < small.jct_s());
    }

    #[test]
    fn cold_starts_lengthen_the_sim_but_not_the_model() {
        let (job, mut platform, plan) = setup(10, 1.0, 2, 2, (128, 128, 128));
        platform.cold_start_s = 1.0;
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        // 1 s per launch wave: mappers, coordinator, three reducer steps.
        assert!(report.jct_s() > plan.predicted_jct_s() + 4.0);
    }

    #[test]
    fn cache_intermediate_sim_matches_model() {
        // The ephemeral-storage extension: with an ElastiCache-like tier,
        // the noise-free simulator still reproduces the model exactly —
        // timing (cache latency/bandwidth) and billing (rent instead of
        // requests) both flow through the same Platform.
        let job = JobSpec::uniform("cache", 10, 5.0, WorkloadProfile::uniform_test());
        let mut platform = Platform::paper_literal(20.0).with_elasticache();
        platform.cold_start_s = 0.0;
        let plan = Plan::evaluate(
            &job,
            &platform,
            &PriceCatalog::aws_2020(),
            PlanSpec {
                mapper_mem_mb: 512,
                coordinator_mem_mb: 256,
                reducer_mem_mb: 1024,
                objects_per_mapper: 2,
                reduce_spec: ReduceSpec::PerReducer(2),
            },
        )
        .unwrap();
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        let err = relative_error(report.jct_s(), plan.predicted_jct_s());
        assert!(err < 1e-6, "jct err {err}");
        // Requests land on the intermediate ledger, not S3's.
        assert_eq!(report.ledger.puts, 0, "no S3 puts with a cache tier");
        assert!(report.inter_ledger.puts > 0);
        assert!(report.ephemeral_cost > astra_pricing::Money::ZERO, "rent is billed");
        let cost_err = relative_error(
            report.total_cost().dollars(),
            plan.predicted_cost().dollars(),
        );
        assert!(cost_err < 0.02, "cost err {cost_err}");
    }

    #[test]
    fn explicit_step_plans_simulate_too() {
        let job = JobSpec::uniform("sim", 10, 1.0, WorkloadProfile::uniform_test());
        let mut platform = Platform::paper_literal(10.0);
        platform.cold_start_s = 0.0;
        let plan = Plan::evaluate(
            &job,
            &platform,
            &PriceCatalog::aws_2020(),
            PlanSpec {
                mapper_mem_mb: 128,
                coordinator_mem_mb: 128,
                reducer_mem_mb: 1536,
                objects_per_mapper: 1,
                reduce_spec: ReduceSpec::ExplicitSteps(vec![2, 1]),
            },
        )
        .unwrap();
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        assert_eq!(report.invoice("reducer-1-1").unwrap().memory_mb, 1536);
        let err = relative_error(report.jct_s(), plan.predicted_jct_s());
        assert!(err < 1e-6, "err {err}");
    }
}
