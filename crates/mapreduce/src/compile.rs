//! Compile an execution plan into FaaS op scripts.

use astra_core::Plan;
use astra_faas::{LambdaSpec, Op, StoreKind};
use astra_model::distribute::distribute_counts;
use astra_model::JobSpec;

use crate::keys;

/// The compiled form of one job: its input objects (pre-existing in the
/// store) and the root invocations to submit.
#[derive(Debug, Clone)]
pub struct CompiledJob {
    /// `(key, size_mb)` of every input object.
    pub inputs: Vec<(String, f64)>,
    /// Root specs: an unbilled client driver that runs the mappers, then
    /// fires the coordinator.
    pub roots: Vec<LambdaSpec>,
    /// The key under which the final result will appear.
    pub result_key: String,
}

/// Compile `plan` for `job` into simulator scripts.
///
/// The produced orchestration mirrors the paper's framework exactly:
///
/// * the *client driver* (the user's machine — unbilled) invokes all `j`
///   mappers concurrently, waits for the mapping phase, then invokes the
///   coordinator and exits;
/// * each *mapper* GETs its `k_M` input objects, computes, and PUTs one
///   shuffle object;
/// * the *coordinator* computes the step schedule, and for each step PUTs
///   a state object then invokes the step's reducers — waiting for every
///   step except the last, which it fires and forgets (paper Eq. 14);
/// * each *reducer* GETs the state object and its inputs, computes, and
///   PUTs one output object.
pub fn compile(job: &JobSpec, plan: &Plan) -> CompiledJob {
    let name = job.name.as_str();
    let profile = &job.profile;
    let structure = &plan.evaluation.perf.reduce.structure;

    let inputs: Vec<(String, f64)> = job
        .object_sizes_mb
        .iter()
        .enumerate()
        .map(|(i, &size)| (keys::input(name, i), size))
        .collect();

    // Mappers: consecutive greedy assignment of k_M objects each.
    let counts = distribute_counts(job.num_objects(), plan.spec.objects_per_mapper);
    let mut mappers = Vec::with_capacity(counts.len());
    let mut next_obj = 0usize;
    for (m, &count) in counts.iter().enumerate() {
        let my_objects = next_obj..next_obj + count;
        next_obj += count;
        let input_mb: f64 = my_objects.clone().map(|i| job.object_sizes_mb[i]).sum();
        let output_mb = input_mb * profile.shuffle_ratio;
        let mut ops: Vec<Op> = my_objects
            .map(|i| Op::Get {
                key: keys::input(name, i),
                store: StoreKind::Persistent,
            })
            .collect();
        ops.push(Op::Compute {
            secs_at_128: input_mb * profile.map_secs_per_mb_128,
        });
        ops.push(Op::Put {
            key: keys::shuffle(name, m),
            size_mb: output_mb,
            store: StoreKind::Ephemeral,
        });
        mappers.push(LambdaSpec::new(
            format!("mapper-{m}"),
            plan.spec.mapper_mem_mb,
            ops,
        ));
    }

    // Coordinator: plan compute, then per-step state PUT + reducer fanout.
    let num_steps = structure.num_steps();
    let mut coord_ops = vec![Op::Compute {
        secs_at_128: job.shuffle_mb() * profile.coord_secs_per_mb_128,
    }];
    for (p_idx, step) in structure.steps.iter().enumerate() {
        let p = p_idx + 1;
        coord_ops.push(Op::Put {
            key: keys::state(name, p),
            size_mb: profile.state_object_mb,
            store: StoreKind::Ephemeral,
        });
        let mut reducers = Vec::with_capacity(step.reducers());
        let mut next_input = 0usize;
        for (r, objs) in step.assignments.iter().enumerate() {
            let my_inputs = next_input..next_input + objs.len();
            next_input += objs.len();
            let input_mb: f64 = objs.iter().sum();
            let mut ops = vec![Op::Get {
                key: keys::state(name, p),
                store: StoreKind::Ephemeral,
            }];
            ops.extend(my_inputs.map(|idx| Op::Get {
                key: keys::step_input(name, p, idx),
                store: StoreKind::Ephemeral,
            }));
            ops.push(Op::Compute {
                secs_at_128: input_mb * profile.reduce_secs_per_mb_128,
            });
            ops.push(Op::Put {
                key: keys::reduce_out(name, p, r),
                size_mb: step.output_sizes[r],
                store: StoreKind::Ephemeral,
            });
            reducers.push(LambdaSpec::new(
                format!("reducer-{p}-{r}"),
                plan.spec.reducer_mem_mb,
                ops,
            ));
        }
        coord_ops.push(Op::Spawn {
            children: reducers,
            wait: p < num_steps, // final step is fire-and-forget (Eq. 14)
        });
    }
    let coordinator = LambdaSpec::new("coordinator", plan.spec.coordinator_mem_mb, coord_ops);

    let driver = LambdaSpec::client_driver(
        "client-driver",
        vec![
            Op::Spawn {
                children: mappers,
                wait: true,
            },
            Op::Spawn {
                children: vec![coordinator],
                wait: false,
            },
        ],
    );

    CompiledJob {
        inputs,
        roots: vec![driver],
        result_key: keys::result(name, num_steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::{Plan, PlanSpec, ReduceSpec};
    use astra_model::{Platform, WorkloadProfile};
    use astra_pricing::PriceCatalog;

    fn compiled(n: usize, k_m: usize, k_r: usize) -> (JobSpec, CompiledJob) {
        let job = JobSpec::uniform("job", n, 1.0, WorkloadProfile::uniform_test());
        let plan = Plan::evaluate(
            &job,
            &Platform::paper_literal(10.0),
            &PriceCatalog::aws_2020(),
            PlanSpec {
                mapper_mem_mb: 128,
                coordinator_mem_mb: 256,
                reducer_mem_mb: 512,
                objects_per_mapper: k_m,
                reduce_spec: ReduceSpec::PerReducer(k_r),
            },
        )
        .unwrap();
        let c = compile(&job, &plan);
        (job, c)
    }

    fn driver_children(c: &CompiledJob) -> (&[LambdaSpec], &LambdaSpec) {
        assert_eq!(c.roots.len(), 1);
        let driver = &c.roots[0];
        assert!(driver.client);
        let Op::Spawn { children: mappers, wait: true } = &driver.ops[0] else {
            panic!("driver op 0 should spawn-wait mappers");
        };
        let Op::Spawn { children: coord, wait: false } = &driver.ops[1] else {
            panic!("driver op 1 should fire the coordinator");
        };
        (mappers, &coord[0])
    }

    #[test]
    fn table_one_structure_compiles() {
        // 10 objects, k_M = 2, k_R = 2: 5 mappers, steps (3, 2, 1).
        let (_, c) = compiled(10, 2, 2);
        let (mappers, coordinator) = driver_children(&c);
        assert_eq!(mappers.len(), 5);
        assert_eq!(coordinator.name, "coordinator");
        // Coordinator: 1 compute + 3x (put + spawn) = 7 ops.
        assert_eq!(coordinator.ops.len(), 7);
        let spawns: Vec<(usize, bool)> = coordinator
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Spawn { children, wait } => Some((children.len(), *wait)),
                _ => None,
            })
            .collect();
        assert_eq!(spawns, vec![(3, true), (2, true), (1, false)]);
    }

    #[test]
    fn mapper_scripts_read_their_objects() {
        let (_, c) = compiled(10, 3, 2);
        let (mappers, _) = driver_children(&c);
        assert_eq!(mappers.len(), 4); // ceil(10/3)
        // Mapper 3 (last) gets only the remainder object.
        let gets = mappers[3]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Get { .. }))
            .count();
        assert_eq!(gets, 1);
        let gets0 = mappers[0]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Get { .. }))
            .count();
        assert_eq!(gets0, 3);
        assert_eq!(mappers[0].memory_mb, 128);
    }

    #[test]
    fn reducer_scripts_chain_between_steps() {
        let (_, c) = compiled(10, 2, 2);
        let (_, coordinator) = driver_children(&c);
        // Step 2's reducers must read step 1's outputs.
        let Op::Spawn { children: step2, .. } = &coordinator.ops[4] else {
            panic!();
        };
        let Op::Get { key, .. } = &step2[0].ops[1] else {
            panic!("first data get");
        };
        assert_eq!(key, &keys::reduce_out("job", 1, 0));
        // And each reducer reads the step's state object first.
        let Op::Get { key: state_key, .. } = &step2[0].ops[0] else {
            panic!();
        };
        assert_eq!(state_key, &keys::state("job", 2));
    }

    #[test]
    fn result_key_points_at_last_step() {
        let (_, c) = compiled(10, 2, 2);
        assert_eq!(c.result_key, keys::reduce_out("job", 3, 0));
    }

    #[test]
    fn inputs_enumerate_all_objects() {
        let (job, c) = compiled(7, 2, 2);
        assert_eq!(c.inputs.len(), 7);
        let total: f64 = c.inputs.iter().map(|(_, s)| s).sum();
        assert!((total - job.total_mb()).abs() < 1e-12);
    }
}
