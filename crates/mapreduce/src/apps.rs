//! The application interface for real (byte-level) MapReduce runs.

use bytes::Bytes;

/// An analytics application runnable on the byte-level runtime.
///
/// The contract mirrors the serverless framework the paper builds on:
/// a mapper turns raw input bytes into an *intermediate representation*,
/// and a reducer merges intermediate objects into one. `reduce` must be
/// associative — the coordinator may merge in any tree shape (the step
/// schedule), and the final result must not depend on it. The
/// `reduce_associativity` property tests in `astra-workloads` check this
/// for every shipped app.
pub trait MapReduceApp: Send + Sync {
    /// Application name (diagnostics only).
    fn name(&self) -> &str;

    /// Transform one mapper's concatenated input bytes into an
    /// intermediate object.
    fn map(&self, input: &[u8]) -> Vec<u8>;

    /// Merge intermediate objects (mapper outputs or previous reduce
    /// outputs) into one.
    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8>;
}

/// A trivial app for engine tests: map is identity, reduce concatenates.
#[derive(Debug, Default)]
pub struct ConcatApp;

impl MapReduceApp for ConcatApp {
    fn name(&self) -> &str {
        "concat"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in inputs {
            out.extend_from_slice(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_app_roundtrips() {
        let app = ConcatApp;
        assert_eq!(app.map(b"abc"), b"abc");
        let merged = app.reduce(&[Bytes::from_static(b"ab"), Bytes::from_static(b"cd")]);
        assert_eq!(merged, b"abcd");
    }
}
