#![warn(missing_docs)]

//! Serverless MapReduce engine — the executable counterpart of the
//! paper's Fig. 4 workflow.
//!
//! Three lambda roles (mapper, coordinator, reducer) exchange every byte
//! through the object store. This crate materialises an
//! `astra_core::Plan` in two ways:
//!
//! * [`compile()`](compile::compile) + [`simulate()`](simulate::simulate)
//!   — compile the plan into `astra-faas` op
//!   scripts and execute them on the discrete-event simulator. This is
//!   how the paper-scale experiments (GB inputs, hundreds of lambdas)
//!   "run": data is represented by sizes, timing and billing are
//!   physical. Used for every figure in EXPERIMENTS.md.
//! * [`local`] — execute the *same orchestration* with real threads over
//!   real bytes in a [`MemStore`](astra_storage::MemStore), with the
//!   user-supplied [`apps::MapReduceApp`] doing actual
//!   analytics. This validates end-to-end correctness: wordcount counts,
//!   sort orders, query aggregates (see `astra-workloads`).
//!
//! The two paths share [`keys`] (object naming) and the plan's schedule,
//! so a dataflow bug would fail both the simulator's missing-object check
//! and the byte-level output assertions.

pub mod apps;
pub mod compile;
pub mod keys;
pub mod local;
pub mod simulate;

pub use apps::MapReduceApp;
pub use compile::{compile, CompiledJob};
pub use local::{run_local, LocalReport};
pub use simulate::{simulate, simulate_batch, SimCase};
