//! The real (byte-level) runtime: the same orchestration as the
//! simulator, executed by threads over a [`MemStore`].

use std::sync::Arc;
use std::time::Instant;

use astra_core::Plan;
use astra_model::distribute::distribute_counts;
use astra_model::JobSpec;
use astra_storage::MemStore;
use bytes::Bytes;
use rayon::prelude::*;

use crate::apps::MapReduceApp;
use crate::keys;

/// Outcome of a byte-level run.
#[derive(Debug)]
pub struct LocalReport {
    /// Key of the final result object (still in the store).
    pub result_key: String,
    /// The final result bytes.
    pub result: Bytes,
    /// Mappers executed.
    pub mappers: usize,
    /// Reducers executed (all steps).
    pub reducers: usize,
    /// Reduce steps executed.
    pub steps: usize,
    /// Wall-clock duration of the whole run.
    pub wall: std::time::Duration,
}

/// Errors from the byte-level runtime.
#[derive(Debug)]
pub enum LocalError {
    /// An input object named by the job is missing from the store.
    MissingInput(String),
}

impl std::fmt::Display for LocalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalError::MissingInput(k) => write!(f, "missing input object {k}"),
        }
    }
}

impl std::error::Error for LocalError {}

/// Execute `plan` for `job` over real bytes.
///
/// Expects the job's input objects at `keys::input(job.name, i)` in
/// `store`. Mappers run in parallel (rayon), then each reduce step's
/// reducers run in parallel with a barrier between steps — exactly the
/// coordinator semantics of the simulated runtime. Object counts per
/// mapper/reducer follow the plan's schedule, so the dataflow graph is
/// identical to the simulated one.
pub fn run_local(
    job: &JobSpec,
    plan: &Plan,
    store: &Arc<MemStore>,
    app: &dyn MapReduceApp,
) -> Result<LocalReport, LocalError> {
    let t0 = Instant::now();
    let name = job.name.as_str();

    for i in 0..job.num_objects() {
        let key = keys::input(name, i);
        if !store.contains(&key) {
            return Err(LocalError::MissingInput(key));
        }
    }

    // Mapping phase.
    let counts = distribute_counts(job.num_objects(), plan.spec.objects_per_mapper);
    let mut ranges = Vec::with_capacity(counts.len());
    let mut next = 0usize;
    for &c in &counts {
        ranges.push(next..next + c);
        next += c;
    }
    ranges
        .into_par_iter()
        .enumerate()
        .for_each(|(m, range)| {
            let mut input = Vec::new();
            for i in range {
                let obj = store.get(&keys::input(name, i)).expect("checked above");
                input.extend_from_slice(&obj);
            }
            let out = app.map(&input);
            store.put(keys::shuffle(name, m), out);
        });

    // Reducing phase: the plan's schedule gives per-step reducer object
    // counts; sizes in the schedule are model estimates, the counts are
    // what the coordinator actually uses.
    let structure = &plan.evaluation.perf.reduce.structure;
    let mut total_reducers = 0usize;
    for (p_idx, step) in structure.steps.iter().enumerate() {
        let p = p_idx + 1;
        // The coordinator writes the state object (content: reducer count
        // + object count, as the paper describes).
        let state = format!(
            "step={p} reducers={} objects={}\n",
            step.reducers(),
            step.input_objects()
        );
        store.put(keys::state(name, p), state.into_bytes());

        let mut assignments = Vec::with_capacity(step.reducers());
        let mut next_input = 0usize;
        for objs in &step.assignments {
            assignments.push(next_input..next_input + objs.len());
            next_input += objs.len();
        }
        total_reducers += assignments.len();
        assignments.into_par_iter().enumerate().for_each(|(r, range)| {
            let inputs: Vec<Bytes> = range
                .map(|idx| {
                    store
                        .get(&keys::step_input(name, p, idx))
                        .expect("producer ran in a previous step")
                })
                .collect();
            let out = app.reduce(&inputs);
            store.put(keys::reduce_out(name, p, r), out);
        });
    }

    let result_key = keys::result(name, structure.num_steps());
    let result = store.get(&result_key).expect("final reducer wrote it");
    Ok(LocalReport {
        result_key,
        result,
        mappers: counts.len(),
        reducers: total_reducers,
        steps: structure.num_steps(),
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::ConcatApp;
    use astra_core::{PlanSpec, ReduceSpec};
    use astra_model::{Platform, WorkloadProfile};
    use astra_pricing::PriceCatalog;

    fn plan_for(job: &JobSpec, k_m: usize, k_r: usize) -> Plan {
        Plan::evaluate(
            job,
            &Platform::paper_literal(10.0),
            &PriceCatalog::aws_2020(),
            PlanSpec {
                mapper_mem_mb: 128,
                coordinator_mem_mb: 128,
                reducer_mem_mb: 128,
                objects_per_mapper: k_m,
                reduce_spec: ReduceSpec::PerReducer(k_r),
            },
        )
        .unwrap()
    }

    fn store_with_inputs(job: &JobSpec, payload: impl Fn(usize) -> Vec<u8>) -> Arc<MemStore> {
        let store = Arc::new(MemStore::new());
        for i in 0..job.num_objects() {
            store.put(keys::input(&job.name, i), payload(i));
        }
        store
    }

    #[test]
    fn concat_preserves_every_input_byte_in_order() {
        let job = JobSpec::uniform("local", 10, 0.001, WorkloadProfile::uniform_test());
        let plan = plan_for(&job, 2, 2);
        let store = store_with_inputs(&job, |i| format!("[obj{i}]").into_bytes());
        let report = run_local(&job, &plan, &store, &ConcatApp).unwrap();
        // Consecutive assignment at every level keeps global order.
        let expected: String = (0..10).map(|i| format!("[obj{i}]")).collect();
        assert_eq!(report.result, Bytes::from(expected.into_bytes()));
        assert_eq!(report.mappers, 5);
        assert_eq!(report.steps, 3);
        assert_eq!(report.reducers, 6);
    }

    #[test]
    fn single_mapper_single_reducer() {
        let job = JobSpec::uniform("local1", 3, 0.001, WorkloadProfile::uniform_test());
        let plan = plan_for(&job, 3, 2);
        let store = store_with_inputs(&job, |i| vec![b'a' + i as u8]);
        let report = run_local(&job, &plan, &store, &ConcatApp).unwrap();
        assert_eq!(report.result, Bytes::from_static(b"abc"));
        assert_eq!(report.mappers, 1);
        assert_eq!(report.steps, 1);
    }

    #[test]
    fn missing_input_is_reported() {
        let job = JobSpec::uniform("missing", 2, 0.001, WorkloadProfile::uniform_test());
        let plan = plan_for(&job, 1, 2);
        let store = Arc::new(MemStore::new());
        store.put(keys::input("missing", 0), vec![1]);
        let err = run_local(&job, &plan, &store, &ConcatApp).unwrap_err();
        assert!(err.to_string().contains("input/000001"));
    }

    #[test]
    fn state_objects_are_written() {
        let job = JobSpec::uniform("state", 10, 0.001, WorkloadProfile::uniform_test());
        let plan = plan_for(&job, 2, 2);
        let store = store_with_inputs(&job, |_| vec![0u8]);
        run_local(&job, &plan, &store, &ConcatApp).unwrap();
        for p in 1..=3 {
            let state = store.get(&keys::state("state", p)).unwrap();
            let text = String::from_utf8(state.to_vec()).unwrap();
            assert!(text.contains(&format!("step={p}")), "{text}");
        }
    }

    #[test]
    fn request_counts_match_model_prediction() {
        // The MemStore's GET/PUT counters should line up with what the
        // cost model bills (modulo the driver's existence checks which use
        // contains(), not get()).
        let job = JobSpec::uniform("req", 10, 0.001, WorkloadProfile::uniform_test());
        let plan = plan_for(&job, 2, 2);
        let store = store_with_inputs(&job, |_| vec![0u8]);
        let before_puts = store.put_count();
        run_local(&job, &plan, &store, &ConcatApp).unwrap();
        // PUTs: 5 shuffle + 3 state + 6 reduce outputs = 14.
        assert_eq!(store.put_count() - before_puts, 14);
        // GETs: 10 inputs + step inputs (5 + 3 + 2) + 1 final read = 21.
        // (Real reducers don't GET the state object — its content is only
        // needed by the coordinator logic, which runs in-process here.)
        assert_eq!(store.get_count(), 21);
    }
}
