//! Object-key naming conventions shared by the simulated and the real
//! runtime.

/// Key of input object `i`.
pub fn input(job: &str, i: usize) -> String {
    format!("{job}/input/{i:06}")
}

/// Key of mapper `m`'s output (shuffle) object.
pub fn shuffle(job: &str, m: usize) -> String {
    format!("{job}/shuffle/{m:06}")
}

/// Key of the coordinator's state object for reduce step `p` (1-based).
pub fn state(job: &str, p: usize) -> String {
    format!("{job}/state/{p:03}")
}

/// Key of reducer `r`'s output in step `p` (1-based step).
pub fn reduce_out(job: &str, p: usize, r: usize) -> String {
    format!("{job}/reduce/{p:03}/{r:06}")
}

/// Key of the final result object (the last step's single reducer).
pub fn result(job: &str, num_steps: usize) -> String {
    reduce_out(job, num_steps, 0)
}

/// The key a reducer in step `p` reads for its `idx`-th input: mapper
/// shuffle output for step 1, the previous step's reducer output after.
pub fn step_input(job: &str, p: usize, idx: usize) -> String {
    if p == 1 {
        shuffle(job, idx)
    } else {
        reduce_out(job, p - 1, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_and_sortable() {
        assert_eq!(input("j", 3), "j/input/000003");
        assert_eq!(shuffle("j", 12), "j/shuffle/000012");
        assert_eq!(state("j", 2), "j/state/002");
        assert_eq!(reduce_out("j", 1, 0), "j/reduce/001/000000");
        assert!(input("j", 2) < input("j", 10), "zero padding keeps order");
    }

    #[test]
    fn step_inputs_chain_correctly() {
        assert_eq!(step_input("j", 1, 4), shuffle("j", 4));
        assert_eq!(step_input("j", 2, 1), reduce_out("j", 1, 1));
        assert_eq!(step_input("j", 3, 0), reduce_out("j", 2, 0));
    }

    #[test]
    fn result_is_last_step_reducer_zero() {
        assert_eq!(result("j", 3), reduce_out("j", 3, 0));
    }
}
