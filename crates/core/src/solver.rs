//! Solver strategies over the planner DAG.

use astra_graph::csp::{
    constrained_shortest_path, constrained_shortest_path_with_bounds_on, dag_potentials_on,
    dag_potentials_resume_on, Potentials,
};
use astra_graph::yen::KShortestPaths;
use astra_model::{evaluate, JobConfig, JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::alg1::{algorithm1_capped, algorithm1_guided_capped};
use crate::cache::ModelCache;
use crate::dag::PlannerDag;
use crate::objective::Objective;
use crate::space::ConfigSpace;

/// How to solve the constrained optimization on the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Strategy {
    /// The paper's Algorithm 1 (Dijkstra + offending-edge removal).
    Algorithm1,
    /// Exact Pareto-label constrained shortest path (default).
    #[default]
    ExactCsp,
    /// Yen's k-shortest paths in objective order until one is feasible
    /// (exact; can enumerate many paths when the bound is tight).
    PathEnumeration,
    /// Brute force over the whole configuration space through the
    /// analytical model. Exponentially large with full tier lists — meant
    /// for validation on reduced spaces.
    Exhaustive,
}

/// Cap on paths examined by [`Strategy::PathEnumeration`] before giving up
/// (prevents pathological enumeration on infeasible-but-huge DAGs).
pub const MAX_ENUMERATED_PATHS: usize = 100_000;

/// Cap on Algorithm 1 edge removals (each removal costs one Dijkstra run;
/// see `alg1::algorithm1_capped`).
pub const MAX_ALG1_REMOVALS: usize = 500;

/// Extracts one metric from an edge (the objective or the constraint).
type MetricFn = Box<dyn Fn(&crate::dag::EdgeMetrics) -> f64>;

/// Tiny relative slack added to constraint bounds to make `<=`
/// comparisons robust to the floating-point noise of summing edge metrics
/// in a different order than the model does. Kept at 1e-9 so that an
/// accepted path can overshoot a $1 budget by at most a few nano-dollars.
const BOUND_EPS: f64 = 1e-9;

/// Solve `objective` on a built DAG. Returns the chosen configuration, or
/// `None` when no feasible configuration exists.
pub fn solve_on_dag(dag: &PlannerDag, objective: Objective, strategy: Strategy) -> Option<JobConfig> {
    let g = dag.graph();
    let (src, dst) = (dag.source(), dag.sink());
    // Primary weight and constraint metric per objective. Costs are
    // converted to micro-dollars so both metrics have comparable scale.
    let time = |m: &crate::dag::EdgeMetrics| m.time_s;
    let cost = |m: &crate::dag::EdgeMetrics| m.cost_nanos as f64 * 1e-3; // micro-dollars

    let (bound, primary, secondary): (f64, MetricFn, MetricFn) = match objective {
            Objective::MinimizeTime { budget } => (
                budget.nanos() as f64 * 1e-3,
                Box::new(time),
                Box::new(cost),
            ),
            Objective::MinimizeCost { deadline_s } => {
                (deadline_s, Box::new(cost), Box::new(time))
            }
        };

    let edges = match strategy {
        Strategy::Algorithm1 => algorithm1_capped(
            g,
            src,
            dst,
            bound * (1.0 + BOUND_EPS) + BOUND_EPS,
            MAX_ALG1_REMOVALS,
            |_, m| primary(m),
            |_, m| secondary(m),
        )
        .map(|sol| sol.path.edges),
        Strategy::ExactCsp => constrained_shortest_path(
            g,
            src,
            dst,
            bound * (1.0 + BOUND_EPS) + BOUND_EPS,
            |_, m| primary(m),
            |_, m| secondary(m),
        )
        .map(|sol| sol.edges),
        Strategy::PathEnumeration => {
            let mut ksp = KShortestPaths::new(g, src, dst, |_, m| primary(m));
            let mut found = None;
            for _ in 0..MAX_ENUMERATED_PATHS {
                match ksp.next() {
                    Some(path) => {
                        let used: f64 = path.edges.iter().map(|&e| secondary(g.edge(e))).sum();
                        if used <= bound * (1.0 + BOUND_EPS) + BOUND_EPS {
                            found = Some(path.edges);
                            break;
                        }
                    }
                    None => break,
                }
            }
            found
        }
        Strategy::Exhaustive => {
            unreachable!("Exhaustive does not run on the DAG; use solve_exhaustive")
        }
    }?;
    Some(dag.config_for_path(&edges))
}

/// Backward lower-bound potentials over a built planner DAG: per node,
/// the minimum remaining time (seconds) and the minimum remaining cost
/// (micro-dollars, the CSP's working unit) to the sink. Both are true
/// minima — admissible and consistent for either objective orientation —
/// so one computation serves every budget *and* deadline query against
/// the same DAG (see [`solve_on_dag_with_potentials`]).
#[derive(Debug, Clone)]
pub struct PlannerPotentials {
    min_time_to: Vec<f64>,
    min_cost_to: Vec<f64>,
}

impl PlannerPotentials {
    /// Compute both potentials in one reverse-topological sweep over the
    /// DAG's flat SoA edge store (cost: one linear pass over the edge
    /// arrays — same relaxation order, and therefore bit-identical
    /// values, as the arena-walking closure path it replaced).
    pub fn compute(dag: &PlannerDag) -> PlannerPotentials {
        let pots = dag_potentials_on(&mut dag.soa().time_view(), dag.sink().0)
            .expect("planner graph is acyclic by construction");
        PlannerPotentials {
            min_time_to: pots.min_weight_to,
            min_cost_to: pots.min_resource_to,
        }
    }

    /// Repair potentials after an in-place DAG recost, reusing this
    /// instance's values wherever `dirty_tails` proves they cannot have
    /// moved (see `dag_potentials_resume_on` — the result is
    /// bit-identical to a fresh [`PlannerPotentials::compute`]).
    pub(crate) fn resume(&self, dag: &PlannerDag, dirty_tails: &[bool]) -> PlannerPotentials {
        let prev = Potentials {
            min_weight_to: self.min_time_to.clone(),
            min_resource_to: self.min_cost_to.clone(),
        };
        let pots = dag_potentials_resume_on(
            &mut dag.soa().time_view(),
            dag.sink().0,
            &prev,
            dirty_tails,
        )
        .expect("planner graph is acyclic by construction");
        PlannerPotentials {
            min_time_to: pots.min_weight_to,
            min_cost_to: pots.min_resource_to,
        }
    }

    /// Per-node minimum remaining time to the sink (seconds).
    pub fn min_time_to(&self) -> &[f64] {
        &self.min_time_to
    }

    /// Per-node minimum remaining cost to the sink (micro-dollars).
    pub fn min_cost_to(&self) -> &[f64] {
        &self.min_cost_to
    }
}

/// [`solve_on_dag`] accelerated by precomputed [`PlannerPotentials`].
///
/// [`Strategy::ExactCsp`] runs the A*-guided, bound- and
/// incumbent-pruned label search over the DAG's flat SoA edge store
/// (exactness argument in `astra_graph::csp`; answers bit-identical to
/// the plain solver, which the equivalence suites gate).
/// [`Strategy::Algorithm1`] reuses the time (or cost) potential as an
/// admissible A* heuristic for every Dijkstra round of the paper's
/// edge-removal loop — masking edges only raises distances, so one
/// backward sweep serves all removals. The remaining strategies
/// delegate to the plain solver unchanged. When `telemetry` is enabled,
/// label-search effort is reported through the `planner.csp.labels_*`
/// counters and Algorithm 1 rounds through `planner.alg1.removals`.
pub fn solve_on_dag_with_potentials(
    dag: &PlannerDag,
    potentials: &PlannerPotentials,
    objective: Objective,
    strategy: Strategy,
    telemetry: &astra_telemetry::Telemetry,
) -> Option<JobConfig> {
    match strategy {
        Strategy::ExactCsp => {}
        Strategy::Algorithm1 => {
            let g = dag.graph();
            let (src, dst) = (dag.source(), dag.sink());
            let sol = match objective {
                Objective::MinimizeTime { budget } => algorithm1_guided_capped(
                    g,
                    src,
                    dst,
                    (budget.nanos() as f64 * 1e-3) * (1.0 + BOUND_EPS) + BOUND_EPS,
                    MAX_ALG1_REMOVALS,
                    &potentials.min_time_to,
                    |_, m| m.time_s,
                    |_, m| m.cost_nanos as f64 * 1e-3,
                ),
                Objective::MinimizeCost { deadline_s } => algorithm1_guided_capped(
                    g,
                    src,
                    dst,
                    deadline_s * (1.0 + BOUND_EPS) + BOUND_EPS,
                    MAX_ALG1_REMOVALS,
                    &potentials.min_cost_to,
                    |_, m| m.cost_nanos as f64 * 1e-3,
                    |_, m| m.time_s,
                ),
            };
            if telemetry.enabled() {
                if let Some(s) = &sol {
                    telemetry.counter("planner.alg1.removals", s.edges_removed as u64);
                }
            }
            return sol.map(|s| dag.config_for_path(&s.path.edges));
        }
        _ => return solve_on_dag(dag, objective, strategy),
    }
    let soa = dag.soa();
    let (src, dst) = (dag.source().0, dag.sink().0);
    let run = match objective {
        Objective::MinimizeTime { budget } => constrained_shortest_path_with_bounds_on(
            &mut soa.time_view(),
            src,
            dst,
            (budget.nanos() as f64 * 1e-3) * (1.0 + BOUND_EPS) + BOUND_EPS,
            &potentials.min_time_to,
            &potentials.min_cost_to,
        ),
        Objective::MinimizeCost { deadline_s } => constrained_shortest_path_with_bounds_on(
            &mut soa.cost_view(),
            src,
            dst,
            deadline_s * (1.0 + BOUND_EPS) + BOUND_EPS,
            &potentials.min_cost_to,
            &potentials.min_time_to,
        ),
    };
    if telemetry.enabled() {
        let s = run.stats;
        telemetry.counter("planner.csp.labels_created", s.labels_created);
        telemetry.counter("planner.csp.labels_settled", s.labels_settled);
        telemetry.counter("planner.csp.labels_pruned", s.pruned_total());
    }
    run.solution.map(|sol| dag.config_for_path(&sol.edges))
}

/// Brute-force reference solver: evaluate every configuration in `space`
/// with the analytical model and pick the constrained optimum.
///
/// Evaluations run in parallel through a shared [`ModelCache`]; the
/// reduction picks the lexicographic minimum of `(objective key,
/// enumeration index)`, which reproduces the serial first-wins tie-break
/// of [`solve_exhaustive_serial`] exactly for every thread count.
pub fn solve_exhaustive(
    job: &JobSpec,
    platform: &Platform,
    catalog: &PriceCatalog,
    space: &ConfigSpace,
    objective: Objective,
) -> Option<JobConfig> {
    solve_exhaustive_with_telemetry(
        job,
        platform,
        catalog,
        space,
        objective,
        &astra_telemetry::Telemetry::disabled(),
    )
}

/// [`solve_exhaustive`] with sweep telemetry: counts evaluated, feasible
/// and infeasible configurations (`planner.exhaustive.*`) and the shared
/// model-cache hit rate (`planner.cache.*`). The tallies are relaxed
/// atomics whose totals are interleaving-independent, and the chosen
/// plan is bit-identical to the untraced path.
pub fn solve_exhaustive_with_telemetry(
    job: &JobSpec,
    platform: &Platform,
    catalog: &PriceCatalog,
    space: &ConfigSpace,
    objective: Objective,
    telemetry: &astra_telemetry::Telemetry,
) -> Option<JobConfig> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let cache = ModelCache::new(job, platform);
    let configs: Vec<JobConfig> = space.iter_configs(job).collect();
    let traced = telemetry.enabled();
    let (evaluated, feasible_n, infeasible_n) =
        (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
    let best = configs
        .into_par_iter()
        .enumerate()
        .filter_map(|(idx, config)| {
            if traced {
                evaluated.fetch_add(1, Ordering::Relaxed);
            }
            let Ok(ev) = cache.evaluate(&config, catalog) else {
                if traced {
                    infeasible_n.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            };
            let (jct, bill) = (ev.jct_s(), ev.total_cost());
            let feasible = match objective {
                Objective::MinimizeTime { budget } => bill <= budget,
                Objective::MinimizeCost { deadline_s } => jct <= deadline_s,
            };
            if !feasible {
                if traced {
                    infeasible_n.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
            if traced {
                feasible_n.fetch_add(1, Ordering::Relaxed);
            }
            let key = match objective {
                Objective::MinimizeTime { .. } => jct,
                Objective::MinimizeCost { .. } => bill.nanos() as f64,
            };
            Some((key, idx, config))
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, _, c)| c);
    if traced {
        telemetry.counter("planner.exhaustive.evaluated", evaluated.into_inner());
        telemetry.counter("planner.exhaustive.feasible", feasible_n.into_inner());
        telemetry.counter("planner.exhaustive.infeasible", infeasible_n.into_inner());
        let stats = cache.stats();
        telemetry.counter("planner.cache.hits", stats.hits);
        telemetry.counter("planner.cache.misses", stats.misses);
        telemetry.gauge("planner.cache.entries", stats.entries as f64);
        telemetry.gauge("planner.cache.hit_rate", stats.hit_rate());
    }
    best
}

/// Single-threaded, uncached reference for [`solve_exhaustive`]: the
/// original sequential sweep, kept verbatim so equivalence tests can
/// assert the parallel+cached path returns bit-identical plans.
pub fn solve_exhaustive_serial(
    job: &JobSpec,
    platform: &Platform,
    catalog: &PriceCatalog,
    space: &ConfigSpace,
    objective: Objective,
) -> Option<JobConfig> {
    let mut best: Option<(f64, Money, JobConfig)> = None;
    for config in space.iter_configs(job) {
        let Ok(ev) = evaluate(job, platform, &config, catalog) else {
            continue;
        };
        let (jct, bill) = (ev.jct_s(), ev.total_cost());
        let feasible = match objective {
            Objective::MinimizeTime { budget } => bill <= budget,
            Objective::MinimizeCost { deadline_s } => jct <= deadline_s,
        };
        if !feasible {
            continue;
        }
        let key = match objective {
            Objective::MinimizeTime { .. } => jct,
            Objective::MinimizeCost { .. } => bill.nanos() as f64,
        };
        let better = match &best {
            None => true,
            Some((bk, _, _)) => key < *bk,
        };
        if better {
            best = Some((key, bill, config));
        }
    }
    best.map(|(_, _, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn setup(n: usize, tiers: &[u32]) -> (JobSpec, Platform, PriceCatalog, ConfigSpace, PlannerDag) {
        let job = JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&job, &platform, tiers);
        let dag = PlannerDag::build(&job, &platform, &catalog, &space);
        (job, platform, catalog, space, dag)
    }

    fn eval(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        c: &JobConfig,
    ) -> (f64, Money) {
        let ev = evaluate(job, platform, c, catalog).unwrap();
        (ev.jct_s(), ev.total_cost())
    }

    #[test]
    fn exact_csp_matches_exhaustive_min_time() {
        let (job, platform, catalog, space, dag) = setup(6, &[128, 512, 3008]);
        // Budget between the cheapest and the fastest configurations.
        for budget_frac in [1.1, 1.5, 3.0] {
            let cheapest = solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).unwrap();
            let (_, min_cost) = eval(&job, &platform, &catalog, &cheapest);
            let budget = min_cost.scale(budget_frac);
            let objective = Objective::MinimizeTime { budget };
            let got = solve_on_dag(&dag, objective, Strategy::ExactCsp).unwrap();
            let want = solve_exhaustive(&job, &platform, &catalog, &space, objective).unwrap();
            let (gt, gc) = eval(&job, &platform, &catalog, &got);
            let (wt, _) = eval(&job, &platform, &catalog, &want);
            assert!((gt - wt).abs() < 1e-9, "time {gt} vs exhaustive {wt}");
            assert!(gc <= budget, "cost {gc} over budget {budget}");
        }
    }

    #[test]
    fn exact_csp_matches_exhaustive_min_cost() {
        let (job, platform, catalog, space, dag) = setup(6, &[128, 512, 3008]);
        let fastest = solve_on_dag(&dag, Objective::fastest(), Strategy::ExactCsp).unwrap();
        let (min_time, _) = eval(&job, &platform, &catalog, &fastest);
        for slack in [1.2, 2.0, 5.0] {
            let objective = Objective::MinimizeCost {
                deadline_s: min_time * slack,
            };
            let got = solve_on_dag(&dag, objective, Strategy::ExactCsp).unwrap();
            let want = solve_exhaustive(&job, &platform, &catalog, &space, objective).unwrap();
            let (gt, gc) = eval(&job, &platform, &catalog, &got);
            let (_, wc) = eval(&job, &platform, &catalog, &want);
            assert_eq!(gc, wc, "cost mismatch at slack {slack}");
            assert!(gt <= min_time * slack + 1e-9);
        }
    }

    #[test]
    fn path_enumeration_agrees_with_exact_csp() {
        let (job, platform, catalog, _, dag) = setup(5, &[128, 1024]);
        let cheapest = solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).unwrap();
        let (_, min_cost) = eval(&job, &platform, &catalog, &cheapest);
        let objective = Objective::MinimizeTime {
            budget: min_cost.scale(1.5),
        };
        let a = solve_on_dag(&dag, objective, Strategy::ExactCsp).unwrap();
        let b = solve_on_dag(&dag, objective, Strategy::PathEnumeration).unwrap();
        let (ta, _) = eval(&job, &platform, &catalog, &a);
        let (tb, _) = eval(&job, &platform, &catalog, &b);
        assert!((ta - tb).abs() < 1e-9);
    }

    #[test]
    fn algorithm1_finds_a_feasible_plan() {
        let (job, platform, catalog, _, dag) = setup(6, &[128, 512, 3008]);
        let cheapest = solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).unwrap();
        let (_, min_cost) = eval(&job, &platform, &catalog, &cheapest);
        let budget = min_cost.scale(1.5);
        let objective = Objective::MinimizeTime { budget };
        let got = solve_on_dag(&dag, objective, Strategy::Algorithm1).unwrap();
        let (_, gc) = eval(&job, &platform, &catalog, &got);
        assert!(gc <= budget);
        // And it can never beat the exact optimum.
        let exact = solve_on_dag(&dag, objective, Strategy::ExactCsp).unwrap();
        let (te, _) = eval(&job, &platform, &catalog, &exact);
        let (tg, _) = eval(&job, &platform, &catalog, &got);
        assert!(tg >= te - 1e-9);
    }

    #[test]
    fn potentials_solver_matches_plain_solver_on_both_objectives() {
        let (job, platform, catalog, _, dag) = setup(6, &[128, 512, 3008]);
        let pots = PlannerPotentials::compute(&dag);
        let tel = astra_telemetry::Telemetry::disabled();
        let cheapest = solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).unwrap();
        let fastest = solve_on_dag(&dag, Objective::fastest(), Strategy::ExactCsp).unwrap();
        let (_, min_cost) = eval(&job, &platform, &catalog, &cheapest);
        let (min_time, _) = eval(&job, &platform, &catalog, &fastest);
        for frac in [1.0, 1.05, 1.3, 2.0, 10.0] {
            let o = Objective::MinimizeTime {
                budget: min_cost.scale(frac),
            };
            assert_eq!(
                solve_on_dag_with_potentials(&dag, &pots, o, Strategy::ExactCsp, &tel),
                solve_on_dag(&dag, o, Strategy::ExactCsp),
                "min-time at budget x{frac}"
            );
            let o = Objective::MinimizeCost {
                deadline_s: min_time * frac,
            };
            assert_eq!(
                solve_on_dag_with_potentials(&dag, &pots, o, Strategy::ExactCsp, &tel),
                solve_on_dag(&dag, o, Strategy::ExactCsp),
                "min-cost at deadline x{frac}"
            );
        }
        // Infeasible bound: both say so.
        let o = Objective::MinimizeTime {
            budget: Money::from_nanos(1),
        };
        assert!(solve_on_dag_with_potentials(&dag, &pots, o, Strategy::ExactCsp, &tel).is_none());
    }

    #[test]
    fn guided_algorithm1_matches_plain_on_the_test_dag() {
        let (job, platform, catalog, _, dag) = setup(6, &[128, 512, 3008]);
        let pots = PlannerPotentials::compute(&dag);
        let tel = astra_telemetry::Telemetry::disabled();
        let cheapest = solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).unwrap();
        let (_, min_cost) = eval(&job, &platform, &catalog, &cheapest);
        for frac in [1.1, 1.5, 3.0] {
            let o = Objective::MinimizeTime {
                budget: min_cost.scale(frac),
            };
            assert_eq!(
                solve_on_dag_with_potentials(&dag, &pots, o, Strategy::Algorithm1, &tel),
                solve_on_dag(&dag, o, Strategy::Algorithm1),
                "budget x{frac}"
            );
        }
        let o = Objective::MinimizeTime {
            budget: Money::from_nanos(1),
        };
        assert!(
            solve_on_dag_with_potentials(&dag, &pots, o, Strategy::Algorithm1, &tel).is_none()
        );
    }

    #[test]
    fn impossible_budget_returns_none() {
        let (_, _, _, _, dag) = setup(4, &[128]);
        let objective = Objective::MinimizeTime {
            budget: Money::from_nanos(1),
        };
        for strategy in [Strategy::Algorithm1, Strategy::ExactCsp, Strategy::PathEnumeration] {
            assert!(solve_on_dag(&dag, objective, strategy).is_none(), "{strategy:?}");
        }
    }

    #[test]
    fn unconstrained_solutions_exist() {
        let (_, _, _, _, dag) = setup(4, &[128, 1024]);
        assert!(solve_on_dag(&dag, Objective::fastest(), Strategy::ExactCsp).is_some());
        assert!(solve_on_dag(&dag, Objective::cheapest(), Strategy::ExactCsp).is_some());
    }
}
