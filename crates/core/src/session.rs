//! Reusable planning sessions: build the Fig. 5 DAG and its backward
//! potentials **once** per `(job, space, platform, prices)` tuple, then
//! answer any number of budget/deadline queries against them.
//!
//! Every sweep in the repo — the Pareto frontier, Algorithm 1's probes,
//! the `exp_fig*` tightness scans, the CLI `frontier` command — asks many
//! constrained questions about one fixed job. Rebuilding the DAG per
//! query made construction the dominant cost (`dag_build_serial/N202`
//! ≈ 2× `solve_exact_csp/N50` in `BENCH_planner.json`); a
//! [`PlannerSession`] pays it once and amortizes the backward-potential
//! sweep with it, so repeated queries run at label-search speed alone
//! (the `session_sweep_*` bench entries track the resulting speedup).

use astra_model::{JobConfig, JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_telemetry::Telemetry;
use rayon::prelude::*;

use crate::astra::PlanError;
use crate::cache::ModelCache;
use crate::dag::{PlannerDag, PruneConfig};
use crate::objective::Objective;
use crate::plan::Plan;
use crate::solver::{
    solve_exhaustive_with_telemetry, solve_on_dag_with_potentials, PlannerPotentials, Strategy,
};
use crate::space::ConfigSpace;

/// The [`PruneConfig`] actually applied for a strategy: Algorithm 1 runs
/// on the full Fig. 5 DAG regardless of the requested config, because
/// the paper's heuristic walks an edge-removal sequence whose steps (and
/// therefore whose returned plan) depend on which dominated edges exist.
/// The exact strategies are prune-invariant (see `dag` module docs).
pub(crate) fn effective_prune(prune: PruneConfig, strategy: Strategy) -> PruneConfig {
    if strategy == Strategy::Algorithm1 {
        PruneConfig::off()
    } else {
        prune
    }
}

/// A reusable planning session for one job (see module docs).
///
/// Construct via [`crate::Astra::session`] /
/// [`crate::Astra::session_with_space`], or directly with
/// [`PlannerSession::new`]. The session owns its inputs, so it can
/// outlive the planner that created it.
///
/// ```
/// use astra_core::{Astra, Objective};
/// use astra_model::{JobSpec, WorkloadProfile};
///
/// let job = JobSpec::uniform("demo", 10, 2.0, WorkloadProfile::uniform_test());
/// let session = Astra::with_defaults().session(&job);
/// let fast = session.plan(Objective::fastest()).unwrap();
/// let cheap = session.plan(Objective::cheapest()).unwrap();
/// assert!(fast.predicted_jct_s() <= cheap.predicted_jct_s() + 1e-9);
/// ```
pub struct PlannerSession {
    job: JobSpec,
    platform: Platform,
    catalog: PriceCatalog,
    space: ConfigSpace,
    strategy: Strategy,
    telemetry: Telemetry,
    dag: PlannerDag,
    potentials: PlannerPotentials,
}

impl PlannerSession {
    /// Build a session: one DAG construction (pruned per the
    /// strategy's `effective_prune`) plus one backward-potential sweep.
    pub fn new(
        job: &JobSpec,
        platform: Platform,
        catalog: PriceCatalog,
        space: ConfigSpace,
        strategy: Strategy,
        prune: PruneConfig,
    ) -> PlannerSession {
        Self::build(
            job,
            platform,
            catalog,
            space,
            strategy,
            prune,
            astra_telemetry::global(),
        )
    }

    pub(crate) fn build(
        job: &JobSpec,
        platform: Platform,
        catalog: PriceCatalog,
        space: ConfigSpace,
        strategy: Strategy,
        prune: PruneConfig,
        telemetry: Telemetry,
    ) -> PlannerSession {
        let span = telemetry.wall_span("planner", "session.build", "planner");
        let dag = {
            let mut s = telemetry.wall_span("planner", "build_dag", "planner");
            s.set_parent(span.id());
            let cache = ModelCache::new(job, &platform);
            PlannerDag::build_with_cache(&catalog, &space, &cache, effective_prune(prune, strategy))
        };
        let potentials = {
            let mut s = telemetry.wall_span("planner", "potentials", "planner");
            s.set_parent(span.id());
            PlannerPotentials::compute(&dag)
        };
        PlannerSession {
            job: job.clone(),
            platform,
            catalog,
            space,
            strategy,
            telemetry,
            dag,
            potentials,
        }
    }

    /// Answer one constrained query. Exact strategies reuse the DAG and
    /// potentials; [`Strategy::Exhaustive`] sweeps the space through a
    /// fresh model cache (it never touches the DAG).
    pub fn solve(&self, objective: Objective) -> Option<JobConfig> {
        match self.strategy {
            Strategy::Exhaustive => solve_exhaustive_with_telemetry(
                &self.job,
                &self.platform,
                &self.catalog,
                &self.space,
                objective,
                &self.telemetry,
            ),
            _ => {
                let _span = self.telemetry.wall_span("planner", "session.solve", "planner");
                solve_on_dag_with_potentials(
                    &self.dag,
                    &self.potentials,
                    objective,
                    self.strategy,
                    &self.telemetry,
                )
            }
        }
    }

    /// [`PlannerSession::solve`] plus full plan evaluation.
    pub fn plan(&self, objective: Objective) -> Result<Plan, PlanError> {
        let config = self
            .solve(objective)
            .ok_or(PlanError::NoFeasiblePlan { objective })?;
        Plan::evaluate(&self.job, &self.platform, &self.catalog, config.into())
            .map_err(PlanError::Internal)
    }

    /// Walk the cost–performance Pareto frontier over this session's
    /// space: `points` evenly spaced budgets between the cheapest and
    /// fastest plans' costs, deduplicated in increasing-budget order
    /// (identical semantics to the old `Astra::pareto_frontier`, minus
    /// the per-point DAG rebuilds).
    pub fn pareto_frontier(&self, points: usize) -> Result<Vec<Plan>, PlanError> {
        assert!(points >= 2, "a frontier needs at least its endpoints");
        let lo = self.plan(Objective::cheapest())?;
        let hi = self.plan(Objective::fastest())?;
        let (lo_c, hi_c) = (lo.predicted_cost().nanos(), hi.predicted_cost().nanos());

        let steps: Vec<usize> = (1..points).collect();
        let configs: Vec<Option<JobConfig>> = steps
            .into_par_iter()
            .map(|step| {
                let budget = astra_pricing::Money::from_nanos(
                    lo_c + (hi_c - lo_c) * step as i128 / (points - 1) as i128,
                );
                self.solve(Objective::MinimizeTime { budget })
            })
            .collect();

        let mut frontier: Vec<Plan> = vec![lo];
        for config in configs.into_iter().flatten() {
            let plan = Plan::evaluate(&self.job, &self.platform, &self.catalog, config.into())
                .map_err(PlanError::Internal)?;
            if frontier.last().map(|p| p.spec != plan.spec).unwrap_or(true) {
                frontier.push(plan);
            }
        }
        Ok(frontier)
    }

    /// The job this session plans.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// The configuration space in effect.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The solver strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The session's DAG (built once at construction).
    pub fn dag(&self) -> &PlannerDag {
        &self.dag
    }

    /// The session's backward potentials (computed once at construction).
    pub fn potentials(&self) -> &PlannerPotentials {
        &self.potentials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astra::Astra;
    use astra_model::WorkloadProfile;
    use astra_pricing::Money;

    fn job() -> JobSpec {
        JobSpec::uniform("s", 10, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn session_answers_match_cold_plans() {
        let job = job();
        let astra = Astra::with_defaults();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 1792, 3008]);
        let session = astra.session_with_space(&job, &space);
        let cheapest = session.plan(Objective::cheapest()).unwrap();
        let fastest = session.plan(Objective::fastest()).unwrap();
        let (lo, hi) = (
            cheapest.predicted_cost().nanos(),
            fastest.predicted_cost().nanos(),
        );
        for step in 0..8 {
            let budget = Money::from_nanos(lo + (hi - lo) * step / 7);
            let objective = Objective::MinimizeTime { budget };
            let warm = session.plan(objective).unwrap();
            let cold = astra.plan_with_space(&job, objective, &space).unwrap();
            assert_eq!(warm.spec, cold.spec, "budget step {step}");
        }
    }

    #[test]
    fn session_frontier_matches_astra_frontier() {
        let job = job();
        let astra = Astra::with_defaults();
        let old = astra.pareto_frontier(&job, 8).unwrap();
        let new = astra.session(&job).pareto_frontier(8).unwrap();
        assert_eq!(old.len(), new.len());
        for (a, b) in old.iter().zip(&new) {
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn exhaustive_sessions_sweep_the_space() {
        let job = job();
        let platform = Platform::paper_literal(10.0);
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 1024]);
        let exact = PlannerSession::new(
            &job,
            platform.clone(),
            PriceCatalog::aws_2020(),
            space.clone(),
            Strategy::ExactCsp,
            PruneConfig::on(),
        );
        let brute = PlannerSession::new(
            &job,
            platform,
            PriceCatalog::aws_2020(),
            space,
            Strategy::Exhaustive,
            PruneConfig::on(),
        );
        let fastest = exact.plan(Objective::fastest()).unwrap();
        let objective = Objective::min_cost_with_deadline_s(fastest.predicted_jct_s() * 2.0);
        assert_eq!(
            exact.plan(objective).unwrap().predicted_cost(),
            brute.plan(objective).unwrap().predicted_cost()
        );
    }

    #[test]
    fn algorithm1_sessions_run_unpruned() {
        let job = job();
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 512, 1792, 3008]);
        let session = PlannerSession::new(
            &job,
            platform,
            PriceCatalog::aws_2020(),
            space,
            Strategy::Algorithm1,
            PruneConfig::on(),
        );
        assert_eq!(session.dag().prune_stats().total(), 0);
    }
}
