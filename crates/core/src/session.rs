//! Reusable planning sessions: build the Fig. 5 DAG and its backward
//! potentials **once** per `(job, space, platform, prices)` tuple, then
//! answer any number of budget/deadline queries against them.
//!
//! Every sweep in the repo — the Pareto frontier, Algorithm 1's probes,
//! the `exp_fig*` tightness scans, the CLI `frontier` command — asks many
//! constrained questions about one fixed job. Rebuilding the DAG per
//! query made construction the dominant cost (`dag_build_serial/N202`
//! ≈ 2× `solve_exact_csp/N50` in `BENCH_planner.json`); a
//! [`PlannerSession`] pays it once and amortizes the backward-potential
//! sweep with it, so repeated queries run at label-search speed alone
//! (the `session_sweep_*` bench entries track the resulting speedup).

use std::collections::BTreeMap;

use astra_model::{JobConfig, JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_telemetry::Telemetry;
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::astra::PlanError;
use crate::cache::ModelCache;
use crate::dag::{PlannerDag, PruneConfig};
use crate::objective::Objective;
use crate::plan::Plan;
use crate::replan::{JobDelta, RecostPlan, ReplanOutcome};
use crate::solver::{
    solve_exhaustive_with_telemetry, solve_on_dag_with_potentials, PlannerPotentials, Strategy,
};
use crate::space::ConfigSpace;

/// The [`PruneConfig`] actually applied for a strategy: Algorithm 1 runs
/// on the full Fig. 5 DAG regardless of the requested config, because
/// the paper's heuristic walks an edge-removal sequence whose steps (and
/// therefore whose returned plan) depend on which dominated edges exist.
/// The exact strategies are prune-invariant (see `dag` module docs).
pub(crate) fn effective_prune(prune: PruneConfig, strategy: Strategy) -> PruneConfig {
    if strategy == Strategy::Algorithm1 {
        PruneConfig::off()
    } else {
        prune
    }
}

/// A reusable planning session for one job (see module docs).
///
/// Construct via [`crate::Astra::session`] /
/// [`crate::Astra::session_with_space`], or directly with
/// [`PlannerSession::new`]. The session owns its inputs, so it can
/// outlive the planner that created it.
///
/// ```
/// use astra_core::{Astra, Objective};
/// use astra_model::{JobSpec, WorkloadProfile};
///
/// let job = JobSpec::uniform("demo", 10, 2.0, WorkloadProfile::uniform_test());
/// let session = Astra::with_defaults().session(&job);
/// let fast = session.plan(Objective::fastest()).unwrap();
/// let cheap = session.plan(Objective::cheapest()).unwrap();
/// assert!(fast.predicted_jct_s() <= cheap.predicted_jct_s() + 1e-9);
/// ```
pub struct PlannerSession {
    job: JobSpec,
    platform: Platform,
    catalog: PriceCatalog,
    space: ConfigSpace,
    strategy: Strategy,
    prune: PruneConfig,
    telemetry: Telemetry,
    dag: PlannerDag,
    potentials: PlannerPotentials,
    /// Solved `(objective, bounds) → answer` memo (see `AnswerMemo`).
    memo: Mutex<AnswerMemo>,
    /// Lazily captured topology index for the fast recost tier; dropped
    /// on rebuild (the node/edge layout it indexes is gone).
    recost: Option<RecostPlan>,
}

impl Clone for PlannerSession {
    fn clone(&self) -> Self {
        PlannerSession {
            job: self.job.clone(),
            platform: self.platform.clone(),
            catalog: self.catalog,
            space: self.space.clone(),
            strategy: self.strategy,
            prune: self.prune,
            telemetry: self.telemetry.clone(),
            dag: self.dag.clone(),
            potentials: self.potentials.clone(),
            memo: Mutex::new(self.memo.lock().clone()),
            recost: self.recost.clone(),
        }
    }
}

/// Per-session memo of solved answers, consulted before label search.
///
/// Serving is restricted to situations provably identical to a fresh
/// solve, so memoized sessions stay bit-identical to cold ones:
///
/// * **exact-key hits** — the solver is deterministic, so repeating the
///   identical `(objective, bound)` returns the stored answer;
/// * **monotone infeasibility** — the feasible path set only grows with
///   the bound (the solver's epsilon-slackened bound is monotone in the
///   raw bound), so any budget ≤ a known-infeasible budget, or deadline
///   ≤ a known-infeasible deadline, is infeasible without a search.
///
/// Interval-serving of *solved* answers between two stored bounds is
/// deliberately **not** done: it risks diverging from the solver's exact
/// tie-breaking on bound-sensitive ties.
///
/// Deadlines key by `f64::to_bits`, whose order matches numeric order
/// for the non-negative finite values the guards admit.
#[derive(Debug, Clone, Default)]
struct AnswerMemo {
    solved_time: BTreeMap<i128, JobConfig>,
    solved_cost: BTreeMap<u64, JobConfig>,
    infeasible_below_budget: Option<i128>,
    infeasible_below_deadline: Option<u64>,
}

/// Cap on stored answers per objective family; the maps reset past it
/// (frontier sweeps store a few dozen, so this never fires in practice).
const MEMO_CAP: usize = 4096;

impl PlannerSession {
    /// Build a session: one DAG construction (pruned per the
    /// strategy's `effective_prune`) plus one backward-potential sweep.
    pub fn new(
        job: &JobSpec,
        platform: Platform,
        catalog: PriceCatalog,
        space: ConfigSpace,
        strategy: Strategy,
        prune: PruneConfig,
    ) -> PlannerSession {
        Self::build(
            job,
            platform,
            catalog,
            space,
            strategy,
            prune,
            astra_telemetry::global(),
        )
    }

    pub(crate) fn build(
        job: &JobSpec,
        platform: Platform,
        catalog: PriceCatalog,
        space: ConfigSpace,
        strategy: Strategy,
        prune: PruneConfig,
        telemetry: Telemetry,
    ) -> PlannerSession {
        let span = telemetry.wall_span("planner", "session.build", "planner");
        let dag = {
            let mut s = telemetry.wall_span("planner", "build_dag", "planner");
            s.set_parent(span.id());
            let cache = ModelCache::new(job, &platform);
            PlannerDag::build_with_cache(&catalog, &space, &cache, effective_prune(prune, strategy))
        };
        let potentials = {
            let mut s = telemetry.wall_span("planner", "potentials", "planner");
            s.set_parent(span.id());
            PlannerPotentials::compute(&dag)
        };
        PlannerSession {
            job: job.clone(),
            platform,
            catalog,
            space,
            strategy,
            prune,
            telemetry,
            dag,
            potentials,
            memo: Mutex::new(AnswerMemo::default()),
            recost: None,
        }
    }

    /// Answer one constrained query. Exact strategies reuse the DAG and
    /// potentials; [`Strategy::Exhaustive`] sweeps the space through a
    /// fresh model cache (it never touches the DAG). Answers are served
    /// from the session's `AnswerMemo` when provably identical to a
    /// fresh solve (`planner.session.memo_hits` / `.memo_misses` count
    /// the split).
    pub fn solve(&self, objective: Objective) -> Option<JobConfig> {
        if let Some(answer) = self.memo_lookup(objective) {
            self.telemetry.counter("planner.session.memo_hits", 1);
            return answer;
        }
        self.telemetry.counter("planner.session.memo_misses", 1);
        let answer = self.solve_uncached(objective);
        self.memo_store(objective, answer);
        answer
    }

    fn memo_lookup(&self, objective: Objective) -> Option<Option<JobConfig>> {
        let memo = self.memo.lock();
        match objective {
            Objective::MinimizeTime { budget } => {
                let key = budget.nanos();
                if let Some(cfg) = memo.solved_time.get(&key) {
                    return Some(Some(*cfg));
                }
                match memo.infeasible_below_budget {
                    Some(b) if key <= b => Some(None),
                    _ => None,
                }
            }
            Objective::MinimizeCost { deadline_s } => {
                if !deadline_s.is_finite() || deadline_s < 0.0 {
                    return None;
                }
                let key = deadline_s.to_bits();
                if let Some(cfg) = memo.solved_cost.get(&key) {
                    return Some(Some(*cfg));
                }
                match memo.infeasible_below_deadline {
                    Some(d) if key <= d => Some(None),
                    _ => None,
                }
            }
        }
    }

    fn memo_store(&self, objective: Objective, answer: Option<JobConfig>) {
        let mut memo = self.memo.lock();
        match (objective, answer) {
            (Objective::MinimizeTime { budget }, Some(cfg)) => {
                if memo.solved_time.len() >= MEMO_CAP {
                    memo.solved_time.clear();
                }
                memo.solved_time.insert(budget.nanos(), cfg);
            }
            (Objective::MinimizeTime { budget }, None) => {
                let b = budget.nanos();
                memo.infeasible_below_budget =
                    Some(memo.infeasible_below_budget.map_or(b, |x| x.max(b)));
            }
            (Objective::MinimizeCost { deadline_s }, answer) => {
                if !deadline_s.is_finite() || deadline_s < 0.0 {
                    return;
                }
                let key = deadline_s.to_bits();
                match answer {
                    Some(cfg) => {
                        if memo.solved_cost.len() >= MEMO_CAP {
                            memo.solved_cost.clear();
                        }
                        memo.solved_cost.insert(key, cfg);
                    }
                    None => {
                        memo.infeasible_below_deadline =
                            Some(memo.infeasible_below_deadline.map_or(key, |x| x.max(key)));
                    }
                }
            }
        }
    }

    fn solve_uncached(&self, objective: Objective) -> Option<JobConfig> {
        match self.strategy {
            Strategy::Exhaustive => solve_exhaustive_with_telemetry(
                &self.job,
                &self.platform,
                &self.catalog,
                &self.space,
                objective,
                &self.telemetry,
            ),
            _ => {
                let _span = self.telemetry.wall_span("planner", "session.solve", "planner");
                solve_on_dag_with_potentials(
                    &self.dag,
                    &self.potentials,
                    objective,
                    self.strategy,
                    &self.telemetry,
                )
            }
        }
    }

    /// [`PlannerSession::solve`] plus full plan evaluation.
    pub fn plan(&self, objective: Objective) -> Result<Plan, PlanError> {
        let config = self
            .solve(objective)
            .ok_or(PlanError::NoFeasiblePlan { objective })?;
        Plan::evaluate(&self.job, &self.platform, &self.catalog, config.into())
            .map_err(PlanError::Internal)
    }

    /// Walk the cost–performance Pareto frontier over this session's
    /// space: `points` evenly spaced budgets between the cheapest and
    /// fastest plans' costs, deduplicated in increasing-budget order
    /// (identical semantics to the old `Astra::pareto_frontier`, minus
    /// the per-point DAG rebuilds).
    pub fn pareto_frontier(&self, points: usize) -> Result<Vec<Plan>, PlanError> {
        assert!(points >= 2, "a frontier needs at least its endpoints");
        let lo = self.plan(Objective::cheapest())?;
        let hi = self.plan(Objective::fastest())?;
        let (lo_c, hi_c) = (lo.predicted_cost().nanos(), hi.predicted_cost().nanos());

        let steps: Vec<usize> = (1..points).collect();
        let configs: Vec<Option<JobConfig>> = steps
            .into_par_iter()
            .map(|step| {
                let budget = astra_pricing::Money::from_nanos(
                    lo_c + (hi_c - lo_c) * step as i128 / (points - 1) as i128,
                );
                self.solve(Objective::MinimizeTime { budget })
            })
            .collect();

        let mut frontier: Vec<Plan> = vec![lo];
        for config in configs.into_iter().flatten() {
            let plan = Plan::evaluate(&self.job, &self.platform, &self.catalog, config.into())
                .map_err(PlanError::Internal)?;
            if frontier.last().map(|p| p.spec != plan.spec).unwrap_or(true) {
                frontier.push(plan);
            }
        }
        Ok(frontier)
    }

    /// Re-aim the session at new planning inputs, repairing its DAG,
    /// potentials and answer memo as cheaply as the delta allows (see
    /// the [`crate::replan`] module docs for the tier taxonomy). The
    /// resulting session answers every query bit-identically to a cold
    /// [`PlannerSession::new`] at the new inputs
    /// (`tests/replan_equivalence.rs` pins this under proptest).
    pub fn apply_delta(
        &mut self,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> ReplanOutcome {
        let delta = JobDelta::classify(
            &self.job,
            &self.space,
            &self.platform,
            &self.catalog,
            job,
            space,
            platform,
            catalog,
        );
        let outcome = self.apply_classified(&delta, job, platform, catalog, space);
        self.telemetry.counter(
            match outcome {
                ReplanOutcome::Unchanged => "planner.session.replan_unchanged",
                ReplanOutcome::Patched => "planner.session.replan_patched",
                ReplanOutcome::Replayed => "planner.session.replan_replayed",
                ReplanOutcome::Rebuilt => "planner.session.replan_rebuilt",
            },
            1,
        );
        outcome
    }

    fn apply_classified(
        &mut self,
        delta: &JobDelta,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> ReplanOutcome {
        if delta.is_cosmetic() {
            // Renames never reach the model: keep DAG, potentials and
            // the whole memo.
            self.job = job.clone();
            return ReplanOutcome::Unchanged;
        }
        // Exhaustive sessions are validation-scale; their DAG accessor
        // must stay truthful, so any model-bearing delta just rebuilds.
        if !delta.patchable() || self.strategy == Strategy::Exhaustive {
            return self.rebuild(job, platform, catalog, space);
        }
        let eff = effective_prune(self.prune, self.strategy);
        if !eff.pareto_tiers && delta.fast_patchable() {
            if self.recost.is_none() {
                self.recost = RecostPlan::capture(&self.dag, &self.space);
            }
            if let Some(plan) = self.recost.take() {
                match plan.patch(&mut self.dag, delta, job, platform, catalog, space) {
                    Some(dirty) => {
                        self.potentials = self.potentials.resume(&self.dag, &dirty);
                        self.set_inputs(job, platform, catalog, space);
                        self.invalidate_memo(delta);
                        // Topology untouched: the capture stays valid.
                        self.recost = Some(plan);
                        return ReplanOutcome::Patched;
                    }
                    // A feasibility gate flipped: the new shape differs.
                    None => return self.rebuild(job, platform, catalog, space),
                }
            }
        }
        // Recipe replay: recompute all recipes, overwrite in place if
        // the topology still matches.
        let cache = ModelCache::new(job, platform);
        if self.dag.try_patch_recompute(catalog, space, &cache, eff) {
            drop(cache);
            self.potentials = PlannerPotentials::compute(&self.dag);
            self.set_inputs(job, platform, catalog, space);
            self.invalidate_memo(delta);
            // Replay verified the topology, so an existing capture is
            // still accurate.
            return ReplanOutcome::Replayed;
        }
        drop(cache);
        self.rebuild(job, platform, catalog, space)
    }

    fn set_inputs(
        &mut self,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) {
        self.job = job.clone();
        self.platform = platform.clone();
        self.catalog = *catalog;
        self.space = space.clone();
    }

    fn rebuild(
        &mut self,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> ReplanOutcome {
        *self = PlannerSession::build(
            job,
            platform.clone(),
            *catalog,
            space.clone(),
            self.strategy,
            self.prune,
            self.telemetry.clone(),
        );
        ReplanOutcome::Rebuilt
    }

    /// Selectively invalidate the answer memo for a *successfully
    /// patched* delta (rebuilds reset it wholesale).
    fn invalidate_memo(&mut self, delta: &JobDelta) {
        let mut memo = self.memo.lock();
        if !delta.affects_time() {
            // Prices-only: achievable completion times are untouched,
            // so "deadline D is infeasible" still holds — but every
            // cost-bearing answer may have moved.
            memo.solved_time.clear();
            memo.solved_cost.clear();
            memo.infeasible_below_budget = None;
        } else {
            *memo = AnswerMemo::default();
        }
    }

    /// The job this session plans.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// The platform this session plans against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The price catalog in effect.
    pub fn catalog(&self) -> &PriceCatalog {
        &self.catalog
    }

    /// The prune configuration the session was requested with (the DAG
    /// applies `effective_prune` of this and the strategy).
    pub fn prune(&self) -> PruneConfig {
        self.prune
    }

    /// The configuration space in effect.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The solver strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The session's DAG (built once at construction).
    pub fn dag(&self) -> &PlannerDag {
        &self.dag
    }

    /// The session's backward potentials (computed once at construction).
    pub fn potentials(&self) -> &PlannerPotentials {
        &self.potentials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astra::Astra;
    use astra_model::WorkloadProfile;
    use astra_pricing::Money;

    fn job() -> JobSpec {
        JobSpec::uniform("s", 10, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn session_answers_match_cold_plans() {
        let job = job();
        let astra = Astra::with_defaults();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 1792, 3008]);
        let session = astra.session_with_space(&job, &space);
        let cheapest = session.plan(Objective::cheapest()).unwrap();
        let fastest = session.plan(Objective::fastest()).unwrap();
        let (lo, hi) = (
            cheapest.predicted_cost().nanos(),
            fastest.predicted_cost().nanos(),
        );
        for step in 0..8 {
            let budget = Money::from_nanos(lo + (hi - lo) * step / 7);
            let objective = Objective::MinimizeTime { budget };
            let warm = session.plan(objective).unwrap();
            let cold = astra.plan_with_space(&job, objective, &space).unwrap();
            assert_eq!(warm.spec, cold.spec, "budget step {step}");
        }
    }

    #[test]
    fn session_frontier_matches_astra_frontier() {
        let job = job();
        let astra = Astra::with_defaults();
        let old = astra.pareto_frontier(&job, 8).unwrap();
        let new = astra.session(&job).pareto_frontier(8).unwrap();
        assert_eq!(old.len(), new.len());
        for (a, b) in old.iter().zip(&new) {
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn exhaustive_sessions_sweep_the_space() {
        let job = job();
        let platform = Platform::paper_literal(10.0);
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 1024]);
        let exact = PlannerSession::new(
            &job,
            platform.clone(),
            PriceCatalog::aws_2020(),
            space.clone(),
            Strategy::ExactCsp,
            PruneConfig::on(),
        );
        let brute = PlannerSession::new(
            &job,
            platform,
            PriceCatalog::aws_2020(),
            space,
            Strategy::Exhaustive,
            PruneConfig::on(),
        );
        let fastest = exact.plan(Objective::fastest()).unwrap();
        let objective = Objective::min_cost_with_deadline_s(fastest.predicted_jct_s() * 2.0);
        assert_eq!(
            exact.plan(objective).unwrap().predicted_cost(),
            brute.plan(objective).unwrap().predicted_cost()
        );
    }

    #[test]
    fn algorithm1_sessions_run_unpruned() {
        let job = job();
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 512, 1792, 3008]);
        let session = PlannerSession::new(
            &job,
            platform,
            PriceCatalog::aws_2020(),
            space,
            Strategy::Algorithm1,
            PruneConfig::on(),
        );
        assert_eq!(session.dag().prune_stats().total(), 0);
    }
}
