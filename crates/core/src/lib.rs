#![warn(missing_docs)]

//! The Astra planner — the paper's primary contribution (Sec. IV).
//!
//! Given a job, a platform and a user requirement, Astra picks the
//! configuration (three memory tiers, objects-per-mapper `k_M`,
//! objects-per-reducer `k_R`) that either
//!
//! * minimizes completion time subject to a budget (Eq. 16–19), or
//! * minimizes cost subject to a completion-time threshold (Eq. 20–22).
//!
//! The configuration space is mapped onto a layered DAG (Fig. 5) whose
//! edges carry *both* a time and a cost metric; any source→sink path is a
//! configuration, and the metrics sum along a path to exactly the
//! analytical model's prediction for that configuration (a property
//! `tests/` asserts). Solving either optimization is then a (constrained)
//! shortest-path query:
//!
//! * [`alg1`] — the paper's Algorithm 1 verbatim: Dijkstra on the
//!   objective, then prune the edge where the constraint first trips and
//!   retry. A heuristic.
//! * [`solver::Strategy::ExactCsp`] — exact Pareto-label constrained
//!   shortest path (the default; optimal for the model).
//! * [`solver::Strategy::PathEnumeration`] — Yen's k-shortest paths until
//!   the first feasible one (also exact; slower).
//! * [`solver::Strategy::Exhaustive`] — brute force over the space, used
//!   to validate all of the above on small instances.
//!
//! Entry point: [`Astra::plan`].

pub mod alg1;
pub mod astra;
pub mod cache;
pub mod dag;
pub mod objective;
pub mod plan;
pub mod replan;
pub mod session;
pub mod solver;
pub mod space;

pub use astra::{Astra, PlanError};
pub use cache::{CacheStats, ModelCache};
pub use dag::{Choice, EdgeMetrics, PlannerDag, PruneConfig, PruneStats};
pub use objective::Objective;
pub use plan::{Plan, PlanSpec, ReduceSpec};
pub use replan::{EdgeFamily, JobDelta, ReplanOutcome};
pub use session::PlannerSession;
pub use solver::{solve_on_dag_with_potentials, PlannerPotentials, Strategy};
pub use space::ConfigSpace;
