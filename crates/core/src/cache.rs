//! Memoized analytical-model evaluations shared across planner passes.
//!
//! The planner evaluates the same model sub-terms many times: an
//! exhaustive sweep re-derives the mapping phase for every
//! `(k_R, coordinator tier, reducer tier)` combination even though it
//! only depends on `(mapper tier, k_M)`, and re-derives the reduce-step
//! schedule for every tier triple even though it only depends on
//! `(k_M, k_R)`. [`ModelCache`] memoizes those sub-terms once per
//! `(job, platform)` pair so that repeated evaluations — across DAG
//! edges, exhaustive sweeps and frontier walks — are computed once.
//!
//! ## Cache invariants
//!
//! 1. **Keys are total.** Every cached value is a pure function of its
//!    key given the `(job, platform)` the cache was created for:
//!    - mapper phase ← `(mapper mem tier, k_M)`,
//!    - mapper output volumes ← `k_M`,
//!    - reduce structure (Table II schedule) ← `(k_M, k_R)`,
//!    - reduce tier times ← `(k_M, k_R, reducer mem tier)`.
//!
//!    Nothing tier- or volume-dependent is cached under a key that omits
//!    that tier or volume, so a cache can never serve a stale or
//!    mismatched value.
//! 2. **Transparency.** [`ModelCache::evaluate`] returns results
//!    bit-identical to [`astra_model::evaluate()`](astra_model::evaluate::evaluate)
//!    — the same `f64` times
//!    to the last ULP and the same cost to the last nano-dollar — because
//!    cached sub-terms are the *same computations* the uncached path
//!    runs, stored verbatim (a property test asserts this).
//! 3. **Concurrency-safe determinism.** Entries are `Arc`-shared behind
//!    `RwLock`ed maps; racing threads may compute an entry twice, but
//!    both computations produce identical values and the first insert
//!    wins, so results never depend on thread interleaving.
//! 4. **A cache never outlives its inputs.** The cache borrows the job
//!    and platform; rebuilding for a different job/platform is the only
//!    way to change them, so entries cannot be poisoned by mutation.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use astra_model::cost::full_cost;
use astra_model::evaluate::{check_feasibility, Evaluation, Infeasibility};
use astra_model::perf::{
    coordinator_compute_secs, coordinator_state_put_secs, mapper_phase, reduce_structure,
    reduce_tier_times, MapperPhase, PerfBreakdown, ReducePhase, ReduceStructure, ReduceTierTimes,
};
use astra_model::{JobConfig, JobSpec, Platform};
use astra_pricing::PriceCatalog;
use parking_lot::RwLock;

/// One memoized map: `Arc`-shared values behind a reader-writer lock,
/// plus relaxed hit/miss tallies for the planner's telemetry counters.
struct Memo<K, V> {
    map: RwLock<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Copy, V> Memo<K, V> {
    fn new() -> Self {
        Memo {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetch the entry for `key`, computing it with `make` on a miss.
    /// If two threads race on the same miss the first insert wins (both
    /// compute identical values, see the module invariants). A racing
    /// loser still tallies a miss — the counter means "computed", which
    /// is the cost the hit rate is meant to expose.
    fn get_or(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(make());
        Arc::clone(self.map.write().entry(key).or_insert(v))
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Aggregate hit/miss tallies across all of a [`ModelCache`]'s maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a memoized entry.
    pub hits: u64,
    /// Lookups that computed their value (includes racing duplicates).
    pub misses: u64,
    /// Entries currently memoized.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized model evaluations for one `(job, platform)` pair.
///
/// Create one per planning request and share it (by reference) across
/// threads; see the module docs for the invariants that make that safe.
pub struct ModelCache<'a> {
    job: &'a JobSpec,
    platform: &'a Platform,
    /// `Some(size)` when every input object has the bit-identical size
    /// — the common production shape, where the mapping phase admits a
    /// closed form (see [`ModelCache::mapper_phase`]).
    uniform_mb: Option<f64>,
    /// Prefix sums of `c` copies of the uniform size, built by the same
    /// left-fold the open-form `objs.iter().sum()` performs, so
    /// `size_prefix[c]` is bit-identical to summing any `c`-object
    /// assignment. Lazily built, shared across threads.
    size_prefix: OnceLock<Arc<Vec<f64>>>,
    /// Per-tier prefix sums of `get_secs(mem, size)` (same fold
    /// argument). Kept out of [`CacheStats`] — internal scaffolding,
    /// not a model sub-term.
    get_prefix: Memo<u32, Vec<f64>>,
    total_mb: OnceLock<f64>,
    mapper: Memo<(u32, usize), MapperPhase>,
    outputs: Memo<usize, Vec<f64>>,
    structure: Memo<(usize, usize), ReduceStructure>,
    tier_times: Memo<(usize, usize, u32), ReduceTierTimes>,
}

impl<'a> ModelCache<'a> {
    /// An empty cache for `job` on `platform`.
    pub fn new(job: &'a JobSpec, platform: &'a Platform) -> Self {
        let uniform_mb = match job.object_sizes_mb.split_first() {
            Some((&first, rest)) if rest.iter().all(|s| s.to_bits() == first.to_bits()) => {
                Some(first)
            }
            _ => None,
        };
        ModelCache {
            job,
            platform,
            uniform_mb,
            size_prefix: OnceLock::new(),
            get_prefix: Memo::new(),
            total_mb: OnceLock::new(),
            mapper: Memo::new(),
            outputs: Memo::new(),
            structure: Memo::new(),
            tier_times: Memo::new(),
        }
    }

    /// `job.total_mb()` computed once (it is an `O(N)` scan the DAG
    /// builder would otherwise repeat per `(k_M, k_R)` pair).
    pub fn job_total_mb(&self) -> f64 {
        *self.total_mb.get_or_init(|| self.job.total_mb())
    }

    fn size_prefix(&self, len: usize) -> Arc<Vec<f64>> {
        let s = self.uniform_mb.expect("size_prefix requires a uniform job");
        Arc::clone(self.size_prefix.get_or_init(|| {
            let mut t = Vec::with_capacity(len + 1);
            t.push(0.0);
            for c in 1..=len {
                t.push(t[c - 1] + s);
            }
            Arc::new(t)
        }))
    }

    fn get_prefix(&self, mem_mb: u32) -> Arc<Vec<f64>> {
        let s = self.uniform_mb.expect("get_prefix requires a uniform job");
        let n = self.job.num_objects();
        self.get_prefix.get_or(mem_mb, || {
            let g = self.platform.get_secs(mem_mb, s);
            let mut t = Vec::with_capacity(n + 1);
            t.push(0.0);
            for c in 1..=n {
                t.push(t[c - 1] + g);
            }
            t
        })
    }

    /// Closed-form [`mapper_phase`] for uniform jobs: every worker holds
    /// `k_M` objects except the last (remainder), so the per-worker sums
    /// are two prefix-table lookups instead of an `O(N)` scan — and
    /// bit-identical to the open form, because the tables replay the
    /// exact left-folds `objs.iter().sum()` would run (a test asserts
    /// this across the whole `k_M` range).
    fn mapper_phase_uniform(&self, mem_mb: u32, k_m: usize) -> MapperPhase {
        let n = self.job.num_objects();
        let workers = n.div_ceil(k_m);
        let last = n - k_m * (workers - 1);
        let secs_per_mb = self
            .platform
            .secs_per_mb(mem_mb, self.job.profile.map_secs_per_mb_128);
        let sizes = self.size_prefix(n);
        let gets = self.get_prefix(mem_mb);
        let lifetime = |c: usize| {
            let input_mb = sizes[c];
            let output_mb = input_mb * self.job.profile.shuffle_ratio;
            let transfer = gets[c] + self.platform.inter_put_secs(mem_mb, output_mb);
            (transfer + input_mb * secs_per_mb, output_mb)
        };
        let (full_s, full_mb) = lifetime(k_m);
        let (last_s, last_mb) = if last == k_m {
            (full_s, full_mb)
        } else {
            lifetime(last)
        };
        let mut per_mapper = vec![full_s; workers];
        let mut outputs = vec![full_mb; workers];
        per_mapper[workers - 1] = last_s;
        outputs[workers - 1] = last_mb;
        let spawn = self.platform.spawn_secs(per_mapper.len());
        let duration = per_mapper.iter().cloned().fold(0.0, f64::max) + spawn;
        MapperPhase {
            per_mapper_secs: per_mapper,
            duration_s: duration,
            output_sizes_mb: outputs,
        }
    }

    /// The job this cache evaluates.
    pub fn job(&self) -> &JobSpec {
        self.job
    }

    /// The platform this cache evaluates against.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The mapping phase at `(mapper mem tier, k_M)` (Eq. 1–4). Uniform
    /// jobs take the `O(j)` closed form; ragged jobs the `O(N)` scan.
    pub fn mapper_phase(&self, mem_mb: u32, k_m: usize) -> Arc<MapperPhase> {
        self.mapper.get_or((mem_mb, k_m), || {
            if self.uniform_mb.is_some() {
                self.mapper_phase_uniform(mem_mb, k_m)
            } else {
                mapper_phase(self.job, self.platform, mem_mb, k_m)
            }
        })
    }

    /// Per-mapper shuffle output volumes for `k_M` (tier-independent:
    /// sizes depend only on the object assignment and the shuffle ratio).
    pub fn mapper_outputs(&self, k_m: usize) -> Arc<Vec<f64>> {
        self.outputs.get_or(k_m, || {
            if self.uniform_mb.is_some() {
                let n = self.job.num_objects();
                let workers = n.div_ceil(k_m);
                let last = n - k_m * (workers - 1);
                let sizes = self.size_prefix(n);
                let ratio = self.job.profile.shuffle_ratio;
                let mut out = vec![sizes[k_m] * ratio; workers];
                out[workers - 1] = sizes[last] * ratio;
                return out;
            }
            astra_model::distribute::distribute_sizes(&self.job.object_sizes_mb, k_m)
                .into_iter()
                .map(|objs| objs.iter().sum::<f64>() * self.job.profile.shuffle_ratio)
                .collect()
        })
    }

    /// The Table II reduce-step schedule for `(k_M, k_R)`.
    pub fn reduce_structure(&self, k_m: usize, k_r: usize) -> Arc<ReduceStructure> {
        self.structure.get_or((k_m, k_r), || {
            let outputs = self.mapper_outputs(k_m);
            reduce_structure(&outputs, k_r, &self.job.profile, self.platform)
        })
    }

    /// Reducer lifetimes for `(k_M, k_R)` at one reducer memory tier.
    pub fn reduce_tier_times(&self, k_m: usize, k_r: usize, mem_mb: u32) -> Arc<ReduceTierTimes> {
        self.tier_times.get_or((k_m, k_r, mem_mb), || {
            let structure = self.reduce_structure(k_m, k_r);
            reduce_tier_times(&structure, self.platform, &self.job.profile, mem_mb)
        })
    }

    /// Evaluate one configuration end to end through the cache.
    ///
    /// Bit-identical to [`astra_model::evaluate()`](astra_model::evaluate::evaluate)
    /// on the same inputs
    /// (invariant 2): the feasibility checks, their order, and every
    /// arithmetic operation match the uncached path.
    pub fn evaluate(
        &self,
        config: &JobConfig,
        catalog: &PriceCatalog,
    ) -> Result<Evaluation, Infeasibility> {
        for mem in [
            config.mapper_mem_mb,
            config.coordinator_mem_mb,
            config.reducer_mem_mb,
        ] {
            if !self.platform.is_valid_tier(mem) {
                return Err(Infeasibility::InvalidMemoryTier { mem_mb: mem });
            }
        }
        config.validate();
        self.job.profile.validate();

        let mapper = (*self.mapper_phase(config.mapper_mem_mb, config.objects_per_mapper)).clone();
        let structure = (*self
            .reduce_structure(config.objects_per_mapper, config.objects_per_reducer))
        .clone();
        let times = (*self.reduce_tier_times(
            config.objects_per_mapper,
            config.objects_per_reducer,
            config.reducer_mem_mb,
        ))
        .clone();
        let coord_compute_s = coordinator_compute_secs(
            self.job.shuffle_mb(),
            self.platform,
            &self.job.profile,
            config.coordinator_mem_mb,
        );
        let coord_state_put_s = coordinator_state_put_secs(
            structure.num_steps(),
            self.platform,
            &self.job.profile,
            config.coordinator_mem_mb,
        );
        let perf = PerfBreakdown {
            mapper,
            coord_compute_s,
            coord_state_put_s,
            reduce: ReducePhase { structure, times },
        };
        check_feasibility(self.job, self.platform, &perf)?;
        let cost = full_cost(self.job, config, &perf, self.platform, catalog);
        Ok(Evaluation { perf, cost })
    }

    /// Number of memoized entries across all maps (for diagnostics and
    /// the bench runner's cache-effectiveness report).
    pub fn entries(&self) -> usize {
        self.mapper.len() + self.outputs.len() + self.structure.len() + self.tier_times.len()
    }

    /// Hit/miss tallies across all maps. Purely diagnostic (telemetry
    /// counters `planner.cache.hits` / `planner.cache.misses`); the
    /// counts never influence planning.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.mapper.hits()
                + self.outputs.hits()
                + self.structure.hits()
                + self.tier_times.hits(),
            misses: self.mapper.misses()
                + self.outputs.misses()
                + self.structure.misses()
                + self.tier_times.misses(),
            entries: self.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::{evaluate, WorkloadProfile};

    fn cfg(mem: u32, k_m: usize, k_r: usize) -> JobConfig {
        JobConfig {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k_m,
            objects_per_reducer: k_r,
        }
    }

    #[test]
    fn cached_evaluation_matches_uncached_exactly() {
        let job = JobSpec::uniform("t", 12, 1.5, WorkloadProfile::uniform_test());
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let cache = ModelCache::new(&job, &platform);
        for mem in [128, 512, 3008] {
            for k_m in [1, 2, 5] {
                for k_r in [2, 4] {
                    let c = cfg(mem, k_m, k_r);
                    let a = cache.evaluate(&c, &catalog);
                    let b = evaluate(&job, &platform, &c, &catalog);
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.total_cost(), y.total_cost(), "{c:?}");
                            assert_eq!(x.jct_s().to_bits(), y.jct_s().to_bits(), "{c:?}");
                        }
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        (x, y) => panic!("verdicts diverge for {c:?}: {x:?} vs {y:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn closed_form_mapper_matches_open_form_bitwise() {
        use astra_model::perf::mapper_phase as open_form;
        let platform = Platform::aws_lambda();
        for n in [1usize, 2, 5, 12, 37] {
            let job = JobSpec::uniform("t", n, 1.75, WorkloadProfile::uniform_test());
            let cache = ModelCache::new(&job, &platform);
            assert!(cache.uniform_mb.is_some());
            for mem in [128, 1792, 3008] {
                for k_m in 1..=n {
                    let fast = cache.mapper_phase(mem, k_m);
                    let slow = open_form(&job, &platform, mem, k_m);
                    assert_eq!(
                        fast.duration_s.to_bits(),
                        slow.duration_s.to_bits(),
                        "n={n} mem={mem} k_m={k_m}"
                    );
                    assert_eq!(fast.per_mapper_secs.len(), slow.per_mapper_secs.len());
                    for (a, b) in fast.per_mapper_secs.iter().zip(&slow.per_mapper_secs) {
                        assert_eq!(a.to_bits(), b.to_bits(), "n={n} mem={mem} k_m={k_m}");
                    }
                    for (a, b) in fast.output_sizes_mb.iter().zip(&slow.output_sizes_mb) {
                        assert_eq!(a.to_bits(), b.to_bits(), "n={n} mem={mem} k_m={k_m}");
                    }
                    let outs = cache.mapper_outputs(k_m);
                    for (a, b) in outs.iter().zip(&slow.output_sizes_mb) {
                        assert_eq!(a.to_bits(), b.to_bits(), "n={n} k_m={k_m}");
                    }
                }
            }
        }
        // Ragged jobs must not take the closed form.
        let ragged = JobSpec {
            name: "r".into(),
            object_sizes_mb: vec![1.0, 2.0, 1.0],
            profile: WorkloadProfile::uniform_test(),
        };
        assert!(ModelCache::new(&ragged, &platform).uniform_mb.is_none());
    }

    #[test]
    fn cache_is_populated_and_reused() {
        let job = JobSpec::uniform("t", 8, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let cache = ModelCache::new(&job, &platform);
        cache.evaluate(&cfg(128, 2, 2), &catalog).unwrap();
        let after_first = cache.entries();
        assert!(after_first >= 4, "mapper + outputs + structure + times");
        // Same sub-keys: only the reducer-tier entry is new.
        cache.evaluate(&cfg(128, 2, 2), &catalog).unwrap();
        assert_eq!(cache.entries(), after_first);
        cache
            .evaluate(
                &JobConfig {
                    reducer_mem_mb: 1024,
                    ..cfg(128, 2, 2)
                },
                &catalog,
            )
            .unwrap();
        assert_eq!(cache.entries(), after_first + 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let job = JobSpec::uniform("t", 8, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let cache = ModelCache::new(&job, &platform);
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.evaluate(&cfg(128, 2, 2), &catalog).unwrap();
        let first = cache.stats();
        assert!(first.misses >= 4, "mapper + outputs + structure + times");
        // Re-evaluating the same configuration only hits.
        cache.evaluate(&cfg(128, 2, 2), &catalog).unwrap();
        let second = cache.stats();
        assert_eq!(second.misses, first.misses);
        assert!(second.hits > first.hits);
        assert!(second.hit_rate() > 0.0);
        assert_eq!(second.entries, cache.entries());
    }

    #[test]
    fn invalid_tier_short_circuits() {
        let job = JobSpec::uniform("t", 4, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::aws_lambda();
        let cache = ModelCache::new(&job, &platform);
        let err = cache
            .evaluate(&cfg(100, 2, 2), &PriceCatalog::aws_2020())
            .unwrap_err();
        assert_eq!(err, Infeasibility::InvalidMemoryTier { mem_mb: 100 });
        assert_eq!(cache.entries(), 0, "nothing cached for rejected tiers");
    }

    #[test]
    fn shared_across_threads_stays_consistent() {
        let job = JobSpec::uniform("t", 10, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let cache = ModelCache::new(&job, &platform);
        let reference = evaluate(&job, &platform, &cfg(512, 2, 3), &catalog).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let ev = cache.evaluate(&cfg(512, 2, 3), &catalog).unwrap();
                        assert_eq!(ev.total_cost(), reference.total_cost());
                    }
                });
            }
        });
    }
}
