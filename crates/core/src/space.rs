//! The configuration space the planner searches.

use astra_model::{JobConfig, JobSpec, Platform};
use serde::{Deserialize, Serialize};

/// Enumerable bounds of the search: which memory tiers and which
/// partitioning values to consider.
///
/// The full space for a job with `N` objects is `L³ × N × N` points
/// (three independent memory choices, `k_M`, `k_R`); the DAG encoding
/// never materialises it, but the exhaustive validator does, so tests use
/// [`ConfigSpace::with_tiers`] to shrink `L`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate memory tiers (MB) for all three roles.
    pub memory_tiers_mb: Vec<u32>,
    /// Candidate objects-per-mapper values (`k_M`).
    pub k_m_values: Vec<usize>,
    /// Candidate objects-per-reducer values (`k_R`); values above the
    /// mapper count `j` collapse to `j` (single-step reduce) and are
    /// deduplicated per `k_M`.
    pub k_r_values: Vec<usize>,
}

impl ConfigSpace {
    /// The complete space for `job` on `platform`: every tier, every
    /// `k_M` producing at most `max_concurrency` mappers, every `k_R`.
    pub fn full(job: &JobSpec, platform: &Platform) -> Self {
        let n = job.num_objects();
        let min_k_m = n.div_ceil(platform.max_concurrency as usize).max(1);
        ConfigSpace {
            memory_tiers_mb: platform.memory_tiers_mb.clone(),
            k_m_values: (min_k_m..=n).collect(),
            k_r_values: (2..=n.max(2)).collect(),
        }
    }

    /// Same partitioning range but a restricted tier list (for tests and
    /// ablations).
    pub fn with_tiers(job: &JobSpec, platform: &Platform, tiers: &[u32]) -> Self {
        ConfigSpace {
            memory_tiers_mb: tiers.to_vec(),
            ..Self::full(job, platform)
        }
    }

    /// The `k_R` candidates that are meaningfully distinct for `j` mapper
    /// outputs: values in `2..=j`, plus `j` itself if every candidate
    /// exceeds it (all `k_R >= j` give the same single-step schedule).
    pub fn k_r_candidates(&self, j: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .k_r_values
            .iter()
            .copied()
            .map(|k| k.min(j.max(2)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every configuration in the space (deduplicated `k_R` per `k_M`).
    pub fn iter_configs<'a>(&'a self, job: &'a JobSpec) -> impl Iterator<Item = JobConfig> + 'a {
        let n = job.num_objects();
        self.k_m_values.iter().flat_map(move |&k_m| {
            let j = n.div_ceil(k_m);
            let k_rs = self.k_r_candidates(j);
            let tiers = &self.memory_tiers_mb;
            k_rs.into_iter().flat_map(move |k_r| {
                tiers.iter().flat_map(move |&i| {
                    tiers.iter().flat_map(move |&a| {
                        tiers.iter().map(move |&s| JobConfig {
                            mapper_mem_mb: i,
                            coordinator_mem_mb: a,
                            reducer_mem_mb: s,
                            objects_per_mapper: k_m,
                            objects_per_reducer: k_r,
                        })
                    })
                })
            })
        })
    }

    /// Number of configurations [`iter_configs`](Self::iter_configs)
    /// yields.
    pub fn size(&self, job: &JobSpec) -> usize {
        let n = job.num_objects();
        let tiers = self.memory_tiers_mb.len();
        self.k_m_values
            .iter()
            .map(|&k_m| self.k_r_candidates(n.div_ceil(k_m)).len())
            .sum::<usize>()
            * tiers
            * tiers
            * tiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn full_space_covers_all_tiers_and_k() {
        let platform = Platform::aws_lambda();
        let s = ConfigSpace::full(&job(10), &platform);
        assert_eq!(s.memory_tiers_mb.len(), 46);
        assert_eq!(s.k_m_values, (1..=10).collect::<Vec<_>>());
        assert_eq!(s.k_r_values, (2..=10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrency_bounds_k_m_from_below() {
        let mut platform = Platform::aws_lambda();
        platform.max_concurrency = 4;
        let s = ConfigSpace::full(&job(10), &platform);
        // Fewer than ceil(10/4)=3 objects per mapper would need > 4 mappers.
        assert_eq!(s.k_m_values[0], 3);
    }

    #[test]
    fn k_r_candidates_collapse_above_j() {
        let platform = Platform::aws_lambda();
        let s = ConfigSpace::full(&job(10), &platform);
        // j = 3 mappers: k_R in {2, 3} only (4..10 behave like 3).
        assert_eq!(s.k_r_candidates(3), vec![2, 3]);
        // j = 1: single candidate.
        assert_eq!(s.k_r_candidates(1), vec![2]);
    }

    #[test]
    fn size_matches_iterator_count() {
        let platform = Platform::aws_lambda();
        let j = job(6);
        let s = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        assert_eq!(s.size(&j), s.iter_configs(&j).count());
    }

    #[test]
    fn iterated_configs_are_unique() {
        let platform = Platform::aws_lambda();
        let j = job(5);
        let s = ConfigSpace::with_tiers(&j, &platform, &[128, 3008]);
        let configs: Vec<JobConfig> = s.iter_configs(&j).collect();
        let mut dedup = configs.clone();
        dedup.sort_by_key(|c| {
            (
                c.mapper_mem_mb,
                c.coordinator_mem_mb,
                c.reducer_mem_mb,
                c.objects_per_mapper,
                c.objects_per_reducer,
            )
        });
        dedup.dedup();
        assert_eq!(dedup.len(), configs.len());
    }
}
