//! The configuration space the planner searches.

use astra_model::{JobConfig, JobSpec, Platform};
use serde::{Deserialize, Serialize};

/// Enumerable bounds of the search: which memory tiers and which
/// partitioning values to consider.
///
/// The full space for a job with `N` objects is `L³ × N × N` points
/// (three independent memory choices, `k_M`, `k_R`); the DAG encoding
/// never materialises it, but the exhaustive validator does, so tests use
/// [`ConfigSpace::with_tiers`] to shrink `L`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate memory tiers (MB) for all three roles.
    pub memory_tiers_mb: Vec<u32>,
    /// Candidate objects-per-mapper values (`k_M`).
    pub k_m_values: Vec<usize>,
    /// Candidate objects-per-reducer values (`k_R`); values above the
    /// mapper count `j` collapse to `j` (single-step reduce) and are
    /// deduplicated per `k_M`.
    pub k_r_values: Vec<usize>,
    /// Per-entry multiplicities for `k_m_values`: how many raw `k_M`
    /// candidates each representative stands for when the space was built
    /// by [`ConfigSpace::bundled`]. Empty (the default, and the state of
    /// every previously serialized space) means all ones — every entry
    /// represents only itself.
    #[serde(default)]
    pub k_m_weights: Vec<usize>,
}

impl ConfigSpace {
    /// The complete space for `job` on `platform`: every tier, every
    /// `k_M` producing at most `max_concurrency` mappers, every `k_R`.
    pub fn full(job: &JobSpec, platform: &Platform) -> Self {
        let n = job.num_objects();
        let min_k_m = n.div_ceil(platform.max_concurrency as usize).max(1);
        ConfigSpace {
            memory_tiers_mb: platform.memory_tiers_mb.clone(),
            k_m_values: (min_k_m..=n).collect(),
            k_r_values: (2..=n.max(2)).collect(),
            k_m_weights: Vec::new(),
        }
    }

    /// The production-scale space: every memory tier, but partitioning
    /// candidates collapsed into bundles so the DAG stays sub-second at
    /// `N = 10^5`–`10^6` objects.
    ///
    /// Two collapses, applied on top of [`ConfigSpace::full`]:
    ///
    /// * **`k_M` classes.** All raw `k_M` values that yield the same
    ///   mapper count `j = ceil(N/k_M)` form one class; the class is
    ///   represented by its smallest member (the most balanced
    ///   partition) and carries the class size in `k_m_weights`. The
    ///   planner's observable outputs are parameterized by `j`, so one
    ///   representative per degree of parallelism covers every distinct
    ///   fan-out the full space can express.
    /// * **`k_R` ladder.** Instead of every value in `2..=N`, a
    ///   geometric ladder (powers of four, plus the maximum useful
    ///   value). Per `j`, [`k_r_candidates`](Self::k_r_candidates) still
    ///   clamps and deduplicates, so every ladder rung above `j`
    ///   collapses onto the exact single-step bundle `k_R = j` just as
    ///   the raw `j..=N` range would.
    ///
    /// The SoA edge store records the class sizes as edge
    /// multiplicities; `planner.dag.bundles_collapsed` reports how many
    /// raw candidates were folded away.
    pub fn bundled(job: &JobSpec, platform: &Platform) -> Self {
        let n = job.num_objects();
        let min_k_m = n.div_ceil(platform.max_concurrency as usize).max(1);
        let j_max = n.div_ceil(min_k_m).max(1);
        // One representative k_M (the smallest, with the largest
        // remainder worker — the most balanced split) per achievable j,
        // visited in increasing-k_M order to keep k_m_values ascending.
        let mut k_m_values = Vec::new();
        let mut k_m_weights = Vec::new();
        for j in (1..=j_max).rev() {
            // k_M values with ceil(n/k_M) == j form the contiguous range
            // [ceil(n/j), floor((n-1)/(j-1))] (unbounded above for j=1).
            let lo = n.div_ceil(j).max(min_k_m);
            let hi = if j == 1 { n } else { ((n - 1) / (j - 1)).min(n) };
            if lo > hi || n.div_ceil(lo) != j {
                continue; // j unachievable within [min_k_m, n]
            }
            k_m_values.push(lo);
            k_m_weights.push(hi - lo + 1);
        }
        // Geometric k_R ladder: 2, 8, 32, ... capped by the widest
        // mapper fan-out (larger values clamp to j anyway).
        let cap = j_max.max(2);
        let mut k_r_values = Vec::new();
        let mut k = 2usize;
        while k < cap {
            k_r_values.push(k);
            k = k.saturating_mul(4);
        }
        k_r_values.push(cap);
        ConfigSpace {
            memory_tiers_mb: platform.memory_tiers_mb.clone(),
            k_m_values,
            k_r_values,
            k_m_weights,
        }
    }

    /// How many raw `k_M` candidates the entry `k_m` represents (1 for
    /// spaces without bundle weights, or for unknown values).
    pub fn k_m_weight(&self, k_m: usize) -> usize {
        if self.k_m_weights.is_empty() {
            return 1;
        }
        self.k_m_values
            .iter()
            .position(|&v| v == k_m)
            .and_then(|i| self.k_m_weights.get(i).copied())
            .unwrap_or(1)
    }

    /// How many raw `k_R` values in this space collapse onto the
    /// candidate `k_r` at mapper count `j` (the `min(k_R, j)` clamp of
    /// [`k_r_candidates`](Self::k_r_candidates) merges every value
    /// `>= j` into the single-step bundle).
    pub fn k_r_weight(&self, j: usize, k_r: usize) -> usize {
        let cap = j.max(2);
        self.k_r_values
            .iter()
            .filter(|&&v| v.min(cap) == k_r)
            .count()
            .max(1)
    }

    /// Same partitioning range but a restricted tier list (for tests and
    /// ablations).
    pub fn with_tiers(job: &JobSpec, platform: &Platform, tiers: &[u32]) -> Self {
        ConfigSpace {
            memory_tiers_mb: tiers.to_vec(),
            ..Self::full(job, platform)
        }
    }

    /// The `k_R` candidates that are meaningfully distinct for `j` mapper
    /// outputs: values in `2..=j`, plus `j` itself if every candidate
    /// exceeds it (all `k_R >= j` give the same single-step schedule).
    pub fn k_r_candidates(&self, j: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .k_r_values
            .iter()
            .copied()
            .map(|k| k.min(j.max(2)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every configuration in the space (deduplicated `k_R` per `k_M`).
    pub fn iter_configs<'a>(&'a self, job: &'a JobSpec) -> impl Iterator<Item = JobConfig> + 'a {
        let n = job.num_objects();
        self.k_m_values.iter().flat_map(move |&k_m| {
            let j = n.div_ceil(k_m);
            let k_rs = self.k_r_candidates(j);
            let tiers = &self.memory_tiers_mb;
            k_rs.into_iter().flat_map(move |k_r| {
                tiers.iter().flat_map(move |&i| {
                    tiers.iter().flat_map(move |&a| {
                        tiers.iter().map(move |&s| JobConfig {
                            mapper_mem_mb: i,
                            coordinator_mem_mb: a,
                            reducer_mem_mb: s,
                            objects_per_mapper: k_m,
                            objects_per_reducer: k_r,
                        })
                    })
                })
            })
        })
    }

    /// Number of configurations [`iter_configs`](Self::iter_configs)
    /// yields.
    pub fn size(&self, job: &JobSpec) -> usize {
        let n = job.num_objects();
        let tiers = self.memory_tiers_mb.len();
        self.k_m_values
            .iter()
            .map(|&k_m| self.k_r_candidates(n.div_ceil(k_m)).len())
            .sum::<usize>()
            * tiers
            * tiers
            * tiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn full_space_covers_all_tiers_and_k() {
        let platform = Platform::aws_lambda();
        let s = ConfigSpace::full(&job(10), &platform);
        assert_eq!(s.memory_tiers_mb.len(), 46);
        assert_eq!(s.k_m_values, (1..=10).collect::<Vec<_>>());
        assert_eq!(s.k_r_values, (2..=10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrency_bounds_k_m_from_below() {
        let mut platform = Platform::aws_lambda();
        platform.max_concurrency = 4;
        let s = ConfigSpace::full(&job(10), &platform);
        // Fewer than ceil(10/4)=3 objects per mapper would need > 4 mappers.
        assert_eq!(s.k_m_values[0], 3);
    }

    #[test]
    fn k_r_candidates_collapse_above_j() {
        let platform = Platform::aws_lambda();
        let s = ConfigSpace::full(&job(10), &platform);
        // j = 3 mappers: k_R in {2, 3} only (4..10 behave like 3).
        assert_eq!(s.k_r_candidates(3), vec![2, 3]);
        // j = 1: single candidate.
        assert_eq!(s.k_r_candidates(1), vec![2]);
    }

    #[test]
    fn bundled_representatives_partition_the_full_k_m_range() {
        let platform = Platform::aws_lambda();
        for n in [1, 2, 7, 10, 97, 1000] {
            let j = job(n);
            let full = ConfigSpace::full(&j, &platform);
            let b = ConfigSpace::bundled(&j, &platform);
            // One representative per achievable mapper count, ascending.
            let full_js: std::collections::BTreeSet<usize> =
                full.k_m_values.iter().map(|&k| n.div_ceil(k)).collect();
            let b_js: Vec<usize> = b.k_m_values.iter().map(|&k| n.div_ceil(k)).collect();
            let b_j_set: std::collections::BTreeSet<usize> = b_js.iter().copied().collect();
            assert_eq!(b_j_set, full_js, "n={n}");
            assert_eq!(b_j_set.len(), b_js.len(), "n={n}: duplicate class");
            let mut sorted = b.k_m_values.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, b.k_m_values, "n={n}: representatives ascending");
            // Class weights partition the raw candidate range exactly.
            assert_eq!(
                b.k_m_weights.iter().sum::<usize>(),
                full.k_m_values.len(),
                "n={n}"
            );
            // Each representative is the smallest member of its class.
            for (&k, &w) in b.k_m_values.iter().zip(&b.k_m_weights) {
                assert_eq!(b.k_m_weight(k), w);
                if k > full.k_m_values[0] {
                    assert_ne!(n.div_ceil(k - 1), n.div_ceil(k), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn bundled_k_r_ladder_clamps_like_the_full_range() {
        let platform = Platform::aws_lambda();
        let j1000 = job(1000);
        let b = ConfigSpace::bundled(&j1000, &platform);
        assert_eq!(b.k_r_values, vec![2, 8, 32, 128, 512, 1000]);
        // Rungs above j collapse onto the single-step bundle k_R = j,
        // and the weight counts every merged rung.
        assert_eq!(b.k_r_candidates(10), vec![2, 8, 10]);
        assert_eq!(b.k_r_weight(10, 10), 4); // 32, 128, 512, 1000
        assert_eq!(b.k_r_weight(10, 2), 1);
    }

    #[test]
    fn unweighted_spaces_report_unit_weights() {
        let platform = Platform::aws_lambda();
        let j10 = job(10);
        let s = ConfigSpace::full(&j10, &platform);
        assert!(s.k_m_weights.is_empty());
        assert_eq!(s.k_m_weight(3), 1);
        assert_eq!(s.k_m_weight(999), 1);
    }

    #[test]
    fn size_matches_iterator_count() {
        let platform = Platform::aws_lambda();
        let j = job(6);
        let s = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        assert_eq!(s.size(&j), s.iter_configs(&j).count());
    }

    #[test]
    fn iterated_configs_are_unique() {
        let platform = Platform::aws_lambda();
        let j = job(5);
        let s = ConfigSpace::with_tiers(&j, &platform, &[128, 3008]);
        let configs: Vec<JobConfig> = s.iter_configs(&j).collect();
        let mut dedup = configs.clone();
        dedup.sort_by_key(|c| {
            (
                c.mapper_mem_mb,
                c.coordinator_mem_mb,
                c.reducer_mem_mb,
                c.objects_per_mapper,
                c.objects_per_reducer,
            )
        });
        dedup.dedup();
        assert_eq!(dedup.len(), configs.len());
    }
}
