//! Incremental re-planning: classify the delta between two planning
//! inputs and recost the affected DAG edge families in place.
//!
//! An interactive re-quote usually perturbs a *slice* of the model —
//! one profile coefficient recalibrated, a price bump, a renamed job —
//! while the DAG's shape (columns, feasibility gates, pruning verdicts)
//! stays put. [`JobDelta`] diffs two `(job, space, platform, prices)`
//! tuples into the change classes below; `PlannerSession::apply_delta`
//! then picks the cheapest sound repair:
//!
//! * **fast recost** (`RecostPlan`) — only the touched edge families
//!   are re-evaluated through the O(1) cost kernels and written back
//!   into the existing arena + SoA mirror. Sound only when no
//!   feasibility gate or pruning verdict can flip: unpruned DAGs and
//!   deltas limited to `{name, mapper_coeff, prices}` (a mapper-
//!   coefficient change can flip the mapper timeout gate, so the new
//!   feasible set is verified against the captured topology first —
//!   any flip falls back).
//! * **recipe replay** (`PlannerDag::try_patch_recompute`) — recompute
//!   the column recipes and replay assembly order against the existing
//!   topology, overwriting payloads. Handles pruned DAGs and any
//!   non-reshape delta; a shape divergence falls back to a rebuild.
//! * **rebuild** — space/platform changes (including input-count
//!   changes that re-bucket the space) always rebuild.
//!
//! Every repair path is bit-identical to a cold rebuild at the new
//! inputs (`tests/replan_equivalence.rs` pins this under proptest).

use std::collections::HashMap;

use astra_graph::EdgeId;
use astra_model::cost::{
    coordinator_storage_cost, mapper_edge_cost, orchestration_requests_cost, reduce_edge_cost,
    runtime_cost,
};
use astra_model::schedule::total_input_mb;
use astra_model::{JobSpec, Platform};
use astra_pricing::PriceCatalog;

use crate::cache::ModelCache;
use crate::dag::{Choice, EdgeMetrics, PlannerDag};
use crate::space::ConfigSpace;

/// What `PlannerSession::apply_delta` did to serve the new inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanOutcome {
    /// The inputs were identical (or differed only cosmetically); the
    /// session answers from its existing state.
    Unchanged,
    /// Only the affected edge families were recosted in place.
    Patched,
    /// All column recipes were recomputed and replayed onto the
    /// existing topology.
    Replayed,
    /// The delta changed DAG shape; the session rebuilt from scratch.
    Rebuilt,
}

/// A DAG edge family, as reported by [`JobDelta::affected_families`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFamily {
    /// `x_i -> k_M` mapper edges (time `T1`, cost `U1+V1+W1`).
    Mapper,
    /// `k_M -> (k_M,k_R)` orchestration edges (cost only).
    Orchestration,
    /// `(k_M,k_R) -> +coord` coordinator edges (time `T2`, cost `V2`).
    Coordinator,
    /// `+coord -> z_s` final edges (reduce phase time, reduce + coord
    /// runtime cost).
    Final,
}

/// Field-level diff of two planning-input tuples, bucketed into the
/// change classes the repair tiers key on. Float fields compare by
/// `to_bits`, so a delta is "changed" exactly when a cold rebuild could
/// produce different arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobDelta {
    /// Job or profile name changed (cosmetic; no model term reads it).
    pub name: bool,
    /// `map_secs_per_mb_128` changed: mapper phase times, costs and the
    /// mapper timeout gate.
    pub mapper_coeff: bool,
    /// `reduce_secs_per_mb_128` changed: reduce tier times, final-edge
    /// metrics and the reducer/coordinator timeout gates.
    pub reduce_coeff: bool,
    /// `coord_secs_per_mb_128` changed: coordinator compute time, `e3`
    /// and final-edge metrics.
    pub coord_coeff: bool,
    /// Any other model-bearing job value changed (object sizes with the
    /// count held fixed, shuffle/reduce ratios, state object size,
    /// single-pass flag): potentially every family and gate.
    pub job_values: bool,
    /// The price catalog changed: every cost metric, no time and no
    /// gate (gates are time- and storage-only).
    pub prices: bool,
    /// The DAG's shape inputs changed — config space, platform, or the
    /// number of input objects (which re-buckets the space). Always a
    /// rebuild.
    pub reshape: bool,
}

fn f64_ne(a: f64, b: f64) -> bool {
    a.to_bits() != b.to_bits()
}

impl JobDelta {
    /// Diff `(old_job, old_space, old_platform, old_catalog)` against
    /// the new tuple.
    #[allow(clippy::too_many_arguments)] // the two full input tuples, flattened
    pub fn classify(
        old_job: &JobSpec,
        old_space: &ConfigSpace,
        old_platform: &Platform,
        old_catalog: &PriceCatalog,
        new_job: &JobSpec,
        new_space: &ConfigSpace,
        new_platform: &Platform,
        new_catalog: &PriceCatalog,
    ) -> JobDelta {
        let mut d = JobDelta::default();
        if old_space != new_space
            || old_platform != new_platform
            || old_job.object_sizes_mb.len() != new_job.object_sizes_mb.len()
        {
            d.reshape = true;
        }
        if old_job.name != new_job.name || old_job.profile.name != new_job.profile.name {
            d.name = true;
        }
        let (op, np) = (&old_job.profile, &new_job.profile);
        d.mapper_coeff = f64_ne(op.map_secs_per_mb_128, np.map_secs_per_mb_128);
        d.reduce_coeff = f64_ne(op.reduce_secs_per_mb_128, np.reduce_secs_per_mb_128);
        d.coord_coeff = f64_ne(op.coord_secs_per_mb_128, np.coord_secs_per_mb_128);
        d.job_values = old_job.object_sizes_mb.len() == new_job.object_sizes_mb.len()
            && old_job
                .object_sizes_mb
                .iter()
                .zip(&new_job.object_sizes_mb)
                .any(|(&a, &b)| f64_ne(a, b))
            || f64_ne(op.shuffle_ratio, np.shuffle_ratio)
            || f64_ne(op.reduce_ratio, np.reduce_ratio)
            || f64_ne(op.state_object_mb, np.state_object_mb)
            || op.single_pass_reduce != np.single_pass_reduce;
        d.prices = old_catalog != new_catalog;
        d
    }

    /// No class fired at all: the tuples are interchangeable.
    pub fn is_identity(&self) -> bool {
        *self == JobDelta::default()
    }

    /// Only cosmetic classes fired (name changes never reach the model).
    pub fn is_cosmetic(&self) -> bool {
        JobDelta {
            name: false,
            ..*self
        } == JobDelta::default()
    }

    /// The delta can skip the rebuild (shape inputs untouched).
    pub fn patchable(&self) -> bool {
        !self.reshape
    }

    /// The delta qualifies for the fast in-place recost tier: classes
    /// within `{name, mapper_coeff, prices}`. (Only sound on unpruned
    /// DAGs; the session checks that separately.)
    pub fn fast_patchable(&self) -> bool {
        !self.reshape && !self.reduce_coeff && !self.coord_coeff && !self.job_values
    }

    /// Whether any time metric (and therefore any feasibility gate or
    /// memoized deadline answer) can move under this delta.
    pub fn affects_time(&self) -> bool {
        self.mapper_coeff
            || self.reduce_coeff
            || self.coord_coeff
            || self.job_values
            || self.reshape
    }

    /// The edge families a fast recost must touch for this delta.
    pub fn affected_families(&self) -> Vec<EdgeFamily> {
        let mut fams = Vec::new();
        if self.mapper_coeff || self.job_values || self.prices || self.reshape {
            fams.push(EdgeFamily::Mapper);
        }
        if self.job_values || self.prices || self.reshape {
            fams.push(EdgeFamily::Orchestration);
        }
        if self.coord_coeff || self.job_values || self.prices || self.reshape {
            fams.push(EdgeFamily::Coordinator);
        }
        if self.reduce_coeff || self.coord_coeff || self.job_values || self.prices || self.reshape
        {
            fams.push(EdgeFamily::Final);
        }
        fams
    }
}

/// One column-2 node's mapper fan-in: its `k_M` and the `(tier index,
/// edge id)` pairs of the surviving `x_i -> k_M` edges.
#[derive(Debug, Clone)]
struct MapperCtx {
    k_m: usize,
    node: u32,
    edges: Vec<(usize, EdgeId)>,
}

/// One column-4 node inside a pair: its tier, `e3` edge and final
/// edges as `(reducer tier index, edge id)`.
#[derive(Debug, Clone)]
struct CoordCtx {
    node: u32,
    a_mem: u32,
    e3: EdgeId,
    finals: Vec<(usize, EdgeId)>,
}

/// One `(k_M, k_R)` column-3 node and everything hanging off it.
#[derive(Debug, Clone)]
struct PairCtx {
    k_m: usize,
    k_r: usize,
    node: u32,
    e2: EdgeId,
    coords: Vec<CoordCtx>,
}

/// Topology index for the fast recost tier: where each recostable edge
/// family lives in the arena, keyed by the configuration choices its
/// cost kernels need. Captured lazily from a built DAG (one O(V+E)
/// walk) and reused across deltas until a replay or rebuild invalidates
/// it.
#[derive(Debug, Clone)]
pub(crate) struct RecostPlan {
    /// Column-1 node ids in tier order (the mapper edges' tails).
    col1: Vec<u32>,
    mappers: Vec<MapperCtx>,
    /// `k_m -> index into mappers`.
    mapper_of_k_m: HashMap<usize, usize>,
    pairs: Vec<PairCtx>,
}

impl RecostPlan {
    /// Index `dag`'s topology. Returns `None` if the graph does not
    /// have the canonical assembled shape (defensive; cannot happen for
    /// DAGs built by this crate).
    pub(crate) fn capture(dag: &PlannerDag, space: &ConfigSpace) -> Option<RecostPlan> {
        let g = dag.graph();
        let tiers = &space.memory_tiers_mb;
        let t = tiers.len();
        let tier_index: HashMap<u32, usize> =
            tiers.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        // Canonical id layout: source=0, sink=1, col1=2..2+T, col5=2+T..2+2T.
        let mut col1 = Vec::with_capacity(t);
        for (i, &m) in tiers.iter().enumerate() {
            let id = 2 + i as u32;
            if *g.node(astra_graph::NodeId(id)) != Choice::MapperMem(m) {
                return None;
            }
            col1.push(id);
        }
        let col5_base = 2 + t as u32;
        for (i, &m) in tiers.iter().enumerate() {
            let id = col5_base + i as u32;
            if *g.node(astra_graph::NodeId(id)) != Choice::ReducerMem(m) {
                return None;
            }
        }

        let mut mappers: Vec<MapperCtx> = Vec::new();
        let mut pairs: Vec<PairCtx> = Vec::new();
        let mut mapper_idx: HashMap<u32, usize> = HashMap::new();
        let mut pair_idx: HashMap<u32, usize> = HashMap::new();
        let mut coord_idx: HashMap<u32, (usize, usize)> = HashMap::new();
        for u in g.node_ids() {
            match *g.node(u) {
                Choice::ObjectsPerMapper(k_m) => {
                    mapper_idx.insert(u.0, mappers.len());
                    mappers.push(MapperCtx {
                        k_m,
                        node: u.0,
                        edges: Vec::new(),
                    });
                }
                Choice::ObjectsPerReducer { k_m, k_r } => {
                    pair_idx.insert(u.0, pairs.len());
                    pairs.push(PairCtx {
                        k_m,
                        k_r,
                        node: u.0,
                        e2: EdgeId(0),
                        coords: Vec::new(),
                    });
                }
                Choice::CoordinatorMem { k_m, k_r, mem } => {
                    // Assembly emits a pair's column-4 nodes directly
                    // after its column-3 node, so in id order the owner
                    // is always the most recently seen pair.
                    let pi = pairs.len().checked_sub(1)?;
                    let pair = &mut pairs[pi];
                    if pair.k_m != k_m || pair.k_r != k_r {
                        return None;
                    }
                    coord_idx.insert(u.0, (pi, pair.coords.len()));
                    pair.coords.push(CoordCtx {
                        node: u.0,
                        a_mem: mem,
                        e3: EdgeId(0),
                        finals: Vec::new(),
                    });
                }
                _ => {}
            }
        }

        // One edge walk wires every family to its context. Edge ids are
        // walked in id order, which is assembly order, so `edges` /
        // `finals` lists come out deterministic.
        for eid in g.edge_ids() {
            let (from, to) = g.endpoints(eid);
            match (*g.node(from), *g.node(to)) {
                (Choice::MapperMem(m), Choice::ObjectsPerMapper(_)) => {
                    let ti = *tier_index.get(&m)?;
                    let mi = *mapper_idx.get(&to.0)?;
                    mappers[mi].edges.push((ti, eid));
                }
                (Choice::ObjectsPerMapper(_), Choice::ObjectsPerReducer { .. }) => {
                    let pi = *pair_idx.get(&to.0)?;
                    pairs[pi].e2 = eid;
                }
                (Choice::ObjectsPerReducer { .. }, Choice::CoordinatorMem { .. }) => {
                    let &(pi, ci) = coord_idx.get(&to.0)?;
                    pairs[pi].coords[ci].e3 = eid;
                }
                (Choice::CoordinatorMem { .. }, Choice::ReducerMem(_)) => {
                    let &(pi, ci) = coord_idx.get(&from.0)?;
                    let si = (to.0 - col5_base) as usize;
                    if si >= t {
                        return None;
                    }
                    pairs[pi].coords[ci].finals.push((si, eid));
                }
                _ => {}
            }
        }

        let mapper_of_k_m = mappers.iter().enumerate().map(|(i, m)| (m.k_m, i)).collect();
        Some(RecostPlan {
            col1,
            mappers,
            mapper_of_k_m,
            pairs,
        })
    }

    /// Fast in-place recost for a [`JobDelta::fast_patchable`] delta on
    /// an **unpruned** DAG. On success, returns the dirty-tail mask for
    /// the potentials resume; `None` means a feasibility gate flipped
    /// (the new shape differs) and the caller must rebuild. The DAG is
    /// only written once all gates are verified, so a `None` return
    /// leaves it untouched.
    pub(crate) fn patch(
        &self,
        dag: &mut PlannerDag,
        delta: &JobDelta,
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> Option<Vec<bool>> {
        debug_assert!(delta.fast_patchable());
        let cache = ModelCache::new(job, platform);
        let tiers = &space.memory_tiers_mb;
        let mut dirty = vec![false; dag.graph().node_count()];

        if delta.mapper_coeff {
            // Recompute every mapper phase and verify the feasible set
            // still matches the captured topology (survivors == the
            // feasible set on an unpruned DAG) before writing anything.
            let mut writes: Vec<(EdgeId, EdgeMetrics)> = Vec::new();
            for &k_m in &space.k_m_values {
                let j = job.num_objects().div_ceil(k_m);
                if j.max(2) > platform.max_concurrency as usize {
                    // Concurrency gate is coefficient-independent: the
                    // capture has no node for this k_M either.
                    continue;
                }
                let mut feasible: Vec<(usize, EdgeMetrics)> = Vec::new();
                for (ti, &i_mem) in tiers.iter().enumerate() {
                    let phase = cache.mapper_phase(i_mem, k_m);
                    if phase.duration_s > platform.timeout_s {
                        continue;
                    }
                    let cost = mapper_edge_cost(
                        job,
                        &phase,
                        i_mem,
                        platform,
                        catalog,
                        cache.job_total_mb(),
                    );
                    feasible.push((ti, edge_metrics(phase.duration_s, cost)));
                }
                match self.mapper_of_k_m.get(&k_m) {
                    Some(&mi) => {
                        let ctx = &self.mappers[mi];
                        if feasible.len() != ctx.edges.len()
                            || feasible
                                .iter()
                                .zip(&ctx.edges)
                                .any(|(&(ti_new, _), &(ti_old, _))| ti_new != ti_old)
                        {
                            return None; // timeout gate flipped somewhere
                        }
                        for (&(_, m), &(_, eid)) in feasible.iter().zip(&ctx.edges) {
                            writes.push((eid, m));
                        }
                    }
                    // No node: the old build had no feasible tier. The
                    // new coefficient must agree or the shape changes.
                    None => {
                        if !feasible.is_empty() {
                            return None;
                        }
                    }
                }
            }
            for (eid, m) in writes {
                dag.set_edge(eid, m);
            }
            for &u in &self.col1 {
                dirty[u as usize] = true;
            }
        }

        if delta.prices {
            // Gates are time- and storage-only: no price change can
            // flip one, so this pass always succeeds. Times are kept
            // bit-identical by reusing the stored payloads.
            if !delta.mapper_coeff {
                // Mapper costs depend on the catalog too; times are
                // unchanged (same job model), so phases re-derive
                // bit-identically from the fresh cache.
                for ctx in &self.mappers {
                    for &(ti, eid) in &ctx.edges {
                        let i_mem = tiers[ti];
                        let phase = cache.mapper_phase(i_mem, ctx.k_m);
                        let cost = mapper_edge_cost(
                            job,
                            &phase,
                            i_mem,
                            platform,
                            catalog,
                            cache.job_total_mb(),
                        );
                        dag.set_edge(eid, edge_metrics(phase.duration_s, cost));
                    }
                }
                for &u in &self.col1 {
                    dirty[u as usize] = true;
                }
            }
            for pair in &self.pairs {
                let structure = cache.reduce_structure(pair.k_m, pair.k_r);
                let pending_input_mb = total_input_mb(&structure.steps);
                let last_spawn_s = *structure
                    .per_step_spawn_s
                    .last()
                    .expect("at least one step");
                let e2_time = dag.graph().edge(pair.e2).time_s;
                let e2_cost = orchestration_requests_cost(&structure, platform, catalog);
                dag.set_edge(pair.e2, edge_metrics(e2_time, e2_cost));
                // The coordinator-independent slice of each final
                // edge's cost depends only on the reducer tier, so it
                // is computed once per tier and shared by every
                // coordinator row (a cold build shares it the same
                // way through its column recipes).
                let mut excl_by_tier: Vec<Option<(f64, astra_pricing::Money)>> =
                    vec![None; tiers.len()];
                for coord in &pair.coords {
                    // `t2_s` is the e3 edge's stored time; the model
                    // hasn't moved, so it equals what a cold build
                    // would recompute.
                    let t2_s = dag.graph().edge(coord.e3).time_s;
                    let e3_cost = coordinator_storage_cost(
                        job,
                        &structure,
                        t2_s,
                        platform,
                        catalog,
                        cache.job_total_mb(),
                        pending_input_mb,
                    );
                    dag.set_edge(coord.e3, edge_metrics(t2_s, e3_cost));
                    dirty[pair.node as usize] = true;
                    for &(si, eid) in &coord.finals {
                        let (wait_before_last, cost_excl) = match excl_by_tier[si] {
                            Some(v) => v,
                            None => {
                                let s_mem = tiers[si];
                                let times =
                                    cache.reduce_tier_times(pair.k_m, pair.k_r, s_mem);
                                let wait: f64 = times.per_step_max_s
                                    [..times.per_step_max_s.len() - 1]
                                    .iter()
                                    .sum();
                                let cost = reduce_edge_cost(
                                    job,
                                    &structure,
                                    &times,
                                    s_mem,
                                    tiers[0],
                                    0.0,
                                    platform,
                                    catalog,
                                    cache.job_total_mb(),
                                );
                                excl_by_tier[si] = Some((wait, cost));
                                (wait, cost)
                            }
                        };
                        let coord_billed_s = t2_s + wait_before_last + last_spawn_s;
                        let coord_cost =
                            runtime_cost(coord_billed_s, coord.a_mem, &catalog.lambda);
                        let time_s = dag.graph().edge(eid).time_s;
                        dag.set_edge(eid, edge_metrics(time_s, cost_excl + coord_cost));
                    }
                    dirty[coord.node as usize] = true;
                }
            }
            // Dirty tails per family: col1 nodes (mapper edges, marked
            // above), col2 nodes (`e2`), col3 nodes (`e3`), col4 nodes
            // (final edges).
            for ctx in &self.mappers {
                dirty[ctx.node as usize] = true;
            }
        }

        dag.refresh_soa_metrics_on(&dirty);
        Some(dirty)
    }
}

fn edge_metrics(time_s: f64, cost: astra_pricing::Money) -> EdgeMetrics {
    let nanos = cost.nanos();
    debug_assert!(nanos >= 0 && nanos <= i64::MAX as i128, "cost out of range");
    EdgeMetrics {
        time_s,
        cost_nanos: nanos as i64,
    }
}
