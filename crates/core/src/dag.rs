//! The Fig. 5 planner DAG.
//!
//! Six node columns between a source and a sink:
//!
//! ```text
//! S -> mapper mem (x_i) -> k_M (n_j) -> (k_M,k_R) -> (k_M,k_R,coord mem) -> reducer mem (z_s) -> D
//! ```
//!
//! The paper draws column 3 as "number of objects per reducer" and
//! column 4 as "coordinator memory", but the edge weights it assigns to
//! the later edge sets depend on *earlier* columns' choices (e.g. the
//! reducing-phase compute time needs `j` and `k_R` as well as `z_s`). To
//! make every edge weight well-defined from its endpoints alone — the
//! property shortest-path optimality needs — columns 3 and 4 are
//! state-expanded: a column-3 node is a `(k_M, k_R)` pair and a column-4
//! node additionally carries the coordinator tier. Column 2 stays `k_M`
//! (not `j`): distinct `k_M` with equal `j` differ in skew, so `k_M` is
//! the real decision variable.
//!
//! Every edge carries **both** metrics (time and cost), assigned so that
//! each term of Eq. 16 and Eq. 20 lands on exactly one edge:
//!
//! | Edge set | time | cost |
//! |---|---|---|
//! | `x_i -> k_M` | `T1` (Eq. 4) | `U1 + V1 + W1` |
//! | `k_M -> (k_M,k_R)` | 0 | `U2 + UP + I2 + I3` |
//! | `(k_M,k_R) -> +coord` | `T2 = c2 + P·l/B(a)` (Eq. 6) | `V2` |
//! | `+coord -> z_s` | reduce phase `T_P(s)` (Eq. 9) | `VP + WP + W2-runtime` |
//!
//! Summing either metric over a path reproduces the analytical model for
//! that configuration exactly (integration tests assert this), so an
//! unconstrained shortest path is the true model optimum and a constrained
//! shortest path solves the paper's Eq. 16–19 / Eq. 20–22.
//!
//! Edges whose configuration violates platform constraints (Eq. 18
//! concurrency/storage caps, per-function timeout) are simply not added.

use std::collections::HashMap;

use astra_graph::{DiGraph, EdgeId, NodeId};
use astra_model::cost::{
    coordinator_storage_cost, mapper_edge_cost, orchestration_requests_cost, reduce_edge_cost,
    runtime_cost,
};
use astra_model::perf::{
    coordinator_compute_secs, coordinator_state_put_secs, mapper_phase, reduce_structure,
    reduce_tier_times,
};
use astra_model::schedule::total_input_mb;
use astra_model::{JobConfig, JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};

use crate::space::ConfigSpace;

/// What a DAG node decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Flow source (`S̄`).
    Source,
    /// Column 1: mapper memory tier.
    MapperMem(u32),
    /// Column 2: objects per mapper (`k_M`).
    ObjectsPerMapper(usize),
    /// Column 3: objects per reducer, in the context of a `k_M`.
    ObjectsPerReducer {
        /// The column-2 choice this node extends.
        k_m: usize,
        /// Objects per reducer (`k_R`).
        k_r: usize,
    },
    /// Column 4: coordinator memory tier, in the context of `(k_M, k_R)`.
    CoordinatorMem {
        /// The column-2 choice.
        k_m: usize,
        /// The column-3 choice.
        k_r: usize,
        /// Coordinator memory (MB).
        mem: u32,
    },
    /// Column 5: reducer memory tier.
    ReducerMem(u32),
    /// Flow destination (`D̄`).
    Sink,
}

/// Both path metrics of one edge. Cost is stored as `i64` nano-dollars to
/// keep the edge arena compact (a whole job bill fits with 9 decimal
/// digits of headroom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeMetrics {
    /// Completion-time contribution in seconds.
    pub time_s: f64,
    /// Cost contribution in nano-dollars.
    pub cost_nanos: i64,
}

impl EdgeMetrics {
    /// Cost as [`Money`].
    pub fn cost(&self) -> Money {
        Money::from_nanos(self.cost_nanos as i128)
    }
}

fn metrics(time_s: f64, cost: Money) -> EdgeMetrics {
    let nanos = cost.nanos();
    debug_assert!(nanos >= 0 && nanos <= i64::MAX as i128, "cost out of range");
    EdgeMetrics {
        time_s,
        cost_nanos: nanos as i64,
    }
}

/// The built planner DAG for one job.
pub struct PlannerDag {
    graph: DiGraph<Choice, EdgeMetrics>,
    source: NodeId,
    sink: NodeId,
}

impl PlannerDag {
    /// Construct the DAG for `job` over `space`, pricing with `catalog`.
    pub fn build(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> PlannerDag {
        job.profile.validate();
        let n = job.num_objects();
        let tiers = &space.memory_tiers_mb;
        let mut g: DiGraph<Choice, EdgeMetrics> = DiGraph::new();
        let source = g.add_node(Choice::Source);
        let sink = g.add_node(Choice::Sink);

        // Column 1 (mapper memory) and column 5 (reducer memory) are
        // shared across all partitioning choices.
        let col1: Vec<NodeId> = tiers
            .iter()
            .map(|&m| {
                let id = g.add_node(Choice::MapperMem(m));
                g.add_edge(source, id, metrics(0.0, Money::ZERO));
                id
            })
            .collect();
        let col5: Vec<NodeId> = tiers
            .iter()
            .map(|&m| {
                let id = g.add_node(Choice::ReducerMem(m));
                g.add_edge(id, sink, metrics(0.0, Money::ZERO));
                id
            })
            .collect();

        // Coordinator planning compute depends only on its tier.
        let coord_compute: Vec<f64> = tiers
            .iter()
            .map(|&a| coordinator_compute_secs(job.shuffle_mb(), platform, &job.profile, a))
            .collect();

        let mut col2: HashMap<usize, NodeId> = HashMap::new();
        for &k_m in &space.k_m_values {
            let j = n.div_ceil(k_m);
            if j.max(2) > platform.max_concurrency as usize {
                continue; // Eq. 18: j <= R
            }

            let mut k_m_node: Option<NodeId> = None;
            for (ti, &i_mem) in tiers.iter().enumerate() {
                // Computed exactly as the analytical model does, so that a
                // path's metrics match `astra_model::evaluate` bit for bit.
                let phase = mapper_phase(job, platform, i_mem, k_m);
                if phase.duration_s > platform.timeout_s {
                    continue; // this tier is too slow for this k_M
                }
                let cost = mapper_edge_cost(job, &phase, i_mem, platform, catalog);
                let node = *k_m_node
                    .get_or_insert_with(|| g.add_node(Choice::ObjectsPerMapper(k_m)));
                g.add_edge(col1[ti], node, metrics(phase.duration_s, cost));
            }
            if let Some(node) = k_m_node {
                col2.insert(k_m, node);
            }
        }

        // Columns 3 and 4 plus the heavy final edge set.
        for (&k_m, &k_m_node) in &col2 {
            let j = n.div_ceil(k_m);
            let outputs = mapper_outputs(job, k_m);
            for k_r in space.k_r_candidates(j) {
                let structure = reduce_structure(&outputs, k_r, &job.profile, platform);
                // Eq. 18 storage cap: D + S(state) + Q <= O.
                let state_mb = job.profile.state_object_mb * structure.num_steps() as f64;
                if job.total_mb() + state_mb + total_input_mb(&structure.steps)
                    > platform.max_storage_mb
                {
                    continue;
                }
                // Concurrency: widest reduce step + the waiting coordinator.
                let widest = structure
                    .steps
                    .iter()
                    .map(|s| s.reducers())
                    .max()
                    .unwrap_or(0);
                if widest + 1 > platform.max_concurrency as usize {
                    continue;
                }

                let col3_node = g.add_node(Choice::ObjectsPerReducer { k_m, k_r });
                let e2_cost = orchestration_requests_cost(&structure, platform, catalog);
                g.add_edge(k_m_node, col3_node, metrics(0.0, e2_cost));

                // Per reducer tier: full reducer lifetimes, phase span,
                // reducer bills — all independent of the coordinator tier.
                struct PerTier {
                    phase_s: f64,
                    wait_before_last_s: f64,
                    edge_cost_excl_coord: Money,
                    feasible: bool,
                }
                let per_tier: Vec<PerTier> = tiers
                    .iter()
                    .map(|&s_mem| {
                        let times =
                            reduce_tier_times(&structure, platform, &job.profile, s_mem);
                        let feasible = times
                            .per_reducer_s
                            .iter()
                            .flatten()
                            .all(|&t| t <= platform.timeout_s);
                        let wait_before_last: f64 = times.per_step_max_s
                            [..times.per_step_max_s.len() - 1]
                            .iter()
                            .sum();
                        // reduce_edge_cost with a zero-duration coordinator
                        // gives the coordinator-independent part.
                        let cost_excl = reduce_edge_cost(
                            job,
                            &structure,
                            &times,
                            s_mem,
                            tiers[0],
                            0.0,
                            platform,
                            catalog,
                        );
                        PerTier {
                            phase_s: times.duration_s(),
                            wait_before_last_s: wait_before_last,
                            edge_cost_excl_coord: cost_excl,
                            feasible,
                        }
                    })
                    .collect();

                for (ai, &a_mem) in tiers.iter().enumerate() {
                    let state_put_s = coordinator_state_put_secs(
                        structure.num_steps(),
                        platform,
                        &job.profile,
                        a_mem,
                    );
                    let t2_s = coord_compute[ai] + state_put_s;
                    let col4_node = g.add_node(Choice::CoordinatorMem {
                        k_m,
                        k_r,
                        mem: a_mem,
                    });
                    let e3_cost = coordinator_storage_cost(job, &structure, t2_s, platform, catalog);
                    g.add_edge(col3_node, col4_node, metrics(t2_s, e3_cost));

                    let last_spawn_s = *structure
                        .per_step_spawn_s
                        .last()
                        .expect("at least one step");
                    for (si, tier) in per_tier.iter().enumerate() {
                        if !tier.feasible {
                            continue;
                        }
                        // The coordinator waits through the first P-1
                        // steps and pays the final step's launch latency
                        // before exiting (PerfBreakdown::coordinator_billed_s).
                        let coord_billed_s = t2_s + tier.wait_before_last_s + last_spawn_s;
                        if coord_billed_s > platform.timeout_s {
                            continue;
                        }
                        let coord_cost =
                            runtime_cost(coord_billed_s, a_mem, &catalog.lambda);
                        let e4_cost = tier.edge_cost_excl_coord + coord_cost;
                        g.add_edge(
                            col4_node,
                            col5[si],
                            metrics(tier.phase_s, e4_cost),
                        );
                    }
                }
            }
        }

        PlannerDag {
            graph: g,
            source,
            sink,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<Choice, EdgeMetrics> {
        &self.graph
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Recover the configuration a source→sink path encodes.
    ///
    /// Panics if the path does not visit one node of every column (which
    /// cannot happen for paths produced by the solvers on a built DAG).
    pub fn config_for_path(&self, edges: &[EdgeId]) -> JobConfig {
        let mut mapper_mem = None;
        let mut coord = None;
        let mut reducer_mem = None;
        let mut k_m = None;
        let mut k_r = None;
        for &e in edges {
            let (_, to) = self.graph.endpoints(e);
            match *self.graph.node(to) {
                Choice::MapperMem(m) => mapper_mem = Some(m),
                Choice::ObjectsPerMapper(k) => k_m = Some(k),
                Choice::ObjectsPerReducer { k_r: k, .. } => k_r = Some(k),
                Choice::CoordinatorMem { mem, .. } => coord = Some(mem),
                Choice::ReducerMem(m) => reducer_mem = Some(m),
                Choice::Source | Choice::Sink => {}
            }
        }
        JobConfig {
            mapper_mem_mb: mapper_mem.expect("path misses mapper memory"),
            coordinator_mem_mb: coord.expect("path misses coordinator memory"),
            reducer_mem_mb: reducer_mem.expect("path misses reducer memory"),
            objects_per_mapper: k_m.expect("path misses k_M"),
            objects_per_reducer: k_r.expect("path misses k_R"),
        }
    }

    /// Total time metric along a path.
    pub fn path_time_s(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.graph.edge(e).time_s).sum()
    }

    /// Total cost metric along a path.
    pub fn path_cost(&self, edges: &[EdgeId]) -> Money {
        Money::from_nanos(
            edges
                .iter()
                .map(|&e| self.graph.edge(e).cost_nanos as i128)
                .sum(),
        )
    }
}

/// Per-mapper input sizes for `k_M` (consecutive greedy assignment).
fn mapper_inputs(job: &JobSpec, k_m: usize) -> Vec<f64> {
    astra_model::distribute::distribute_sizes(&job.object_sizes_mb, k_m)
        .into_iter()
        .map(|objs| objs.iter().sum())
        .collect()
}

/// Mapper output sizes for `k_M`.
fn mapper_outputs(job: &JobSpec, k_m: usize) -> Vec<f64> {
    mapper_inputs(job, k_m)
        .into_iter()
        .map(|d| d * job.profile.shuffle_ratio)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_graph::dijkstra::shortest_path_all;
    use astra_model::{evaluate, WorkloadProfile};

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test())
    }

    fn build(n: usize, tiers: &[u32]) -> (JobSpec, Platform, PriceCatalog, PlannerDag) {
        let j = job(n);
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, tiers);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        (j, platform, catalog, dag)
    }

    #[test]
    fn dag_is_acyclic_and_connected() {
        let (_, _, _, dag) = build(6, &[128, 1024]);
        assert!(dag.graph().is_dag());
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s);
        assert!(p.is_some());
    }

    #[test]
    fn every_path_metric_matches_model_exactly() {
        // The load-bearing property: path sums == model evaluation —
        // checked on both the idealised platform and the full AWS one
        // (cold-start-free model, but spawn overheads, efficiency curve
        // and bandwidth scaling all active).
        for platform in [
            Platform::paper_literal(10.0),
            Platform::aws_lambda(),
            Platform::aws_lambda().with_elasticache(),
        ] {
            let j = job(6);
            let catalog = PriceCatalog::aws_2020();
            let space = ConfigSpace::with_tiers(&j, &platform, &[128, 512, 3008]);
            let dag = PlannerDag::build(&j, &platform, &catalog, &space);
            // Probe several paths by minimizing different mixes.
            for lambda in [0.0, 0.3, 0.7, 1.0] {
                let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| {
                    lambda * m.time_s + (1.0 - lambda) * (m.cost_nanos as f64) * 1e-6
                })
                .unwrap();
                let config = dag.config_for_path(&p.edges);
                let ev = evaluate(&j, &platform, &config, &catalog).unwrap();
                let dt = (dag.path_time_s(&p.edges) - ev.jct_s()).abs();
                assert!(dt < 1e-9, "time mismatch {dt} for {config:?}");
                assert_eq!(
                    dag.path_cost(&p.edges),
                    ev.total_cost(),
                    "cost mismatch for {config:?}"
                );
            }
        }
    }

    #[test]
    fn unconstrained_shortest_time_path_beats_every_config() {
        let (j, platform, catalog, dag) = build(5, &[128, 1024]);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s).unwrap();
        let best_time = dag.path_time_s(&p.edges);
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        for config in space.iter_configs(&j) {
            if let Ok(ev) = evaluate(&j, &platform, &config, &catalog) {
                assert!(
                    best_time <= ev.jct_s() + 1e-9,
                    "config {config:?} is faster: {} < {best_time}",
                    ev.jct_s()
                );
            }
        }
    }

    #[test]
    fn unconstrained_cheapest_path_beats_every_config() {
        let (j, platform, catalog, dag) = build(5, &[128, 1024]);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| {
            m.cost_nanos as f64
        })
        .unwrap();
        let best = dag.path_cost(&p.edges);
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        for config in space.iter_configs(&j) {
            if let Ok(ev) = evaluate(&j, &platform, &config, &catalog) {
                assert!(best <= ev.total_cost(), "config {config:?} is cheaper");
            }
        }
    }

    #[test]
    fn timeout_prunes_slow_tiers() {
        let j = job(2);
        let mut platform = Platform::paper_literal(10.0);
        // 1 mapper x 2 MB at 1 s/MB on 128 MB: ~2.4 s. Timeout below that
        // kills the 128 MB edges but keeps 1024 MB ones.
        platform.timeout_s = 1.0;
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s).unwrap();
        let config = dag.config_for_path(&p.edges);
        assert_eq!(config.mapper_mem_mb, 1024);
    }

    #[test]
    fn concurrency_cap_prunes_wide_fanouts() {
        let j = job(10);
        let mut platform = Platform::paper_literal(10.0);
        platform.max_concurrency = 4;
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace {
            memory_tiers_mb: vec![128],
            k_m_values: (1..=10).collect(),
            k_r_values: (2..=10).collect(),
        };
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        // k_M = 1 and 2 (j = 10, 5) must be absent.
        for id in dag.graph().node_ids() {
            if let Choice::ObjectsPerMapper(k_m) = dag.graph().node(id) {
                assert!(*k_m >= 3, "k_M={k_m} should have been pruned");
            }
        }
    }

    #[test]
    fn infeasible_platform_yields_no_path() {
        let j = job(4);
        let mut platform = Platform::paper_literal(10.0);
        platform.timeout_s = 0.001; // nothing fits
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128]);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s);
        assert!(p.is_none());
    }
}
