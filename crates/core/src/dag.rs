//! The Fig. 5 planner DAG.
//!
//! Six node columns between a source and a sink:
//!
//! ```text
//! S -> mapper mem (x_i) -> k_M (n_j) -> (k_M,k_R) -> (k_M,k_R,coord mem) -> reducer mem (z_s) -> D
//! ```
//!
//! The paper draws column 3 as "number of objects per reducer" and
//! column 4 as "coordinator memory", but the edge weights it assigns to
//! the later edge sets depend on *earlier* columns' choices (e.g. the
//! reducing-phase compute time needs `j` and `k_R` as well as `z_s`). To
//! make every edge weight well-defined from its endpoints alone — the
//! property shortest-path optimality needs — columns 3 and 4 are
//! state-expanded: a column-3 node is a `(k_M, k_R)` pair and a column-4
//! node additionally carries the coordinator tier. Column 2 stays `k_M`
//! (not `j`): distinct `k_M` with equal `j` differ in skew, so `k_M` is
//! the real decision variable.
//!
//! Every edge carries **both** metrics (time and cost), assigned so that
//! each term of Eq. 16 and Eq. 20 lands on exactly one edge:
//!
//! | Edge set | time | cost |
//! |---|---|---|
//! | `x_i -> k_M` | `T1` (Eq. 4) | `U1 + V1 + W1` |
//! | `k_M -> (k_M,k_R)` | 0 | `U2 + UP + I2 + I3` |
//! | `(k_M,k_R) -> +coord` | `T2 = c2 + P·l/B(a)` (Eq. 6) | `V2` |
//! | `+coord -> z_s` | reduce phase `T_P(s)` (Eq. 9) | `VP + WP + W2-runtime` |
//!
//! Summing either metric over a path reproduces the analytical model for
//! that configuration exactly (integration tests assert this), so an
//! unconstrained shortest path is the true model optimum and a constrained
//! shortest path solves the paper's Eq. 16–19 / Eq. 20–22.
//!
//! Edges whose configuration violates platform constraints (Eq. 18
//! concurrency/storage caps, per-function timeout) are simply not added.
//!
//! ## Dominance pruning
//!
//! By default ([`PruneConfig::on`]) construction drops tier candidates
//! whose (time, cost) edge bundles are Pareto-dominated in *every*
//! context they appear in:
//!
//! * **mapper tiers** per `k_M` — the source edge is (0, 0) and the
//!   continuation after the `k_M` node is tier-independent, so if tier
//!   `b`'s mapper edge is `<=` tier `a`'s on both metrics (one strict),
//!   every path through `a` is beaten (or exactly matched earlier in
//!   tie-break order) by the same path through `b`;
//! * **coordinator tiers** per `(k_M, k_R)` — a path through coordinator
//!   `a` and reducer tier `s` adds time `t2(a) + phase(s)` and cost
//!   `e3(a) + e4(s, a)`; `phase(s)` cancels when comparing coordinators,
//!   so dominance is `t2` on time and the combined `e3 + e4` per reducer
//!   continuation on cost (with coverage: the dominator must offer every
//!   continuation the dominated tier offers);
//! * **reducer tiers** per `(k_M, k_R, coordinator)` — the final column
//!   edge to the sink is (0, 0), so the final-edge bundle alone decides.
//!
//! Dominance is exact (`<=` with at least one strict `<`, integer nanos
//! for cost); exact ties are always kept. A dominated candidate cannot
//! lie on a *strictly* optimal constrained path for any bound, and for
//! tied paths the label-setting solver already settles the dominator
//! first and kills the dominated arrival via its `<=` frontier check —
//! so pruned and unpruned DAGs return identical optima (equivalence
//! tests assert config-level identity against the unpruned exhaustive
//! solver). [`PlannerDag::prune_stats`] reports how much was removed.
//!
//! ## Parallel construction
//!
//! Building columns 2–4 dominates planning time: it evaluates the
//! analytical model once per `(k_M, tier)` for the mapper edges and once
//! per `(k_M, k_R, tier)` for the reduce edges. [`PlannerDag::build`]
//! evaluates those edge metrics in parallel (rayon) as side-effect-free
//! *recipes*, then assembles the graph serially from the collected
//! recipes in a fixed order — `k_M` in `space.k_m_values` order, `k_R`
//! in candidate order, tiers in `space.memory_tiers_mb` order — so node
//! and edge IDs are identical for every thread count and identical to
//! [`PlannerDag::build_serial`], which runs the same recipe functions on
//! one thread (equivalence tests assert graph-level bit-identity).

use std::collections::HashMap;

use astra_graph::csp::EdgeExpand;
use astra_graph::{DiGraph, EdgeId, NodeId};
use astra_model::cost::{
    coordinator_storage_cost, mapper_edge_cost, orchestration_requests_cost, reduce_edge_cost,
    runtime_cost,
};
use astra_model::perf::{coordinator_compute_secs, coordinator_state_put_secs};
use astra_model::schedule::total_input_mb;
use astra_model::{JobConfig, JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};
use rayon::prelude::*;

use crate::cache::ModelCache;
use crate::space::ConfigSpace;

/// What a DAG node decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Flow source (`S̄`).
    Source,
    /// Column 1: mapper memory tier.
    MapperMem(u32),
    /// Column 2: objects per mapper (`k_M`).
    ObjectsPerMapper(usize),
    /// Column 3: objects per reducer, in the context of a `k_M`.
    ObjectsPerReducer {
        /// The column-2 choice this node extends.
        k_m: usize,
        /// Objects per reducer (`k_R`).
        k_r: usize,
    },
    /// Column 4: coordinator memory tier, in the context of `(k_M, k_R)`.
    CoordinatorMem {
        /// The column-2 choice.
        k_m: usize,
        /// The column-3 choice.
        k_r: usize,
        /// Coordinator memory (MB).
        mem: u32,
    },
    /// Column 5: reducer memory tier.
    ReducerMem(u32),
    /// Flow destination (`D̄`).
    Sink,
}

/// Both path metrics of one edge. Cost is stored as `i64` nano-dollars to
/// keep the edge arena compact (a whole job bill fits with 9 decimal
/// digits of headroom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeMetrics {
    /// Completion-time contribution in seconds.
    pub time_s: f64,
    /// Cost contribution in nano-dollars.
    pub cost_nanos: i64,
}

impl EdgeMetrics {
    /// Cost as [`Money`].
    pub fn cost(&self) -> Money {
        Money::from_nanos(self.cost_nanos as i128)
    }
}

fn metrics(time_s: f64, cost: Money) -> EdgeMetrics {
    let nanos = cost.nanos();
    debug_assert!(nanos >= 0 && nanos <= i64::MAX as i128, "cost out of range");
    EdgeMetrics {
        time_s,
        cost_nanos: nanos as i64,
    }
}

/// Controls exactness-preserving Pareto dominance pruning of tier
/// columns during DAG construction (see the module-level "Dominance
/// pruning" section). Defaults to enabled; [`PruneConfig::off`] is the
/// opt-out used by equivalence tests, benches and `--no-prune` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneConfig {
    /// Drop tier candidates whose (time, cost) bundle is Pareto-dominated
    /// in every context they appear in. Dominance is *exact* (`<=` on
    /// both metrics with at least one strict `<`): an exactly-tied
    /// candidate is never dropped, so solver tie-breaking is untouched
    /// and pruned/unpruned DAGs yield identical constrained optima.
    pub pareto_tiers: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig { pareto_tiers: true }
    }
}

impl PruneConfig {
    /// Pruning enabled (the default).
    pub fn on() -> Self {
        PruneConfig::default()
    }

    /// Pruning disabled: build the full Fig. 5 DAG.
    pub fn off() -> Self {
        PruneConfig {
            pareto_tiers: false,
        }
    }
}

/// How much dominance pruning removed while building a DAG (all zero
/// when built with [`PruneConfig::off`]). Reported through the
/// `planner.dag.pruned_*` telemetry gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// `x_i -> k_M` edges dropped (mapper tier dominated for that `k_M`).
    pub mapper_edges: usize,
    /// Column-4 coordinator nodes dropped (tier dominated for that
    /// `(k_M, k_R)` across every reducer continuation, or a dead end
    /// with no feasible reducer tier). Each takes its `e3` edge and its
    /// final edges with it.
    pub coordinator_nodes: usize,
    /// `+coord -> z_s` final edges dropped (reducer tier dominated for
    /// that `(k_M, k_R, coordinator)` context).
    pub reducer_edges: usize,
}

impl PruneStats {
    /// Total pruned items (edges + nodes) — a quick "did pruning fire"
    /// signal for tests and gauges.
    pub fn total(&self) -> usize {
        self.mapper_edges + self.coordinator_nodes + self.reducer_edges
    }
}

/// The built planner DAG for one job.
#[derive(Clone)]
pub struct PlannerDag {
    graph: DiGraph<Choice, EdgeMetrics>,
    source: NodeId,
    sink: NodeId,
    prune_stats: PruneStats,
    soa: SoaEdges,
}

/// Flat struct-of-arrays mirror of the planner graph's edges in CSR
/// form: per-node slot ranges (`offsets`), and parallel `heads`,
/// `edge_ids`, `times`, `costs` and `multiplicity` arrays the solvers
/// iterate linearly instead of chasing the arena's intrusive lists.
///
/// Slot order within a node is **exactly** `DiGraph::out_edges` order
/// (most-recently-added first), and the stored topological order is the
/// graph's own, so the potentials DP and the CSP label search perform
/// the identical floating-point operations in the identical order as
/// the closure-over-`DiGraph` path — answers are bit-identical
/// (`tests/prune_equivalence.rs` gates this).
///
/// `multiplicity[i]` records how many raw configuration-space candidates
/// edge `i` represents when the space was built by
/// [`ConfigSpace::bundled`] (1 everywhere otherwise); the
/// `planner.dag.bundles_collapsed` gauge totals the candidates folded
/// away.
#[derive(Clone)]
pub struct SoaEdges {
    offsets: Vec<u32>,
    heads: Vec<u32>,
    edge_ids: Vec<u32>,
    times: Vec<f64>,
    costs: Vec<i64>,
    multiplicity: Vec<u32>,
    topo: Vec<u32>,
}

impl SoaEdges {
    fn build(
        g: &DiGraph<Choice, EdgeMetrics>,
        space: &ConfigSpace,
        j_of_k_m: &HashMap<usize, usize>,
    ) -> SoaEdges {
        let (n, e) = (g.node_count(), g.edge_count());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut heads = Vec::with_capacity(e);
        let mut edge_ids = Vec::with_capacity(e);
        let mut times = Vec::with_capacity(e);
        let mut costs = Vec::with_capacity(e);
        let mut multiplicity = Vec::with_capacity(e);
        offsets.push(0);
        for u in g.node_ids() {
            for (eid, m) in g.out_edges(u) {
                let head = g.endpoints(eid).1;
                heads.push(head.0);
                edge_ids.push(eid.0);
                times.push(m.time_s);
                costs.push(m.cost_nanos);
                multiplicity.push(match *g.node(head) {
                    Choice::ObjectsPerMapper(k_m) => space.k_m_weight(k_m) as u32,
                    Choice::ObjectsPerReducer { k_m, k_r } => j_of_k_m
                        .get(&k_m)
                        .map_or(1, |&j| space.k_r_weight(j, k_r) as u32),
                    _ => 1,
                });
            }
            offsets.push(heads.len() as u32);
        }
        let topo = g
            .topological_order()
            .expect("planner graph is acyclic by construction")
            .into_iter()
            .map(|id| id.0)
            .collect();
        SoaEdges {
            offsets,
            heads,
            edge_ids,
            times,
            costs,
            multiplicity,
            topo,
        }
    }

    /// Re-copy `times`/`costs` from the graph's edge payloads after an
    /// in-place recost. Topology (`offsets`/`heads`/`edge_ids`/
    /// `multiplicity`/`topo`) is untouched — callers guarantee the
    /// graph's shape did not change.
    fn refresh_metrics(&mut self, g: &DiGraph<Choice, EdgeMetrics>) {
        for i in 0..self.edge_ids.len() {
            let m = g.edge(EdgeId(self.edge_ids[i]));
            self.times[i] = m.time_s;
            self.costs[i] = m.cost_nanos;
        }
    }

    /// Like [`SoaEdges::refresh_metrics`], but re-copies only the
    /// out-edges of the marked tail nodes — the store is grouped by
    /// tail, so a recost that tracked its dirty tails pays for the
    /// affected slices instead of the whole edge array.
    fn refresh_metrics_on(&mut self, g: &DiGraph<Choice, EdgeMetrics>, tails: &[bool]) {
        debug_assert_eq!(tails.len() + 1, self.offsets.len());
        for u in tails.iter().enumerate().filter(|&(_, &d)| d).map(|(u, _)| u) {
            for i in self.offsets[u] as usize..self.offsets[u + 1] as usize {
                let m = g.edge(EdgeId(self.edge_ids[i]));
                self.times[i] = m.time_s;
                self.costs[i] = m.cost_nanos;
            }
        }
    }

    /// Number of edges in the flat store.
    pub fn edges_stored(&self) -> usize {
        self.times.len()
    }

    /// Raw configuration candidates folded into representative edges
    /// (0 for unbundled spaces): `sum(multiplicity - 1)`.
    pub fn bundles_collapsed(&self) -> u64 {
        self.multiplicity.iter().map(|&m| (m - 1) as u64).sum()
    }

    /// A time-primary [`EdgeExpand`] view (weight = seconds, resource =
    /// micro-dollars) for `MinimizeTime` queries.
    pub fn time_view(&self) -> SoaView<'_, false> {
        SoaView { soa: self }
    }

    /// A cost-primary [`EdgeExpand`] view (weight = micro-dollars,
    /// resource = seconds) for `MinimizeCost` queries.
    pub fn cost_view(&self) -> SoaView<'_, true> {
        SoaView { soa: self }
    }
}

/// Linear-scan [`EdgeExpand`] adapter over [`SoaEdges`]. The const
/// parameter selects the weight/resource orientation; cost is converted
/// to micro-dollars by the same `cost_nanos as f64 * 1e-3` expression
/// the closure-based solver path uses, so both paths feed the CSP core
/// bit-identical operands.
pub struct SoaView<'a, const COST_PRIMARY: bool> {
    soa: &'a SoaEdges,
}

impl<const COST_PRIMARY: bool> EdgeExpand for SoaView<'_, COST_PRIMARY> {
    fn node_count(&self) -> usize {
        self.soa.offsets.len() - 1
    }

    fn for_each_out(&mut self, v: u32, mut f: impl FnMut(EdgeId, u32, f64, f64)) {
        let lo = self.soa.offsets[v as usize] as usize;
        let hi = self.soa.offsets[v as usize + 1] as usize;
        for i in lo..hi {
            let t = self.soa.times[i];
            let c = self.soa.costs[i] as f64 * 1e-3;
            let (w, r) = if COST_PRIMARY { (c, t) } else { (t, c) };
            f(EdgeId(self.soa.edge_ids[i]), self.soa.heads[i], w, r);
        }
    }

    fn topo_order(&self) -> Option<Vec<u32>> {
        Some(self.soa.topo.clone())
    }
}

/// Column-2 recipe: the mapper edges one `k_M` contributes, as
/// `(mapper-tier index, metrics)` in tier order. Absent `k_M`s (too wide
/// for the concurrency cap, or too slow at every tier) produce no recipe.
struct Col2Recipe {
    k_m: usize,
    j: usize,
    mapper_edges: Vec<(usize, EdgeMetrics)>,
    pruned_edges: usize,
}

/// Column-4 recipe for one coordinator tier within a `(k_M, k_R)`: the
/// `(k_M,k_R) -> +coord` edge plus the final edges to each feasible
/// reducer tier, as `(reducer-tier index, metrics)` in tier order.
struct Col4Recipe {
    e3: EdgeMetrics,
    final_edges: Vec<(usize, EdgeMetrics)>,
}

/// Column-3 recipe: everything one `(k_M, k_R)` pair contributes below
/// column 2. `per_coord` holds `(coordinator tier index, recipe)` pairs
/// in `space.memory_tiers_mb` order (gaps where pruning removed a tier).
struct Col3Recipe {
    k_r: usize,
    e2: EdgeMetrics,
    per_coord: Vec<(usize, Col4Recipe)>,
    pruned_coords: usize,
    pruned_final_edges: usize,
}

/// Drop entries whose metric bundle is Pareto-dominated by another entry
/// in the same context: dominator `<=` on both metrics with at least one
/// strict `<`. Comparisons are exact (no epsilon), and exact ties are
/// kept, so the surviving set supports the same constrained optima with
/// the same solver tie-breaks as the full set. Returns how many were
/// dropped.
fn pareto_filter(edges: &mut Vec<(usize, EdgeMetrics)>) -> usize {
    let before = edges.len();
    if before > 128 {
        // Snapshot fallback for absurdly long tier lists (real platforms
        // have <= 46 tiers, so this path never runs in production).
        let snapshot = edges.clone();
        edges.retain(|&(_, m)| {
            !snapshot.iter().any(|&(_, o)| {
                o.time_s <= m.time_s
                    && o.cost_nanos <= m.cost_nanos
                    && (o.time_s < m.time_s || o.cost_nanos < m.cost_nanos)
            })
        });
        return before - edges.len();
    }
    // Allocation-free: mark survivors against the full original set in a
    // bitmask, then compact in place. Semantics identical to the
    // snapshot version — every entry is compared against the whole
    // pre-filter set.
    let mut keep: u128 = 0;
    for i in 0..before {
        let (_, m) = edges[i];
        let dominated = edges.iter().any(|&(_, o)| {
            o.time_s <= m.time_s
                && o.cost_nanos <= m.cost_nanos
                && (o.time_s < m.time_s || o.cost_nanos < m.cost_nanos)
        });
        if !dominated {
            keep |= 1 << i;
        }
    }
    let mut slot = 0;
    edges.retain(|_| {
        let kept = keep >> slot & 1 == 1;
        slot += 1;
        kept
    });
    before - edges.len()
}

/// Compute the column-2 recipe for one `k_M` (pure; safe to run on any
/// thread).
fn col2_recipe(
    platform: &Platform,
    catalog: &PriceCatalog,
    space: &ConfigSpace,
    cache: &ModelCache<'_>,
    prune: PruneConfig,
    k_m: usize,
) -> Option<Col2Recipe> {
    let job = cache.job();
    let j = job.num_objects().div_ceil(k_m);
    if j.max(2) > platform.max_concurrency as usize {
        return None; // Eq. 18: j <= R
    }
    let mut mapper_edges = Vec::new();
    for (ti, &i_mem) in space.memory_tiers_mb.iter().enumerate() {
        // Computed exactly as the analytical model does, so that a
        // path's metrics match `astra_model::evaluate` bit for bit.
        let phase = cache.mapper_phase(i_mem, k_m);
        if phase.duration_s > platform.timeout_s {
            continue; // this tier is too slow for this k_M
        }
        let cost = mapper_edge_cost(job, &phase, i_mem, platform, catalog, cache.job_total_mb());
        mapper_edges.push((ti, metrics(phase.duration_s, cost)));
    }
    if mapper_edges.is_empty() {
        return None;
    }
    // Mapper-tier dominance for this k_M: the source edge into every
    // tier is (0, 0) and the continuation from the k_M node is tier-
    // independent, so the edge bundle alone decides Pareto dominance.
    let pruned_edges = if prune.pareto_tiers {
        pareto_filter(&mut mapper_edges)
    } else {
        0
    };
    Some(Col2Recipe {
        k_m,
        j,
        mapper_edges,
        pruned_edges,
    })
}

/// Compute the column-3/4 recipe for one `(k_M, k_R)` pair (pure; safe
/// to run on any thread). `coord_compute[ai]` is the coordinator
/// planning time at tier `ai`.
#[allow(clippy::too_many_arguments)]
fn col3_recipe(
    platform: &Platform,
    catalog: &PriceCatalog,
    space: &ConfigSpace,
    cache: &ModelCache<'_>,
    coord_compute: &[f64],
    prune: PruneConfig,
    k_m: usize,
    k_r: usize,
) -> Option<Col3Recipe> {
    let job = cache.job();
    let tiers = &space.memory_tiers_mb;
    let structure = cache.reduce_structure(k_m, k_r);
    // Eq. 18 storage cap: D + S(state) + Q <= O. (`D` via the cache's
    // one-shot total, not an O(N) rescan per (k_M, k_R) pair.)
    let state_mb = job.profile.state_object_mb * structure.num_steps() as f64;
    let pending_input_mb = total_input_mb(&structure.steps);
    if cache.job_total_mb() + state_mb + pending_input_mb > platform.max_storage_mb {
        return None;
    }
    // Concurrency: widest reduce step + the waiting coordinator.
    let widest = structure
        .steps
        .iter()
        .map(|s| s.reducers())
        .max()
        .unwrap_or(0);
    if widest + 1 > platform.max_concurrency as usize {
        return None;
    }

    let e2_cost = orchestration_requests_cost(&structure, platform, catalog);

    // Per reducer tier: full reducer lifetimes, phase span, reducer
    // bills — all independent of the coordinator tier.
    struct PerTier {
        phase_s: f64,
        wait_before_last_s: f64,
        edge_cost_excl_coord: Money,
        feasible: bool,
    }
    let per_tier: Vec<PerTier> = tiers
        .iter()
        .map(|&s_mem| {
            let times = cache.reduce_tier_times(k_m, k_r, s_mem);
            // Step maxima decide feasibility: every reducer fits the
            // timeout iff the slowest one in each step does.
            let feasible = times
                .per_step_max_s
                .iter()
                .all(|&t| t <= platform.timeout_s);
            if !feasible {
                // No final edge will use this tier; skip its costing.
                return PerTier {
                    phase_s: 0.0,
                    wait_before_last_s: 0.0,
                    edge_cost_excl_coord: Money::ZERO,
                    feasible,
                };
            }
            let wait_before_last: f64 = times.per_step_max_s[..times.per_step_max_s.len() - 1]
                .iter()
                .sum();
            // reduce_edge_cost with a zero-duration coordinator gives
            // the coordinator-independent part.
            let cost_excl = reduce_edge_cost(
                job,
                &structure,
                &times,
                s_mem,
                tiers[0],
                0.0,
                platform,
                catalog,
                cache.job_total_mb(),
            );
            PerTier {
                phase_s: times.duration_s(),
                wait_before_last_s: wait_before_last,
                edge_cost_excl_coord: cost_excl,
                feasible,
            }
        })
        .collect();

    let last_spawn_s = *structure
        .per_step_spawn_s
        .last()
        .expect("at least one step");
    let full: Vec<Col4Recipe> = tiers
        .iter()
        .enumerate()
        .map(|(ai, &a_mem)| {
            let state_put_s =
                coordinator_state_put_secs(structure.num_steps(), platform, &job.profile, a_mem);
            let t2_s = coord_compute[ai] + state_put_s;
            let e3_cost = coordinator_storage_cost(
                job,
                &structure,
                t2_s,
                platform,
                catalog,
                cache.job_total_mb(),
                pending_input_mb,
            );
            let mut final_edges = Vec::new();
            for (si, tier) in per_tier.iter().enumerate() {
                if !tier.feasible {
                    continue;
                }
                // The coordinator waits through the first P-1 steps and
                // pays the final step's launch latency before exiting
                // (PerfBreakdown::coordinator_billed_s).
                let coord_billed_s = t2_s + tier.wait_before_last_s + last_spawn_s;
                if coord_billed_s > platform.timeout_s {
                    continue;
                }
                let coord_cost = runtime_cost(coord_billed_s, a_mem, &catalog.lambda);
                let e4_cost = tier.edge_cost_excl_coord + coord_cost;
                final_edges.push((si, metrics(tier.phase_s, e4_cost)));
            }
            Col4Recipe {
                e3: metrics(t2_s, e3_cost),
                final_edges,
            }
        })
        .collect();

    let (mut pruned_coords, mut pruned_final_edges) = (0usize, 0usize);
    let mut per_coord: Vec<(usize, Col4Recipe)> = if prune.pareto_tiers {
        // Coordinator-tier dominance within this (k_M, k_R). A path
        // through coordinator `a` and reducer tier `s` adds time
        // `t2(a) + phase(s)` and cost `e3c(a) + e4c(s, a)`; `phase(s)`
        // is coordinator-independent, so `aj` dominates `ai` iff
        // `t2(aj) <= t2(ai)` and, for every reducer continuation `ai`
        // offers, `aj` offers it no more expensively — with at least one
        // strict improvement (exact ties keep both). Coordinators with
        // no feasible reducer tier are dead ends and always dropped.
        let combined: Vec<Vec<Option<i64>>> = full
            .iter()
            .map(|c| {
                let mut by_si: Vec<Option<i64>> = vec![None; tiers.len()];
                for &(si, m) in &c.final_edges {
                    by_si[si] = Some(c.e3.cost_nanos + m.cost_nanos);
                }
                by_si
            })
            .collect();
        let dominated = |i: usize| -> bool {
            if full[i].final_edges.is_empty() {
                return true; // dead end: on no source→sink path
            }
            // Only `i`'s own continuations decide dominance — slots `j`
            // offers and `i` lacks never make `j` worse — so walk `i`'s
            // (sparse) final-edge list and index `j`'s dense slot table.
            let base_i = full[i].e3.cost_nanos;
            (0..full.len()).any(|j| {
                if j == i {
                    return false;
                }
                let (ti, tj) = (full[i].e3.time_s, full[j].e3.time_s);
                if tj > ti {
                    return false;
                }
                let mut strict = tj < ti;
                let by_si_j = &combined[j];
                for &(si, m) in &full[i].final_edges {
                    let ci = base_i + m.cost_nanos;
                    match by_si_j[si] {
                        Some(cj) => {
                            if cj > ci {
                                return false;
                            }
                            if cj < ci {
                                strict = true;
                            }
                        }
                        None => return false, // j misses a continuation
                    }
                }
                strict
            })
        };
        let keep: Vec<bool> = (0..full.len()).map(|i| !dominated(i)).collect();
        pruned_coords = keep.iter().filter(|&&k| !k).count();
        full.into_iter()
            .enumerate()
            .filter(|(ai, _)| keep[*ai])
            .collect()
    } else {
        full.into_iter().enumerate().collect()
    };
    if prune.pareto_tiers {
        // Reducer-tier dominance within each surviving coordinator: the
        // z_s -> sink edge is (0, 0), so the final-edge bundle alone
        // decides dominance.
        for (_, coord) in &mut per_coord {
            pruned_final_edges += pareto_filter(&mut coord.final_edges);
        }
    }

    Some(Col3Recipe {
        k_r,
        e2: metrics(0.0, e2_cost),
        per_coord,
        pruned_coords,
        pruned_final_edges,
    })
}

impl PlannerDag {
    /// Construct the DAG for `job` over `space`, pricing with `catalog`.
    ///
    /// Edge metrics for columns 2–4 are evaluated in parallel over the
    /// `(k_M, k_R, tier)` choices; assembly is serial and ordered, so the
    /// resulting graph is bit-identical to [`PlannerDag::build_serial`]
    /// for every thread count.
    pub fn build(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> PlannerDag {
        Self::build_with(job, platform, catalog, space, PruneConfig::default())
    }

    /// [`PlannerDag::build`] with explicit [`PruneConfig`] (the default
    /// build prunes; pass [`PruneConfig::off`] for the full Fig. 5 DAG).
    pub fn build_with(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
        prune: PruneConfig,
    ) -> PlannerDag {
        let cache = ModelCache::new(job, platform);
        Self::build_with_cache(catalog, space, &cache, prune)
    }

    /// [`PlannerDag::build_with`] reusing an existing model cache, so DAG
    /// construction and later sweeps (exhaustive validation, frontier
    /// walks) share memoized sub-terms.
    pub fn build_with_cache(
        catalog: &PriceCatalog,
        space: &ConfigSpace,
        cache: &ModelCache<'_>,
        prune: PruneConfig,
    ) -> PlannerDag {
        // Wall-clock spans per construction pass follow the process-global
        // telemetry handle (installed by the CLI / experiment binaries);
        // they are observational only and do not touch the build itself.
        let tel = astra_telemetry::global();
        let build_span = tel.wall_span("planner", "dag.build", "planner");
        let (job, platform) = (cache.job(), cache.platform());
        job.profile.validate();
        let coord_compute = coord_compute_per_tier(job, platform, space);

        // Pass 1: mapper edges, parallel over k_M (order-preserving).
        let col2: Vec<Col2Recipe> = {
            let mut span = tel.wall_span("planner", "dag.col2", "planner");
            span.set_parent(build_span.id());
            space
                .k_m_values
                .par_iter()
                .filter_map(|&k_m| col2_recipe(platform, catalog, space, cache, prune, k_m))
                .collect()
        };

        // Pass 2: reduce edges, parallel over the surviving (k_M, k_R)
        // pairs. Work items are indexed by their column-2 recipe so the
        // results can be regrouped in order.
        let col3_flat: Vec<Option<(usize, Col3Recipe)>> = {
            let mut span = tel.wall_span("planner", "dag.col3", "planner");
            span.set_parent(build_span.id());
            let work: Vec<(usize, usize, usize)> = col2
                .iter()
                .enumerate()
                .flat_map(|(ci, r)| {
                    space
                        .k_r_candidates(r.j)
                        .into_iter()
                        .map(move |k_r| (ci, r.k_m, k_r))
                })
                .collect();
            work.par_iter()
                .map(|&(ci, k_m, k_r)| {
                    col3_recipe(platform, catalog, space, cache, &coord_compute, prune, k_m, k_r)
                        .map(|r| (ci, r))
                })
                .collect()
        };

        let dag = {
            let mut span = tel.wall_span("planner", "dag.assemble", "planner");
            span.set_parent(build_span.id());
            assemble(space, col2, col3_flat)
        };
        if tel.enabled() {
            tel.gauge("planner.dag.nodes", dag.graph().node_count() as f64);
            tel.gauge("planner.dag.edges", dag.graph().edge_count() as f64);
            let stats = dag.prune_stats();
            tel.gauge("planner.dag.pruned_mapper_edges", stats.mapper_edges as f64);
            tel.gauge(
                "planner.dag.pruned_coordinator_nodes",
                stats.coordinator_nodes as f64,
            );
            tel.gauge("planner.dag.pruned_reducer_edges", stats.reducer_edges as f64);
            tel.gauge("planner.dag.edges_stored", dag.soa().edges_stored() as f64);
            tel.gauge(
                "planner.dag.bundles_collapsed",
                dag.soa().bundles_collapsed() as f64,
            );
        }
        dag
    }

    /// Single-threaded reference construction: runs the same recipe
    /// functions as [`PlannerDag::build`] on plain iterators and feeds
    /// the identical assembly, so the two are bit-identical by
    /// construction (and a test asserts it stays that way).
    pub fn build_serial(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
    ) -> PlannerDag {
        Self::build_serial_with(job, platform, catalog, space, PruneConfig::default())
    }

    /// [`PlannerDag::build_serial`] with explicit [`PruneConfig`].
    pub fn build_serial_with(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
        prune: PruneConfig,
    ) -> PlannerDag {
        job.profile.validate();
        let cache = ModelCache::new(job, platform);
        let coord_compute = coord_compute_per_tier(job, platform, space);

        let col2: Vec<Col2Recipe> = space
            .k_m_values
            .iter()
            .filter_map(|&k_m| col2_recipe(platform, catalog, space, &cache, prune, k_m))
            .collect();
        let col3_flat: Vec<Option<(usize, Col3Recipe)>> = col2
            .iter()
            .enumerate()
            .flat_map(|(ci, r)| {
                space
                    .k_r_candidates(r.j)
                    .into_iter()
                    .map(move |k_r| (ci, r.k_m, k_r))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(ci, k_m, k_r)| {
                col3_recipe(
                    platform,
                    catalog,
                    space,
                    &cache,
                    &coord_compute,
                    prune,
                    k_m,
                    k_r,
                )
                .map(|r| (ci, r))
            })
            .collect();

        assemble(space, col2, col3_flat)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<Choice, EdgeMetrics> {
        &self.graph
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// How much dominance pruning removed during construction (all zero
    /// for [`PruneConfig::off`] builds).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune_stats
    }

    /// The flat struct-of-arrays edge store the solvers iterate.
    pub fn soa(&self) -> &SoaEdges {
        &self.soa
    }

    /// Recover the configuration a source→sink path encodes.
    ///
    /// Panics if the path does not visit one node of every column (which
    /// cannot happen for paths produced by the solvers on a built DAG).
    pub fn config_for_path(&self, edges: &[EdgeId]) -> JobConfig {
        let mut mapper_mem = None;
        let mut coord = None;
        let mut reducer_mem = None;
        let mut k_m = None;
        let mut k_r = None;
        for &e in edges {
            let (_, to) = self.graph.endpoints(e);
            match *self.graph.node(to) {
                Choice::MapperMem(m) => mapper_mem = Some(m),
                Choice::ObjectsPerMapper(k) => k_m = Some(k),
                Choice::ObjectsPerReducer { k_r: k, .. } => k_r = Some(k),
                Choice::CoordinatorMem { mem, .. } => coord = Some(mem),
                Choice::ReducerMem(m) => reducer_mem = Some(m),
                Choice::Source | Choice::Sink => {}
            }
        }
        JobConfig {
            mapper_mem_mb: mapper_mem.expect("path misses mapper memory"),
            coordinator_mem_mb: coord.expect("path misses coordinator memory"),
            reducer_mem_mb: reducer_mem.expect("path misses reducer memory"),
            objects_per_mapper: k_m.expect("path misses k_M"),
            objects_per_reducer: k_r.expect("path misses k_R"),
        }
    }

    /// Total time metric along a path.
    pub fn path_time_s(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.graph.edge(e).time_s).sum()
    }

    /// Total cost metric along a path.
    pub fn path_cost(&self, edges: &[EdgeId]) -> Money {
        Money::from_nanos(
            edges
                .iter()
                .map(|&e| self.graph.edge(e).cost_nanos as i128)
                .sum(),
        )
    }

    /// Overwrite one edge's metrics in the graph arena (the SoA mirror
    /// is refreshed separately via [`PlannerDag::refresh_soa_metrics`]).
    pub(crate) fn set_edge(&mut self, eid: EdgeId, m: EdgeMetrics) {
        *self.graph.edge_mut(eid) = m;
    }

    /// Re-copy the SoA mirror's times/costs from the graph payloads
    /// after a batch of [`PlannerDag::set_edge`] writes.
    pub(crate) fn refresh_soa_metrics(&mut self) {
        let PlannerDag { graph, soa, .. } = self;
        soa.refresh_metrics(graph);
    }

    /// Re-copy the SoA mirror's times/costs for the out-edges of the
    /// marked tail nodes only (`tails[u]` ⇒ node `u`'s out-edges may
    /// have been rewritten by [`PlannerDag::set_edge`]).
    pub(crate) fn refresh_soa_metrics_on(&mut self, tails: &[bool]) {
        let PlannerDag { graph, soa, .. } = self;
        soa.refresh_metrics_on(graph, tails);
    }

    /// Tier-B incremental patch: recompute the column recipes for the
    /// (changed) job behind `cache` and *replay* [`assemble`]'s exact
    /// node/edge emission order against this DAG's existing topology,
    /// overwriting edge metrics in place.
    ///
    /// Because assembly order is deterministic, a successful replay — a
    /// node-by-node, edge-by-edge topology match that consumes exactly
    /// the stored node and edge counts — produces a graph bit-identical
    /// to a cold [`PlannerDag::build_with_cache`] at the new inputs.
    /// Any divergence (a feasibility gate or pruning verdict flipped, so
    /// the new build would have different shape) returns `false`; the
    /// DAG's payloads are then partially overwritten and the caller
    /// **must** discard it and rebuild. `space` and `prune` must be the
    /// ones the DAG was originally built with (the delta classifier
    /// guarantees this — space changes are reshape deltas).
    pub(crate) fn try_patch_recompute(
        &mut self,
        catalog: &PriceCatalog,
        space: &ConfigSpace,
        cache: &ModelCache<'_>,
        prune: PruneConfig,
    ) -> bool {
        let (job, platform) = (cache.job(), cache.platform());
        job.profile.validate();
        let coord_compute = coord_compute_per_tier(job, platform, space);

        // Same parallel recipe passes as `build_with_cache`.
        let col2: Vec<Col2Recipe> = space
            .k_m_values
            .par_iter()
            .filter_map(|&k_m| col2_recipe(platform, catalog, space, cache, prune, k_m))
            .collect();
        let col3_flat: Vec<Option<(usize, Col3Recipe)>> = {
            let work: Vec<(usize, usize, usize)> = col2
                .iter()
                .enumerate()
                .flat_map(|(ci, r)| {
                    space
                        .k_r_candidates(r.j)
                        .into_iter()
                        .map(move |k_r| (ci, r.k_m, k_r))
                })
                .collect();
            work.par_iter()
                .map(|&(ci, k_m, k_r)| {
                    col3_recipe(platform, catalog, space, cache, &coord_compute, prune, k_m, k_r)
                        .map(|r| (ci, r))
                })
                .collect()
        };

        // Replay `assemble`'s emission order, checking topology and
        // overwriting payloads as we go.
        fn take_node(
            g: &DiGraph<Choice, EdgeMetrics>,
            next: &mut u32,
            want: Choice,
        ) -> Option<NodeId> {
            let id = NodeId(*next);
            if (*next as usize) >= g.node_count() || *g.node(id) != want {
                return None;
            }
            *next += 1;
            Some(id)
        }
        fn take_edge(
            g: &mut DiGraph<Choice, EdgeMetrics>,
            next: &mut u32,
            from: NodeId,
            to: NodeId,
            m: EdgeMetrics,
        ) -> bool {
            let id = EdgeId(*next);
            if (*next as usize) >= g.edge_count() || g.endpoints(id) != (from, to) {
                return false;
            }
            *g.edge_mut(id) = m;
            *next += 1;
            true
        }

        let tiers = &space.memory_tiers_mb;
        let g = &mut self.graph;
        let (mut nn, mut ne) = (0u32, 0u32);
        let Some(source) = take_node(g, &mut nn, Choice::Source) else {
            return false;
        };
        let Some(sink) = take_node(g, &mut nn, Choice::Sink) else {
            return false;
        };
        let mut col1 = Vec::with_capacity(tiers.len());
        for &m in tiers.iter() {
            let Some(id) = take_node(g, &mut nn, Choice::MapperMem(m)) else {
                return false;
            };
            if !take_edge(g, &mut ne, source, id, metrics(0.0, Money::ZERO)) {
                return false;
            }
            col1.push(id);
        }
        let mut col5 = Vec::with_capacity(tiers.len());
        for &m in tiers.iter() {
            let Some(id) = take_node(g, &mut nn, Choice::ReducerMem(m)) else {
                return false;
            };
            if !take_edge(g, &mut ne, id, sink, metrics(0.0, Money::ZERO)) {
                return false;
            }
            col5.push(id);
        }

        let mut prune_stats = PruneStats::default();
        let mut col2_nodes = Vec::with_capacity(col2.len());
        for r in &col2 {
            prune_stats.mapper_edges += r.pruned_edges;
            let Some(node) = take_node(g, &mut nn, Choice::ObjectsPerMapper(r.k_m)) else {
                return false;
            };
            for &(ti, m) in &r.mapper_edges {
                if !take_edge(g, &mut ne, col1[ti], node, m) {
                    return false;
                }
            }
            col2_nodes.push(node);
        }

        for (ci, recipe) in col3_flat.into_iter().flatten() {
            prune_stats.coordinator_nodes += recipe.pruned_coords;
            prune_stats.reducer_edges += recipe.pruned_final_edges;
            if recipe.per_coord.is_empty() {
                continue;
            }
            let k_m = col2[ci].k_m;
            let k_r = recipe.k_r;
            let Some(col3_node) = take_node(g, &mut nn, Choice::ObjectsPerReducer { k_m, k_r })
            else {
                return false;
            };
            if !take_edge(g, &mut ne, col2_nodes[ci], col3_node, recipe.e2) {
                return false;
            }
            for (ai, coord) in recipe.per_coord {
                let want = Choice::CoordinatorMem {
                    k_m,
                    k_r,
                    mem: tiers[ai],
                };
                let Some(col4_node) = take_node(g, &mut nn, want) else {
                    return false;
                };
                if !take_edge(g, &mut ne, col3_node, col4_node, coord.e3) {
                    return false;
                }
                for (si, m) in coord.final_edges {
                    if !take_edge(g, &mut ne, col4_node, col5[si], m) {
                        return false;
                    }
                }
            }
        }

        // The replay must consume the graph exactly: leftovers mean the
        // new build would emit fewer nodes/edges than the old shape.
        if nn as usize != g.node_count() || ne as usize != g.edge_count() {
            return false;
        }
        self.prune_stats = prune_stats;
        self.refresh_soa_metrics();
        true
    }
}

/// Coordinator planning compute per tier (depends only on its tier).
fn coord_compute_per_tier(job: &JobSpec, platform: &Platform, space: &ConfigSpace) -> Vec<f64> {
    let shuffle_mb = job.shuffle_mb();
    space
        .memory_tiers_mb
        .iter()
        .map(|&a| coordinator_compute_secs(shuffle_mb, platform, &job.profile, a))
        .collect()
}

/// Assemble the graph from collected recipes. This is the single
/// authority on node/edge order: columns 1 and 5 in tier order, column 2
/// in `k_m_values` order (mapper edges grouped per `k_M`, in tier
/// order), then per `(k_M, k_R)` in candidate order the column-3 node,
/// its `e2` edge, and per coordinator tier the column-4 node, its `e3`
/// edge and the final edges in reducer-tier order.
fn assemble(
    space: &ConfigSpace,
    col2: Vec<Col2Recipe>,
    col3_flat: Vec<Option<(usize, Col3Recipe)>>,
) -> PlannerDag {
    let tiers = &space.memory_tiers_mb;
    // Pre-size the store: at production N the DAG holds >10^6 edges and
    // incremental regrowth dominates assembly time.
    let (mut nodes, mut edges) = (2 + 2 * tiers.len(), 2 * tiers.len());
    for r in &col2 {
        nodes += 1;
        edges += r.mapper_edges.len();
    }
    for (_, recipe) in col3_flat.iter().flatten() {
        if recipe.per_coord.is_empty() {
            continue;
        }
        nodes += 1 + recipe.per_coord.len();
        edges += 1;
        for (_, coord) in &recipe.per_coord {
            edges += 1 + coord.final_edges.len();
        }
    }
    let mut g: DiGraph<Choice, EdgeMetrics> = DiGraph::with_capacity(nodes, edges);
    let source = g.add_node(Choice::Source);
    let sink = g.add_node(Choice::Sink);

    // Column 1 (mapper memory) and column 5 (reducer memory) are shared
    // across all partitioning choices.
    let col1: Vec<NodeId> = tiers
        .iter()
        .map(|&m| {
            let id = g.add_node(Choice::MapperMem(m));
            g.add_edge(source, id, metrics(0.0, Money::ZERO));
            id
        })
        .collect();
    let col5: Vec<NodeId> = tiers
        .iter()
        .map(|&m| {
            let id = g.add_node(Choice::ReducerMem(m));
            g.add_edge(id, sink, metrics(0.0, Money::ZERO));
            id
        })
        .collect();

    let mut prune_stats = PruneStats::default();
    let col2_nodes: Vec<NodeId> = col2
        .iter()
        .map(|r| {
            prune_stats.mapper_edges += r.pruned_edges;
            let node = g.add_node(Choice::ObjectsPerMapper(r.k_m));
            for &(ti, m) in &r.mapper_edges {
                g.add_edge(col1[ti], node, m);
            }
            node
        })
        .collect();

    let j_of_k_m: HashMap<usize, usize> = col2.iter().map(|r| (r.k_m, r.j)).collect();
    for (ci, recipe) in col3_flat.into_iter().flatten() {
        prune_stats.coordinator_nodes += recipe.pruned_coords;
        prune_stats.reducer_edges += recipe.pruned_final_edges;
        if recipe.per_coord.is_empty() {
            // Every coordinator tier was a dead end: the (k_M, k_R) node
            // would have no continuation, so skip it entirely.
            continue;
        }
        let k_m = col2[ci].k_m;
        let k_r = recipe.k_r;
        let col3_node = g.add_node(Choice::ObjectsPerReducer { k_m, k_r });
        g.add_edge(col2_nodes[ci], col3_node, recipe.e2);
        for (ai, coord) in recipe.per_coord {
            let col4_node = g.add_node(Choice::CoordinatorMem {
                k_m,
                k_r,
                mem: tiers[ai],
            });
            g.add_edge(col3_node, col4_node, coord.e3);
            for (si, m) in coord.final_edges {
                g.add_edge(col4_node, col5[si], m);
            }
        }
    }

    let soa = SoaEdges::build(&g, space, &j_of_k_m);
    PlannerDag {
        graph: g,
        source,
        sink,
        prune_stats,
        soa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_graph::dijkstra::shortest_path_all;
    use astra_model::{evaluate, WorkloadProfile};

    fn job(n: usize) -> JobSpec {
        JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test())
    }

    fn build(n: usize, tiers: &[u32]) -> (JobSpec, Platform, PriceCatalog, PlannerDag) {
        let j = job(n);
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, tiers);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        (j, platform, catalog, dag)
    }

    #[test]
    fn dag_is_acyclic_and_connected() {
        let (_, _, _, dag) = build(6, &[128, 1024]);
        assert!(dag.graph().is_dag());
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s);
        assert!(p.is_some());
    }

    #[test]
    fn every_path_metric_matches_model_exactly() {
        // The load-bearing property: path sums == model evaluation —
        // checked on both the idealised platform and the full AWS one
        // (cold-start-free model, but spawn overheads, efficiency curve
        // and bandwidth scaling all active).
        for platform in [
            Platform::paper_literal(10.0),
            Platform::aws_lambda(),
            Platform::aws_lambda().with_elasticache(),
        ] {
            let j = job(6);
            let catalog = PriceCatalog::aws_2020();
            let space = ConfigSpace::with_tiers(&j, &platform, &[128, 512, 3008]);
            let dag = PlannerDag::build(&j, &platform, &catalog, &space);
            // Probe several paths by minimizing different mixes.
            for lambda in [0.0, 0.3, 0.7, 1.0] {
                let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| {
                    lambda * m.time_s + (1.0 - lambda) * (m.cost_nanos as f64) * 1e-6
                })
                .unwrap();
                let config = dag.config_for_path(&p.edges);
                let ev = evaluate(&j, &platform, &config, &catalog).unwrap();
                let dt = (dag.path_time_s(&p.edges) - ev.jct_s()).abs();
                assert!(dt < 1e-9, "time mismatch {dt} for {config:?}");
                assert_eq!(
                    dag.path_cost(&p.edges),
                    ev.total_cost(),
                    "cost mismatch for {config:?}"
                );
            }
        }
    }

    #[test]
    fn unconstrained_shortest_time_path_beats_every_config() {
        let (j, platform, catalog, dag) = build(5, &[128, 1024]);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s).unwrap();
        let best_time = dag.path_time_s(&p.edges);
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        for config in space.iter_configs(&j) {
            if let Ok(ev) = evaluate(&j, &platform, &config, &catalog) {
                assert!(
                    best_time <= ev.jct_s() + 1e-9,
                    "config {config:?} is faster: {} < {best_time}",
                    ev.jct_s()
                );
            }
        }
    }

    #[test]
    fn unconstrained_cheapest_path_beats_every_config() {
        let (j, platform, catalog, dag) = build(5, &[128, 1024]);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| {
            m.cost_nanos as f64
        })
        .unwrap();
        let best = dag.path_cost(&p.edges);
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        for config in space.iter_configs(&j) {
            if let Ok(ev) = evaluate(&j, &platform, &config, &catalog) {
                assert!(best <= ev.total_cost(), "config {config:?} is cheaper");
            }
        }
    }

    #[test]
    fn timeout_prunes_slow_tiers() {
        let j = job(2);
        let mut platform = Platform::paper_literal(10.0);
        // 1 mapper x 2 MB at 1 s/MB on 128 MB: ~2.4 s. Timeout below that
        // kills the 128 MB edges but keeps 1024 MB ones.
        platform.timeout_s = 1.0;
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s).unwrap();
        let config = dag.config_for_path(&p.edges);
        assert_eq!(config.mapper_mem_mb, 1024);
    }

    #[test]
    fn concurrency_cap_prunes_wide_fanouts() {
        let j = job(10);
        let mut platform = Platform::paper_literal(10.0);
        platform.max_concurrency = 4;
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace {
            memory_tiers_mb: vec![128],
            k_m_values: (1..=10).collect(),
            k_r_values: (2..=10).collect(),
            k_m_weights: Vec::new(),
        };
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        // k_M = 1 and 2 (j = 10, 5) must be absent.
        for id in dag.graph().node_ids() {
            if let Choice::ObjectsPerMapper(k_m) = dag.graph().node(id) {
                assert!(*k_m >= 3, "k_M={k_m} should have been pruned");
            }
        }
    }

    #[test]
    fn pruning_shrinks_the_dag_and_reports_stats() {
        let j = job(8);
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 256, 512, 1024, 1792, 3008]);
        let pruned = PlannerDag::build_with(&j, &platform, &catalog, &space, PruneConfig::on());
        let full = PlannerDag::build_with(&j, &platform, &catalog, &space, PruneConfig::off());
        assert_eq!(full.prune_stats(), PruneStats::default());
        assert!(
            pruned.prune_stats().total() > 0,
            "expected dominated tiers across a 6-tier space"
        );
        assert!(pruned.graph().edge_count() < full.graph().edge_count());
        assert!(pruned.graph().node_count() <= full.graph().node_count());
        // Both orientations still find their unconstrained optimum, and it
        // matches the full DAG's bit for bit.
        for metric in [
            (|m: &EdgeMetrics| m.time_s) as fn(&EdgeMetrics) -> f64,
            (|m: &EdgeMetrics| m.cost_nanos as f64) as fn(&EdgeMetrics) -> f64,
        ] {
            let p = shortest_path_all(pruned.graph(), pruned.source(), pruned.sink(), |_, m| {
                metric(m)
            })
            .unwrap();
            let q =
                shortest_path_all(full.graph(), full.source(), full.sink(), |_, m| metric(m))
                    .unwrap();
            assert_eq!(pruned.config_for_path(&p.edges), full.config_for_path(&q.edges));
        }
    }

    #[test]
    fn prune_off_matches_the_historical_full_dag_shape() {
        // PruneConfig::off must reproduce the pre-pruning construction
        // exactly: every coordinator tier gets a column-4 node even when
        // it is a dead end with no feasible reducer continuation.
        let j = job(5);
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128, 1024]);
        let a = PlannerDag::build_with(&j, &platform, &catalog, &space, PruneConfig::off());
        let b = PlannerDag::build_serial_with(&j, &platform, &catalog, &space, PruneConfig::off());
        assert_eq!(a.graph().node_count(), b.graph().node_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn soa_store_mirrors_the_graph_exactly() {
        let (_, _, _, dag) = build(8, &[128, 512, 3008]);
        let g = dag.graph();
        let soa = dag.soa();
        assert_eq!(soa.edges_stored(), g.edge_count());
        // Even the raw space folds every k_R >= j onto the single-step
        // candidate (the k_r_candidates clamp), so the collapse counter
        // is non-zero here too. Derive the expected total independently:
        // an edge into the single-step node `k_R = max(j, 2)` stands for
        // the n - max(j, 2) + 1 raw values of 2..=n at or above it.
        let expected: u64 = g
            .node_ids()
            .flat_map(|u| g.out_edges(u).map(|(eid, _)| g.endpoints(eid).1))
            .map(|head| match *g.node(head) {
                Choice::ObjectsPerReducer { k_m, k_r } => {
                    let cap = 8usize.div_ceil(k_m).max(2);
                    if k_r == cap {
                        (8 - cap) as u64
                    } else {
                        0
                    }
                }
                _ => 0,
            })
            .sum();
        assert_eq!(soa.bundles_collapsed(), expected);
        // Slot order per node == out_edges order, payloads bit-identical.
        let mut view = soa.time_view();
        for u in g.node_ids() {
            let arena: Vec<(EdgeId, u32, u64, i64)> = g
                .out_edges(u)
                .map(|(eid, m)| {
                    (eid, g.endpoints(eid).1 .0, m.time_s.to_bits(), m.cost_nanos)
                })
                .collect();
            let mut flat: Vec<(EdgeId, u32, u64, f64)> = Vec::new();
            view.for_each_out(u.0, |eid, head, w, r| {
                flat.push((eid, head, w.to_bits(), r));
            });
            assert_eq!(arena.len(), flat.len());
            for (a, f) in arena.iter().zip(&flat) {
                assert_eq!(a.0, f.0);
                assert_eq!(a.1, f.1);
                assert_eq!(a.2, f.2, "time bits differ on edge {:?}", a.0);
                assert_eq!((a.3 as f64 * 1e-3).to_bits(), f.3.to_bits(), "cost µ$");
            }
        }
        // Stored topo order is the graph's own.
        let topo: Vec<u32> = g
            .topological_order()
            .unwrap()
            .into_iter()
            .map(|id| id.0)
            .collect();
        assert_eq!(view.topo_order().unwrap(), topo);
    }

    #[test]
    fn bundled_space_records_edge_multiplicities() {
        let j = job(97);
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::bundled(&j, &platform);
        let full = ConfigSpace::full(&j, &platform);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        assert!(
            dag.soa().bundles_collapsed() > 0,
            "97 objects have k_M classes wider than one candidate"
        );
        // The bundled space's k_M axis stands for every raw candidate.
        assert_eq!(
            space.k_m_weights.iter().sum::<usize>(),
            full.k_m_values.len()
        );
    }

    #[test]
    fn infeasible_platform_yields_no_path() {
        let j = job(4);
        let mut platform = Platform::paper_literal(10.0);
        platform.timeout_s = 0.001; // nothing fits
        let catalog = PriceCatalog::aws_2020();
        let space = ConfigSpace::with_tiers(&j, &platform, &[128]);
        let dag = PlannerDag::build(&j, &platform, &catalog, &space);
        let p = shortest_path_all(dag.graph(), dag.source(), dag.sink(), |_, m| m.time_s);
        assert!(p.is_none());
    }
}
