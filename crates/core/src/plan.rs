//! Execution plans: a fully-specified, executable configuration plus its
//! model-predicted time and cost.

use astra_model::evaluate::check_feasibility;
use astra_model::perf::{
    coordinator_compute_secs, coordinator_state_put_secs, mapper_phase, reduce_structure_from_steps,
    reduce_tier_times, PerfBreakdown, ReducePhase,
};
use astra_model::schedule::{explicit_schedule, schedule_steps};
use astra_model::{cost, Evaluation, Infeasibility, JobConfig, JobSpec, Platform};
use astra_pricing::{Money, PriceCatalog};
use serde::{Deserialize, Serialize};

/// How the reducing phase is organised.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceSpec {
    /// Derive the Table II schedule from `k_R` objects per reducer (what
    /// Astra and Baselines 1–2 do).
    PerReducer(usize),
    /// An explicit per-step reducer count with even object splits (what
    /// Baseline 3 does). Must end with a single reducer.
    ExplicitSteps(Vec<usize>),
}

/// A configuration to evaluate into a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Mapper lambda memory (MB).
    pub mapper_mem_mb: u32,
    /// Coordinator lambda memory (MB).
    pub coordinator_mem_mb: u32,
    /// Reducer lambda memory (MB).
    pub reducer_mem_mb: u32,
    /// Objects per mapper (`k_M`).
    pub objects_per_mapper: usize,
    /// Reducing-phase organisation.
    pub reduce_spec: ReduceSpec,
}

impl From<JobConfig> for PlanSpec {
    fn from(c: JobConfig) -> Self {
        PlanSpec {
            mapper_mem_mb: c.mapper_mem_mb,
            coordinator_mem_mb: c.coordinator_mem_mb,
            reducer_mem_mb: c.reducer_mem_mb,
            objects_per_mapper: c.objects_per_mapper,
            reduce_spec: ReduceSpec::PerReducer(c.objects_per_reducer),
        }
    }
}

/// A validated, executable plan: the spec plus the model's evaluation of
/// it. This is what `Astra::plan` returns, what Table III summarises, and
/// what the MapReduce engine executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The configuration.
    pub spec: PlanSpec,
    /// Model-predicted performance and cost.
    pub evaluation: Evaluation,
}

impl Plan {
    /// Evaluate `spec` against the model, checking platform feasibility.
    pub fn evaluate(
        job: &JobSpec,
        platform: &Platform,
        catalog: &PriceCatalog,
        spec: PlanSpec,
    ) -> Result<Plan, Infeasibility> {
        for mem in [
            spec.mapper_mem_mb,
            spec.coordinator_mem_mb,
            spec.reducer_mem_mb,
        ] {
            if !platform.is_valid_tier(mem) {
                return Err(Infeasibility::InvalidMemoryTier { mem_mb: mem });
            }
        }
        let perf = perf_for_spec(job, platform, &spec);
        check_feasibility(job, platform, &perf)?;
        let config = JobConfig {
            mapper_mem_mb: spec.mapper_mem_mb,
            coordinator_mem_mb: spec.coordinator_mem_mb,
            reducer_mem_mb: spec.reducer_mem_mb,
            objects_per_mapper: spec.objects_per_mapper,
            // Only the memory fields of the config are read by the cost
            // model; the partitioning is already baked into `perf`.
            objects_per_reducer: 1,
        };
        let cost = cost::full_cost(job, &config, &perf, platform, catalog);
        Ok(Plan {
            spec,
            evaluation: Evaluation { perf, cost },
        })
    }

    /// Number of mapper lambdas.
    pub fn mappers(&self) -> usize {
        self.evaluation.perf.mapper.per_mapper_secs.len()
    }

    /// Total number of reducer lambdas across steps.
    pub fn reducers(&self) -> usize {
        self.evaluation.perf.reduce.structure.total_reducers()
    }

    /// Number of reducing steps (`P`).
    pub fn reduce_steps(&self) -> usize {
        self.evaluation.perf.reduce.structure.num_steps()
    }

    /// Reducer count of each step, in order (`g_1 .. g_P`).
    pub fn reducers_per_step(&self) -> Vec<usize> {
        self.evaluation
            .perf
            .reduce
            .structure
            .steps
            .iter()
            .map(|s| s.reducers())
            .collect()
    }

    /// Model-predicted completion time in seconds.
    pub fn predicted_jct_s(&self) -> f64 {
        self.evaluation.jct_s()
    }

    /// Model-predicted total bill.
    pub fn predicted_cost(&self) -> Money {
        self.evaluation.total_cost()
    }

    /// One-line Table III-style summary.
    pub fn summary(&self) -> String {
        format!(
            "mem(map/co/red)={}/{}/{}MB k_M={} {} mappers={} reducers={} steps={} | pred {:.1}s {}",
            self.spec.mapper_mem_mb,
            self.spec.coordinator_mem_mb,
            self.spec.reducer_mem_mb,
            self.spec.objects_per_mapper,
            match &self.spec.reduce_spec {
                ReduceSpec::PerReducer(k) => format!("k_R={k}"),
                ReduceSpec::ExplicitSteps(v) => format!("steps={v:?}"),
            },
            self.mappers(),
            self.reducers(),
            self.reduce_steps(),
            self.predicted_jct_s(),
            self.predicted_cost(),
        )
    }
}

/// Build the performance breakdown for a spec (generalises
/// `astra_model::perf::full_perf` to explicit reduce schedules).
pub fn perf_for_spec(job: &JobSpec, platform: &Platform, spec: &PlanSpec) -> PerfBreakdown {
    let mapper = mapper_phase(job, platform, spec.mapper_mem_mb, spec.objects_per_mapper);
    let steps = match &spec.reduce_spec {
        ReduceSpec::PerReducer(k_r) => schedule_steps(
            &mapper.output_sizes_mb,
            *k_r,
            job.profile.reduce_ratio,
            job.profile.single_pass_reduce,
        ),
        ReduceSpec::ExplicitSteps(counts) => {
            explicit_schedule(&mapper.output_sizes_mb, counts, job.profile.reduce_ratio)
        }
    };
    let structure = reduce_structure_from_steps(steps, &job.profile, platform);
    let times = reduce_tier_times(&structure, platform, &job.profile, spec.reducer_mem_mb);
    let coord_compute_s = coordinator_compute_secs(
        job.shuffle_mb(),
        platform,
        &job.profile,
        spec.coordinator_mem_mb,
    );
    let coord_state_put_s = coordinator_state_put_secs(
        structure.num_steps(),
        platform,
        &job.profile,
        spec.coordinator_mem_mb,
    );
    PerfBreakdown {
        mapper,
        coord_compute_s,
        coord_state_put_s,
        reduce: ReducePhase { structure, times },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;

    fn job() -> JobSpec {
        JobSpec::uniform("t", 10, 1.0, WorkloadProfile::uniform_test())
    }

    fn spec(k_m: usize, reduce: ReduceSpec) -> PlanSpec {
        PlanSpec {
            mapper_mem_mb: 128,
            coordinator_mem_mb: 128,
            reducer_mem_mb: 128,
            objects_per_mapper: k_m,
            reduce_spec: reduce,
        }
    }

    #[test]
    fn per_reducer_plan_matches_full_perf() {
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let plan = Plan::evaluate(&job(), &platform, &catalog, spec(2, ReduceSpec::PerReducer(2)))
            .unwrap();
        let config = JobConfig {
            mapper_mem_mb: 128,
            coordinator_mem_mb: 128,
            reducer_mem_mb: 128,
            objects_per_mapper: 2,
            objects_per_reducer: 2,
        };
        let reference = astra_model::evaluate(&job(), &platform, &config, &catalog).unwrap();
        assert_eq!(plan.predicted_jct_s(), reference.jct_s());
        assert_eq!(plan.predicted_cost(), reference.total_cost());
        assert_eq!(plan.mappers(), 5);
        assert_eq!(plan.reducers_per_step(), vec![3, 2, 1]);
    }

    #[test]
    fn explicit_steps_plan_evaluates() {
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        // Baseline 3 layout: 10 mappers, reducers (2, 1).
        let plan = Plan::evaluate(
            &job(),
            &platform,
            &catalog,
            spec(1, ReduceSpec::ExplicitSteps(vec![2, 1])),
        )
        .unwrap();
        assert_eq!(plan.mappers(), 10);
        assert_eq!(plan.reducers_per_step(), vec![2, 1]);
        assert_eq!(plan.reduce_steps(), 2);
        assert!(plan.predicted_jct_s() > 0.0);
    }

    #[test]
    fn invalid_tier_is_rejected() {
        let platform = Platform::aws_lambda();
        let catalog = PriceCatalog::aws_2020();
        let mut s = spec(2, ReduceSpec::PerReducer(2));
        s.reducer_mem_mb = 100;
        let err = Plan::evaluate(&job(), &platform, &catalog, s).unwrap_err();
        assert_eq!(err, Infeasibility::InvalidMemoryTier { mem_mb: 100 });
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let platform = Platform::paper_literal(10.0);
        let catalog = PriceCatalog::aws_2020();
        let plan =
            Plan::evaluate(&job(), &platform, &catalog, spec(2, ReduceSpec::PerReducer(2))).unwrap();
        let s = plan.summary();
        assert!(s.contains("k_M=2"));
        assert!(s.contains("mappers=5"));
        assert!(s.contains("steps=3"));
    }

    #[test]
    fn config_roundtrips_into_spec() {
        let c = JobConfig {
            mapper_mem_mb: 256,
            coordinator_mem_mb: 512,
            reducer_mem_mb: 1024,
            objects_per_mapper: 3,
            objects_per_reducer: 4,
        };
        let s: PlanSpec = c.into();
        assert_eq!(s.mapper_mem_mb, 256);
        assert_eq!(s.reduce_spec, ReduceSpec::PerReducer(4));
    }
}
