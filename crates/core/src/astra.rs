//! The user-facing planner: job in, optimal execution plan out.

use astra_model::{Infeasibility, JobSpec, Platform};
use astra_pricing::PriceCatalog;

use astra_telemetry::Telemetry;

use crate::cache::ModelCache;
use crate::dag::{PlannerDag, PruneConfig};
use crate::objective::Objective;
use crate::plan::Plan;
use crate::session::{effective_prune, PlannerSession};
use crate::solver::{
    solve_exhaustive_with_telemetry, solve_on_dag, solve_on_dag_with_potentials,
    PlannerPotentials, Strategy,
};
use crate::space::ConfigSpace;

/// Why planning failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No configuration satisfies the constraint (budget too small /
    /// deadline too tight), or the platform cannot run the job at all.
    NoFeasiblePlan {
        /// The requirement that could not be met.
        objective: Objective,
    },
    /// The chosen configuration failed re-validation (indicates an
    /// internal inconsistency; should not happen).
    Internal(Infeasibility),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoFeasiblePlan { objective } => {
                write!(f, "no configuration satisfies: {objective}")
            }
            PlanError::Internal(i) => write!(f, "internal planner inconsistency: {i}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The Astra planner (paper Sec. V "Design and Implementation"): wraps the
/// Performance Predictor and Cost Predictor (the analytical models), the
/// Fig. 5 DAG construction and a solver strategy.
///
/// ```
/// use astra_core::{Astra, Objective};
/// use astra_model::{JobSpec, WorkloadProfile};
///
/// let job = JobSpec::uniform("demo", 10, 2.0, WorkloadProfile::uniform_test());
/// let astra = Astra::with_defaults();
/// let plan = astra.plan(&job, Objective::min_time_with_budget_dollars(5.0)).unwrap();
/// assert!(plan.mappers() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Astra {
    platform: Platform,
    catalog: PriceCatalog,
    strategy: Strategy,
    prune: PruneConfig,
    telemetry: Telemetry,
}

impl Astra {
    /// AWS Lambda platform, 2020 prices, exact constrained solver.
    ///
    /// Telemetry snapshots the process-global handle
    /// (`astra_telemetry::global()`), so a binary that installed a
    /// recorder before constructing planners gets planning spans and
    /// cache counters with no extra plumbing.
    pub fn with_defaults() -> Self {
        Astra {
            platform: Platform::aws_lambda(),
            catalog: PriceCatalog::aws_2020(),
            strategy: Strategy::default(),
            prune: PruneConfig::default(),
            telemetry: astra_telemetry::global(),
        }
    }

    /// Fully customised planner (telemetry snapshots the process-global
    /// handle; override with [`Astra::with_telemetry`]).
    pub fn new(platform: Platform, catalog: PriceCatalog, strategy: Strategy) -> Self {
        Astra {
            platform,
            catalog,
            strategy,
            prune: PruneConfig::default(),
            telemetry: astra_telemetry::global(),
        }
    }

    /// The platform this planner targets.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The price catalog in effect.
    pub fn catalog(&self) -> &PriceCatalog {
        &self.catalog
    }

    /// The solver strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Replace the solver strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The dominance-pruning configuration in effect (pruning is on by
    /// default; [`Strategy::Algorithm1`] always runs unpruned for
    /// heuristic fidelity regardless of this setting).
    pub fn prune_config(&self) -> PruneConfig {
        self.prune
    }

    /// Replace the dominance-pruning configuration (e.g.
    /// [`PruneConfig::off`] for equivalence baselines and `--no-prune`
    /// runs).
    pub fn with_prune_config(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Attach an explicit telemetry handle (overriding the process-global
    /// snapshot taken by the constructors).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Plan `job` under `objective` over the full configuration space.
    pub fn plan(&self, job: &JobSpec, objective: Objective) -> Result<Plan, PlanError> {
        let space = ConfigSpace::full(job, &self.platform);
        self.plan_with_space(job, objective, &space)
    }

    /// Plan over a restricted configuration space (tests, ablations).
    ///
    /// When telemetry is enabled the whole request is wrapped in a
    /// wall-clock `plan` span with nested DAG-build and solve phases,
    /// plus model-cache hit/miss counters — all observational; the plan
    /// is bit-identical with telemetry on or off.
    pub fn plan_with_space(
        &self,
        job: &JobSpec,
        objective: Objective,
        space: &ConfigSpace,
    ) -> Result<Plan, PlanError> {
        let plan_span = self.telemetry.wall_span("planner", "plan", "planner");
        let config = match self.strategy {
            Strategy::Exhaustive => solve_exhaustive_with_telemetry(
                job,
                &self.platform,
                &self.catalog,
                space,
                objective,
                &self.telemetry,
            ),
            _ => {
                let cache = ModelCache::new(job, &self.platform);
                let dag = {
                    let mut span = self.telemetry.wall_span("planner", "build_dag", "planner");
                    span.set_parent(plan_span.id());
                    PlannerDag::build_with_cache(
                        &self.catalog,
                        space,
                        &cache,
                        effective_prune(self.prune, self.strategy),
                    )
                };
                let solved = {
                    let mut span = self.telemetry.wall_span("planner", "solve", "planner");
                    span.set_parent(plan_span.id());
                    if matches!(self.strategy, Strategy::ExactCsp | Strategy::Algorithm1) {
                        // One extra reverse-topological sweep buys the
                        // A*-guided, bound-pruned label search (and, for
                        // Algorithm 1, guided Dijkstra in every
                        // edge-removal round).
                        let potentials = PlannerPotentials::compute(&dag);
                        solve_on_dag_with_potentials(
                            &dag,
                            &potentials,
                            objective,
                            self.strategy,
                            &self.telemetry,
                        )
                    } else {
                        solve_on_dag(&dag, objective, self.strategy)
                    }
                };
                if self.telemetry.enabled() {
                    let stats = cache.stats();
                    self.telemetry.counter("planner.cache.hits", stats.hits);
                    self.telemetry.counter("planner.cache.misses", stats.misses);
                    self.telemetry
                        .gauge("planner.cache.entries", stats.entries as f64);
                    self.telemetry
                        .gauge("planner.cache.hit_rate", stats.hit_rate());
                    self.telemetry.counter("planner.plans", 1);
                }
                solved
            }
        }
        .ok_or(PlanError::NoFeasiblePlan { objective })?;
        Plan::evaluate(job, &self.platform, &self.catalog, config.into())
            .map_err(PlanError::Internal)
    }

    /// Build (and return) the planner DAG for `job` — exposed for
    /// inspection, DOT export and the scaling benches.
    pub fn build_dag(&self, job: &JobSpec, space: &ConfigSpace) -> PlannerDag {
        PlannerDag::build_with(
            job,
            &self.platform,
            &self.catalog,
            space,
            effective_prune(self.prune, self.strategy),
        )
    }

    /// Open a reusable [`PlannerSession`] for `job` over its full
    /// configuration space: the DAG and backward potentials are built
    /// once, then every [`PlannerSession::plan`] /
    /// [`PlannerSession::solve`] call reuses them.
    pub fn session(&self, job: &JobSpec) -> PlannerSession {
        let space = ConfigSpace::full(job, &self.platform);
        self.session_with_space(job, &space)
    }

    /// [`Astra::session`] over a restricted configuration space.
    pub fn session_with_space(&self, job: &JobSpec, space: &ConfigSpace) -> PlannerSession {
        PlannerSession::build(
            job,
            self.platform.clone(),
            self.catalog,
            space.clone(),
            self.strategy,
            self.prune,
            self.telemetry.clone(),
        )
    }

    /// Walk the cost–performance Pareto frontier: plan under `points`
    /// evenly spaced budgets between the cheapest and the fastest plans'
    /// costs, returning the distinct plans in increasing-budget order.
    ///
    /// This is the "navigate the tradeoff between performance and cost"
    /// knob the paper's abstract promises, as one call. Plans are
    /// deduplicated (consecutive budgets often buy the same plan); the
    /// first element is the cheapest plan, the last the fastest.
    ///
    /// The per-budget constrained solves run in parallel over the shared
    /// DAG; the dedup pass walks the results in budget order, so the
    /// frontier is identical for every thread count. (This is a one-call
    /// convenience over [`Astra::session`] + [`PlannerSession::pareto_frontier`].)
    pub fn pareto_frontier(&self, job: &JobSpec, points: usize) -> Result<Vec<Plan>, PlanError> {
        self.session(job).pareto_frontier(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_model::WorkloadProfile;
    use astra_pricing::Money;

    fn small_astra() -> Astra {
        Astra::new(
            Platform::paper_literal(10.0),
            PriceCatalog::aws_2020(),
            Strategy::ExactCsp,
        )
    }

    fn job() -> JobSpec {
        JobSpec::uniform("t", 10, 1.0, WorkloadProfile::uniform_test())
    }

    #[test]
    fn plans_respect_the_budget() {
        let astra = small_astra();
        let job = job();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 3008]);
        let cheapest = astra
            .plan_with_space(&job, Objective::cheapest(), &space)
            .unwrap();
        let budget = cheapest.predicted_cost().scale(1.3);
        let plan = astra
            .plan_with_space(&job, Objective::MinimizeTime { budget }, &space)
            .unwrap();
        assert!(plan.predicted_cost() <= budget);
        // Spending more can only speed things up.
        assert!(plan.predicted_jct_s() <= cheapest.predicted_jct_s() + 1e-9);
    }

    #[test]
    fn plans_respect_the_deadline() {
        let astra = small_astra();
        let job = job();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 3008]);
        let fastest = astra
            .plan_with_space(&job, Objective::fastest(), &space)
            .unwrap();
        let deadline = fastest.predicted_jct_s() * 1.5;
        let plan = astra
            .plan_with_space(&job, Objective::min_cost_with_deadline_s(deadline), &space)
            .unwrap();
        assert!(plan.predicted_jct_s() <= deadline + 1e-9);
        assert!(plan.predicted_cost() <= fastest.predicted_cost());
    }

    #[test]
    fn hopeless_budget_is_reported() {
        let astra = small_astra();
        let job = job();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128]);
        let err = astra
            .plan_with_space(
                &job,
                Objective::MinimizeTime {
                    budget: Money::from_nanos(1),
                },
                &space,
            )
            .unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePlan { .. }));
        assert!(err.to_string().contains("no configuration"));
    }

    #[test]
    fn exhaustive_strategy_agrees_with_dag() {
        let astra = small_astra();
        let job = job();
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 1024]);
        let fastest = astra
            .plan_with_space(&job, Objective::fastest(), &space)
            .unwrap();
        let deadline = fastest.predicted_jct_s() * 2.0;
        let objective = Objective::min_cost_with_deadline_s(deadline);
        let dag_plan = astra.plan_with_space(&job, objective, &space).unwrap();
        let ex_plan = astra
            .clone()
            .with_strategy(Strategy::Exhaustive)
            .plan_with_space(&job, objective, &space)
            .unwrap();
        assert_eq!(dag_plan.predicted_cost(), ex_plan.predicted_cost());
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let astra = Astra::with_defaults();
        let job = job();
        let frontier = astra.pareto_frontier(&job, 8).unwrap();
        assert!(frontier.len() >= 2);
        for pair in frontier.windows(2) {
            assert!(pair[1].predicted_cost() >= pair[0].predicted_cost());
            assert!(pair[1].predicted_jct_s() <= pair[0].predicted_jct_s() + 1e-9);
        }
        // Endpoints: first is the cheapest plan, last is the fastest.
        let cheapest = astra.plan(&job, Objective::cheapest()).unwrap();
        let fastest = astra.plan(&job, Objective::fastest()).unwrap();
        assert_eq!(frontier[0].predicted_cost(), cheapest.predicted_cost());
        assert!(
            (frontier.last().unwrap().predicted_jct_s() - fastest.predicted_jct_s()).abs() < 1e-9
        );
    }

    #[test]
    fn default_planner_plans_a_real_scale_job() {
        // Full 46-tier space on a 10-object job: exercises the real DAG
        // size for small N.
        let astra = Astra::with_defaults();
        let job = job();
        let plan = astra
            .plan(&job, Objective::min_time_with_budget_dollars(10.0))
            .unwrap();
        assert!(plan.mappers() >= 1 && plan.mappers() <= 10);
        assert!(plan.reduce_steps() >= 1);
    }
}
