//! User requirements: what to optimize and what bounds it.

use astra_pricing::Money;
use serde::{Deserialize, Serialize};

/// The two flexibly-specified user requirements the paper supports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// "Best possible job performance with a limited budget" — minimize
    /// completion time subject to total cost ≤ `budget` (Eq. 16–19).
    MinimizeTime {
        /// The budget constraint `J`.
        budget: Money,
    },
    /// "Minimize the cost without violating the QoS objective" — minimize
    /// cost subject to completion time ≤ `deadline_s` (Eq. 20–22).
    MinimizeCost {
        /// The QoS threshold `E` in seconds.
        deadline_s: f64,
    },
}

impl Objective {
    /// Performance optimization under a dollar budget.
    pub fn min_time_with_budget_dollars(budget: f64) -> Self {
        Objective::MinimizeTime {
            budget: Money::from_dollars_f64(budget),
        }
    }

    /// Cost minimization under a completion-time threshold in seconds.
    pub fn min_cost_with_deadline_s(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        Objective::MinimizeCost { deadline_s }
    }

    /// Unconstrained time minimization (infinite budget).
    pub fn fastest() -> Self {
        Objective::MinimizeTime {
            budget: Money::from_dollars(i128::MAX / astra_pricing::money::NANOS_PER_DOLLAR),
        }
    }

    /// Unconstrained cost minimization (infinite deadline).
    pub fn cheapest() -> Self {
        Objective::MinimizeCost {
            deadline_s: f64::INFINITY,
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::MinimizeTime { budget } => {
                write!(f, "min time s.t. cost <= {budget}")
            }
            Objective::MinimizeCost { deadline_s } => {
                write!(f, "min cost s.t. time <= {deadline_s:.1}s")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_bounds() {
        match Objective::min_time_with_budget_dollars(2.5) {
            Objective::MinimizeTime { budget } => {
                assert_eq!(budget, Money::from_dollars_f64(2.5));
            }
            _ => panic!(),
        }
        match Objective::min_cost_with_deadline_s(120.0) {
            Objective::MinimizeCost { deadline_s } => assert_eq!(deadline_s, 120.0),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        Objective::min_cost_with_deadline_s(0.0);
    }

    #[test]
    fn display_mentions_the_bound() {
        let o = Objective::min_cost_with_deadline_s(60.0);
        assert!(o.to_string().contains("60.0s"));
    }
}
