//! A faithful implementation of the paper's Algorithm 1.
//!
//! > `P ← Dijkstra(G, W, F)`; walk the path accumulating the constraint
//! > metric; when it trips the bound, remove the offending edge from `E`
//! > and recurse.
//!
//! This is a *heuristic*: removing one edge of an over-budget path does
//! not, in general, preserve the optimal feasible path (the removed edge
//! may belong to it with a different prefix). The ablation bench
//! `alg1_vs_exact` measures how often and by how much it diverges from
//! the exact constrained solver on this problem family — on Astra's DAGs
//! the constraint accumulates monotonically along a path, so the
//! heuristic is usually right, and the paper reports good results with
//! it. The recursion is expressed iteratively here; termination is
//! guaranteed because each round removes one edge.

use std::collections::HashSet;

use astra_graph::dijkstra::{shortest_path, shortest_path_guided, ShortestPath};
use astra_graph::{DiGraph, EdgeId, NodeId};

/// Outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Alg1Solution {
    /// The path found.
    pub path: ShortestPath,
    /// Its accumulated constraint metric.
    pub constraint: f64,
    /// How many edges were removed before a feasible path emerged.
    pub edges_removed: usize,
}

/// Run Algorithm 1: minimize `weight` subject to the path-sum of
/// `constraint_metric` staying **below** `bound` (the paper's line 6 tests
/// `cost >= budget`, i.e. the bound itself is infeasible; pass a slightly
/// inflated bound for `<=` semantics — [`crate::solver`] does).
///
/// Returns `None` if edge removal exhausts every path.
pub fn algorithm1<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    weight: impl FnMut(EdgeId, &E) -> f64,
    constraint_metric: impl FnMut(EdgeId, &E) -> f64,
) -> Option<Alg1Solution> {
    algorithm1_capped(g, source, target, bound, usize::MAX, weight, constraint_metric)
}

/// [`algorithm1`] with a cap on edge removals. The paper's recursion can
/// degenerate on large DAGs with tight bounds — each round removes one
/// edge and re-runs Dijkstra, and nothing stops it short of exhausting
/// the edge set (observed: minutes on the 157k-edge Sort DAG before
/// giving up). Production callers bound it; the `alg1_vs_exact` ablation
/// measures both the cap hit rate and the optimality gap.
pub fn algorithm1_capped<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    max_removals: usize,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
    mut constraint_metric: impl FnMut(EdgeId, &E) -> f64,
) -> Option<Alg1Solution> {
    let mut removed: HashSet<EdgeId> = HashSet::new();
    loop {
        if removed.len() > max_removals {
            return None;
        }
        let path = shortest_path(
            g,
            source,
            target,
            |e, p| weight(e, p),
            |e| !removed.contains(&e),
        )?;

        // Walk the path, accumulating the constraint (Algorithm 1 lines
        // 4–10).
        let mut acc = 0.0;
        let mut offender = None;
        for &e in &path.edges {
            acc += constraint_metric(e, g.edge(e));
            if acc >= bound {
                offender = Some(e);
                break;
            }
        }
        match offender {
            None => {
                return Some(Alg1Solution {
                    constraint: acc,
                    path,
                    edges_removed: removed.len(),
                });
            }
            Some(e) => {
                removed.insert(e);
            }
        }
    }
}

/// [`algorithm1_capped`] with every Dijkstra run A*-guided by backward
/// lower bounds on the objective (`lb_weight[v]` = a lower bound on the
/// remaining weight from `v` to `target` on the **unmasked** graph).
///
/// The bounds are computed once and reused across all removal rounds:
/// masking edges only raises true remaining distances, so a bound that
/// is admissible and consistent on the full graph stays so on every
/// masked subgraph (see `astra_graph::dijkstra::shortest_path_guided`).
/// On the planner DAG the session's backward potentials serve directly.
///
/// Each round settles far fewer nodes than a full Dijkstra (the guided
/// search never expands nodes whose optimistic completion exceeds the
/// target's), but the path found per round has the same weight as the
/// plain search's, so the heuristic's decisions are driven by the same
/// quantities.
#[allow(clippy::too_many_arguments)]
pub fn algorithm1_guided_capped<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    bound: f64,
    max_removals: usize,
    lb_weight: &[f64],
    mut weight: impl FnMut(EdgeId, &E) -> f64,
    mut constraint_metric: impl FnMut(EdgeId, &E) -> f64,
) -> Option<Alg1Solution> {
    let mut removed: HashSet<EdgeId> = HashSet::new();
    loop {
        if removed.len() > max_removals {
            return None;
        }
        let path = shortest_path_guided(
            g,
            source,
            target,
            |e, p| weight(e, p),
            |e| !removed.contains(&e),
            lb_weight,
        )?;

        let mut acc = 0.0;
        let mut offender = None;
        for &e in &path.edges {
            acc += constraint_metric(e, g.edge(e));
            if acc >= bound {
                offender = Some(e);
                break;
            }
        }
        match offender {
            None => {
                return Some(Alg1Solution {
                    constraint: acc,
                    path,
                    edges_removed: removed.len(),
                });
            }
            Some(e) => {
                removed.insert(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type G = DiGraph<(), (f64, f64)>;

    fn w(_: EdgeId, e: &(f64, f64)) -> f64 {
        e.0
    }
    fn c(_: EdgeId, e: &(f64, f64)) -> f64 {
        e.1
    }

    #[test]
    fn unconstrained_matches_dijkstra() {
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, (1.0, 1.0));
        g.add_edge(a, t, (1.0, 1.0));
        g.add_edge(s, t, (5.0, 0.5));
        let sol = algorithm1(&g, s, t, f64::INFINITY, w, c).unwrap();
        assert_eq!(sol.path.weight, 2.0);
        assert_eq!(sol.constraint, 2.0);
        assert_eq!(sol.edges_removed, 0);
    }

    #[test]
    fn reroutes_when_cheapest_violates() {
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        // Fast path, constraint 10.
        g.add_edge(s, a, (1.0, 5.0));
        g.add_edge(a, t, (1.0, 5.0));
        // Slow path, constraint 2.
        g.add_edge(s, b, (3.0, 1.0));
        g.add_edge(b, t, (3.0, 1.0));
        let sol = algorithm1(&g, s, t, 4.0, w, c).unwrap();
        assert_eq!(sol.path.weight, 6.0);
        assert_eq!(sol.constraint, 2.0);
        assert!(sol.edges_removed >= 1);
    }

    #[test]
    fn bound_itself_counts_as_violation() {
        // Paper line 6: `cost >= budget` trips, so a path hitting exactly
        // the bound is rejected.
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 4.0));
        assert!(algorithm1(&g, s, t, 4.0, w, c).is_none());
        assert!(algorithm1(&g, s, t, 4.0 + 1e-9, w, c).is_some());
    }

    #[test]
    fn infeasible_graph_returns_none() {
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, (1.0, 100.0));
        g.add_edge(s, t, (2.0, 50.0));
        assert!(algorithm1(&g, s, t, 10.0, w, c).is_none());
    }

    #[test]
    fn guided_matches_plain_across_removal_rounds() {
        // Tie-free layered graph: guided and plain Algorithm 1 walk the
        // same removal sequence and return the same path.
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let mids: Vec<_> = (0..12).map(|_| g.add_node(())).collect();
        for (idx, &m) in mids.iter().enumerate() {
            let w = 1.0 + idx as f64 * 0.013;
            g.add_edge(s, m, (w, 6.0 - idx as f64 * 0.1));
            g.add_edge(m, t, (w * 1.7, 6.0 - idx as f64 * 0.11));
        }
        let lb = astra_graph::csp::dag_potentials(&g, t, |_, e| e.0, |_, _| 0.0)
            .unwrap()
            .min_weight_to;
        for bound in [1.0, 5.0, 9.0, 11.0, f64::INFINITY] {
            let plain = algorithm1_capped(&g, s, t, bound, 100, |_, e| e.0, |_, e| e.1);
            let guided = algorithm1_guided_capped(
                &g, s, t, bound, 100, &lb, |_, e| e.0, |_, e| e.1,
            );
            match (plain, guided) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.path.weight.to_bits(), q.path.weight.to_bits());
                    assert_eq!(p.path.edges, q.path.edges);
                    assert_eq!(p.edges_removed, q.edges_removed);
                    assert_eq!(p.constraint.to_bits(), q.constraint.to_bits());
                }
                (p, q) => panic!("bound {bound}: {p:?} vs {q:?}"),
            }
        }
    }

    #[test]
    fn terminates_on_dense_graph() {
        // A layered graph with many infeasible fast paths: the loop must
        // strip them all and settle on the feasible slow one.
        let mut g: G = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let mids: Vec<_> = (0..20).map(|_| g.add_node(())).collect();
        for (idx, &m) in mids.iter().enumerate() {
            let fast = 1.0 + idx as f64 * 0.01;
            g.add_edge(s, m, (fast, 10.0));
            g.add_edge(m, t, (fast, 10.0));
        }
        let slow = g.add_node(());
        g.add_edge(s, slow, (50.0, 0.1));
        g.add_edge(slow, t, (50.0, 0.1));
        let sol = algorithm1(&g, s, t, 5.0, w, c).unwrap();
        assert_eq!(sol.path.weight, 100.0);
        // One removal per infeasible path prefix tried.
        assert!(sol.edges_removed >= 20);
    }
}
