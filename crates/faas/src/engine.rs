//! The event-driven execution engine.

use std::sync::Arc;

use astra_model::Platform;
use astra_pricing::{Money, PriceCatalog};
use astra_simcore::{
    EventQueue, FifoTokens, NoiseModel, SimDuration, SimTime, SpanKind, TraceLog,
};
use astra_storage::StorageLedger;
use astra_telemetry::{Clock, SpanRecord, Telemetry};

use crate::ops::{LambdaSpec, Op, StoreKind};
use crate::report::{Invoice, SimReport};

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The platform envelope (tiers, concurrency, timeout, cold start,
    /// network).
    pub platform: Platform,
    /// Prices for billing.
    pub catalog: PriceCatalog,
    /// Coefficient of variation of the multiplicative runtime noise
    /// (0 = deterministic; the model-agreement tests rely on that).
    pub noise_cv: f64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that an invocation crashes at launch (container
    /// failure). Crashed asynchronous invocations are retried, as AWS
    /// does, up to `max_retries` extra attempts.
    pub failure_rate: f64,
    /// Extra attempts after the first (AWS retries async invocations
    /// twice).
    pub max_retries: u32,
    /// Reuse warm containers within the job: a finished function's
    /// container can serve the next invocation at the same memory tier
    /// without a cold start (AWS keeps containers warm between the
    /// phases of a single job). Off by default — the paper-era framework
    /// saw mostly cold starts; the `exp_warm` ablation measures the
    /// difference.
    pub container_reuse: bool,
    /// Observability sink. Disabled by default; [`SimConfig::deterministic`]
    /// snapshots the process-global handle (`astra_telemetry::global()`),
    /// so binaries that install a recorder before building configs get
    /// engine spans and counters with no extra plumbing. Telemetry is
    /// purely observational — enabling it never changes a report bit (see
    /// `astra-telemetry`'s determinism contract).
    pub telemetry: Telemetry,
}

impl SimConfig {
    /// Deterministic (noise-free) simulation of `platform`.
    pub fn deterministic(platform: Platform) -> Self {
        SimConfig {
            platform,
            catalog: PriceCatalog::aws_2020(),
            noise_cv: 0.0,
            seed: 0,
            failure_rate: 0.0,
            max_retries: 2,
            container_reuse: false,
            telemetry: astra_telemetry::global(),
        }
    }

    /// Set the runtime-noise CV and seed.
    pub fn with_noise(mut self, cv: f64, seed: u64) -> Self {
        self.noise_cv = cv;
        self.seed = seed;
        self
    }

    /// Enable failure injection.
    pub fn with_failures(mut self, rate: f64, max_retries: u32) -> Self {
        self.failure_rate = rate;
        self.max_retries = max_retries;
        self
    }

    /// Enable warm-container reuse.
    pub fn with_container_reuse(mut self) -> Self {
        self.container_reuse = true;
        self
    }

    /// Replace the price catalog.
    pub fn with_catalog(mut self, catalog: PriceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Attach an explicit telemetry handle (overriding the process-global
    /// snapshot taken by [`SimConfig::deterministic`]).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Why a simulated run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A function exceeded the platform timeout and was killed.
    Timeout {
        /// The offending invocation.
        lambda: String,
        /// Elapsed handler seconds when the timeout fired.
        elapsed_s: f64,
    },
    /// A function read a key that no completed PUT (or job input)
    /// produced — an orchestration bug.
    MissingObject {
        /// The reading invocation.
        lambda: String,
        /// The missing key.
        key: String,
    },
    /// An invocation used a memory size that is not a platform tier.
    InvalidMemory {
        /// The offending invocation.
        lambda: String,
        /// Its memory request.
        memory_mb: u32,
    },
    /// An invocation crashed on every attempt (initial + retries).
    RetriesExhausted {
        /// The failing invocation.
        lambda: String,
        /// Total attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Timeout { lambda, elapsed_s } => {
                write!(f, "{lambda} timed out after {elapsed_s:.1}s")
            }
            SimError::MissingObject { lambda, key } => {
                write!(f, "{lambda} read missing object {key}")
            }
            SimError::InvalidMemory { lambda, memory_mb } => {
                write!(f, "{lambda} requested invalid memory {memory_mb} MB")
            }
            SimError::RetriesExhausted { lambda, attempts } => {
                write!(f, "{lambda} crashed on all {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrive(usize),
    Start(usize),
    Ready(usize),
    OpDone(usize),
}

struct LambdaState {
    spec: LambdaSpec,
    /// The invocation name as a shared string: cloned into every trace
    /// span and the invoice without copying the bytes.
    name: Arc<str>,
    parent: Option<usize>,
    arrived: SimTime,
    handler_start: SimTime,
    op_idx: usize,
    op_started: SimTime,
    wait_started: SimTime,
    pending_children: usize,
    waiting: bool,
    queued: bool,
    attempts: u32,
    /// Telemetry id of this invocation's span (0 when telemetry is
    /// disabled). Allocated at enqueue time so child phases and child
    /// invocations can parent under it before the span itself is
    /// reported at finish.
    span_id: u64,
}

/// The static span names the engine emits, interned once per simulator.
///
/// `tel_span` fires per op on the hot path; cloning a pre-built
/// `Arc<str>` is a refcount bump, where `Arc::from("get")` would be a
/// fresh allocation plus copy for every span.
struct SpanNames {
    queued: Arc<str>,
    cold_start: Arc<str>,
    retry_cold_start: Arc<str>,
    get: Arc<str>,
    put: Arc<str>,
    compute: Arc<str>,
    spawn: Arc<str>,
    wait_children: Arc<str>,
    invocation: Arc<str>,
}

impl SpanNames {
    fn intern() -> Self {
        SpanNames {
            queued: Arc::from("queued"),
            cold_start: Arc::from("cold_start"),
            retry_cold_start: Arc::from("retry_cold_start"),
            get: Arc::from("get"),
            put: Arc::from("put"),
            compute: Arc::from("compute"),
            spawn: Arc::from("spawn"),
            wait_children: Arc::from("wait_children"),
            invocation: Arc::from("invocation"),
        }
    }
}

/// Reusable per-thread scratch for simulator construction: the event
/// heap, the lifecycle slab, both storage ledgers, the warm-container
/// map, and the interned span names. Everything here is either cleared
/// back to its freshly-constructed state before it re-enters the pool
/// (queue, slab, ledgers, pool map — each documents that its reset is
/// observationally identical to `new()`) or immutable by construction
/// (the interned names), so a checked-out arena can never leak one
/// case's state into the next and batch replays stay bit-deterministic.
///
/// The payoff is on sweep workers: a `SimBatch` thread runs thousands of
/// cases, and without the arena each case pays the queue/slab/ledger
/// growth reallocations and nine `Arc<str>` interning allocations from
/// scratch.
struct SimArena {
    queue: EventQueue<Event>,
    states: Vec<LambdaState>,
    ledger: StorageLedger,
    inter_ledger: StorageLedger,
    warm_pool: std::collections::HashMap<u32, usize>,
    names: SpanNames,
}

impl SimArena {
    fn fresh() -> Self {
        SimArena {
            queue: EventQueue::with_capacity(64),
            states: Vec::with_capacity(64),
            ledger: StorageLedger::new(),
            inter_ledger: StorageLedger::new(),
            warm_pool: std::collections::HashMap::new(),
            names: SpanNames::intern(),
        }
    }
}

thread_local! {
    /// One parked arena per thread. `FaasSim::new` takes it (leaving
    /// `None`), `run()` returns the recycled pieces when the simulation
    /// ends — including on error paths, since sweep workers keep going
    /// after a failed case.
    static ARENA: std::cell::RefCell<Option<SimArena>> = const { std::cell::RefCell::new(None) };
}

/// The simulator. Create one per job run.
///
/// Lifecycle state lives in a slab (`states`, indexed by invocation id);
/// events carry indices, not payloads, so the hot pop/handle/schedule
/// cycle moves no owned data and performs no per-event allocation beyond
/// the queue's amortized growth. The slab, queue, ledgers and interned
/// names come from a per-thread `SimArena` so consecutive runs on one
/// thread (a sweep worker's case loop) reuse their allocations.
pub struct FaasSim {
    config: SimConfig,
    queue: EventQueue<Event>,
    states: Vec<LambdaState>,
    tokens: FifoTokens<usize>,
    noise: NoiseModel,
    /// Persistent (S3) objects: job input and, without an intermediate
    /// store, everything else too.
    ledger: StorageLedger,
    /// Ephemeral objects when the platform has an intermediate store.
    inter_ledger: StorageLedger,
    trace: TraceLog,
    invoices: Vec<Invoice>,
    running: usize,
    peak_running: usize,
    crashes: u64,
    /// Warm containers available per memory tier (container reuse only).
    warm_pool: std::collections::HashMap<u32, usize>,
    warm_starts: u64,
    /// Interned telemetry span names (see [`SpanNames`]).
    names: SpanNames,
    /// `config.telemetry.enabled()`, cached at construction: the config
    /// is immutable once the engine exists, and the flag is consulted on
    /// every event.
    tel_enabled: bool,
    /// Wall stamp shared by every sim-clock span this run emits. Sim
    /// spans live on the simulated timeline; their wall fields are pure
    /// cross-reference metadata (degenerate start == end intervals), so
    /// one `wall_clock_ns()` read at construction replaces one clock
    /// read per span on the hot path.
    wall_anchor: u64,
}

impl FaasSim {
    /// A fresh simulator with `inputs` pre-existing in the object store
    /// (the job's input objects, billed for storage but not for PUTs).
    pub fn new(config: SimConfig, inputs: &[(String, f64)]) -> Self {
        let noise = NoiseModel::new(config.seed, config.noise_cv);
        let tokens = FifoTokens::new(config.platform.max_concurrency as usize);
        let tel_enabled = config.telemetry.enabled();
        let arena = ARENA.with(|slot| slot.borrow_mut().take());
        let reused = arena.is_some();
        let mut arena = arena.unwrap_or_else(SimArena::fresh);
        if tel_enabled {
            config
                .telemetry
                .counter(if reused { "batch.arena.reuse" } else { "batch.arena.alloc" }, 1);
        }
        for (key, size) in inputs {
            arena.ledger.register_preexisting(key.clone(), *size);
        }
        FaasSim {
            config,
            queue: arena.queue,
            states: arena.states,
            tokens,
            noise,
            ledger: arena.ledger,
            inter_ledger: arena.inter_ledger,
            trace: TraceLog::new(),
            invoices: Vec::with_capacity(64),
            running: 0,
            peak_running: 0,
            crashes: 0,
            warm_pool: arena.warm_pool,
            warm_starts: 0,
            names: arena.names,
            tel_enabled,
            wall_anchor: if tel_enabled {
                astra_telemetry::wall_clock_ns()
            } else {
                0
            },
        }
    }

    /// True when ephemeral ops go to a separate intermediate store.
    fn has_intermediate(&self) -> bool {
        self.config.platform.intermediate.is_some()
    }

    /// The ledger an op of `store` kind belongs to.
    fn ledger_for(&mut self, store: StoreKind) -> &mut StorageLedger {
        if store == StoreKind::Ephemeral && self.has_intermediate() {
            &mut self.inter_ledger
        } else {
            &mut self.ledger
        }
    }

    /// Mirror an engine trace interval as a sim-clock telemetry span
    /// parented to invocation `id`'s span. Callers check
    /// `self.tel_enabled` first so the disabled path never allocates the
    /// payload; `name` comes pre-interned from [`SpanNames`] so the hot
    /// path clones a refcount instead of allocating a string.
    fn tel_span(&self, id: usize, name: &Arc<str>, kind: &'static str, start: SimTime, end: SimTime) {
        let tel = &self.config.telemetry;
        let wall = self.wall_anchor;
        let parent = self.states[id].span_id;
        tel.span(SpanRecord {
            track: self.states[id].name.clone(),
            name: Arc::clone(name),
            kind,
            clock: Clock::Sim,
            sim_start_us: start.as_micros(),
            sim_end_us: end.as_micros(),
            wall_start_ns: wall,
            wall_end_ns: wall,
            id: tel.next_span_id(),
            parent: (parent != 0).then_some(parent),
        });
    }

    /// Execute `roots` (invoked at t = 0) to completion.
    pub fn run(mut self, roots: Vec<LambdaSpec>) -> Result<SimReport, SimError> {
        let result = self.run_to_completion(roots);
        self.recycle();
        result
    }

    /// Park the reusable pieces back in this thread's arena for the next
    /// [`FaasSim::new`]. Every piece is cleared to its `new()`-identical
    /// state first; report-bound state (invoices, trace, snapshots) has
    /// already moved out, or is dropped here on the error path.
    fn recycle(mut self) {
        self.queue.clear();
        self.states.clear();
        self.ledger.reset();
        self.inter_ledger.reset();
        self.warm_pool.clear();
        let arena = SimArena {
            queue: self.queue,
            states: self.states,
            ledger: self.ledger,
            inter_ledger: self.inter_ledger,
            warm_pool: self.warm_pool,
            names: self.names,
        };
        ARENA.with(|slot| *slot.borrow_mut() = Some(arena));
    }

    fn run_to_completion(&mut self, roots: Vec<LambdaSpec>) -> Result<SimReport, SimError> {
        self.states.reserve(roots.len());
        self.queue.reserve(roots.len());
        for spec in roots {
            self.enqueue(spec, None)?;
        }
        while let Some((_, event)) = self.queue.pop() {
            self.handle(event)?;
        }
        let now = self.queue.now();
        let makespan = now.since(SimTime::ZERO);
        let snapshot = self.ledger.snapshot(now);
        let inter_snapshot = self.inter_ledger.snapshot(now);
        let storage_cost = self.ledger.bill(now, &self.config.catalog.s3);
        // The intermediate store bills its own request/storage prices
        // plus rent for the job's duration.
        let ephemeral_cost = match &self.config.platform.intermediate {
            None => Money::ZERO,
            Some(store) => {
                store.per_get * inter_snapshot.gets
                    + store.per_put * inter_snapshot.puts
                    + store.storage_cost(inter_snapshot.mb_seconds, 1.0)
                    + store.rental_cost(makespan.as_secs_f64())
            }
        };
        let lambda_cost: Money = self.invoices.iter().map(|i| i.cost).sum();
        let events = self.queue.events_processed();
        let tel = &self.config.telemetry;
        if tel.enabled() {
            tel.counter("engine.events", events);
            tel.counter("engine.heap_sifts", self.queue.heap_sifts());
            tel.counter("engine.interned_names", self.states.len() as u64);
            tel.counter("engine.invocations", self.invoices.len() as u64);
            tel.counter("engine.crashes", self.crashes);
            tel.counter("engine.warm_starts", self.warm_starts);
            tel.counter("engine.queued", self.tokens.total_waits());
            tel.gauge("engine.peak_concurrency", self.peak_running as f64);
        }
        Ok(SimReport {
            makespan,
            lambda_cost,
            storage_cost,
            ephemeral_cost,
            invoices: std::mem::take(&mut self.invoices),
            ledger: snapshot,
            inter_ledger: inter_snapshot,
            trace: std::mem::take(&mut self.trace),
            peak_concurrency: self.peak_running,
            queued_invocations: self.tokens.total_waits(),
            crashes: self.crashes,
            warm_starts: self.warm_starts,
            events,
        })
    }

    fn enqueue(&mut self, spec: LambdaSpec, parent: Option<usize>) -> Result<usize, SimError> {
        if !spec.client && !self.config.platform.is_valid_tier(spec.memory_mb) {
            return Err(SimError::InvalidMemory {
                lambda: spec.name.clone(),
                memory_mb: spec.memory_mb,
            });
        }
        let id = self.states.len();
        let name: Arc<str> = Arc::from(spec.name.as_str());
        self.states.push(LambdaState {
            spec,
            name,
            parent,
            arrived: self.queue.now(),
            handler_start: SimTime::ZERO,
            op_idx: 0,
            op_started: SimTime::ZERO,
            wait_started: SimTime::ZERO,
            pending_children: 0,
            waiting: false,
            queued: false,
            attempts: 0,
            span_id: self.config.telemetry.next_span_id(),
        });
        self.queue.schedule_now(Event::Arrive(id));
        Ok(id)
    }

    fn handle(&mut self, event: Event) -> Result<(), SimError> {
        match event {
            Event::Arrive(id) => {
                if self.states[id].spec.client {
                    self.queue.schedule_now(Event::Ready(id));
                } else if self.tokens.acquire(id) {
                    self.queue.schedule_now(Event::Start(id));
                } else {
                    self.states[id].queued = true;
                }
                Ok(())
            }
            Event::Start(id) => {
                let now = self.queue.now();
                self.running += 1;
                self.peak_running = self.peak_running.max(self.running);
                if self.states[id].queued {
                    let arrived = self.states[id].arrived;
                    let name = self.states[id].name.clone();
                    self.trace
                        .record(name, SpanKind::QueuedConcurrency, arrived, now);
                    if self.tel_enabled {
                        self.tel_span(id, &self.names.queued, "queued", arrived, now);
                    }
                }
                let mem = self.states[id].spec.memory_mb;
                let warm = self.config.container_reuse
                    && self
                        .warm_pool
                        .get(&mem)
                        .is_some_and(|&n| n > 0);
                let cold = if warm {
                    *self.warm_pool.get_mut(&mem).expect("checked") -= 1;
                    self.warm_starts += 1;
                    SimDuration::ZERO
                } else {
                    self.noise
                        .jitter(SimDuration::from_secs_f64(self.config.platform.cold_start_s))
                };
                if cold > SimDuration::ZERO {
                    let name = self.states[id].name.clone();
                    self.trace.record(name, SpanKind::ColdStart, now, now + cold);
                    if self.tel_enabled {
                        self.tel_span(id, &self.names.cold_start, "cold_start", now, now + cold);
                    }
                }
                self.queue.schedule(now + cold, Event::Ready(id));
                Ok(())
            }
            Event::Ready(id) => {
                self.states[id].attempts += 1;
                // Container crash at launch? Retried like AWS async
                // invocations; client drivers never fail.
                if !self.states[id].spec.client
                    && self.config.failure_rate > 0.0
                    && self.noise.uniform() < self.config.failure_rate
                {
                    self.crashes += 1;
                    let attempts = self.states[id].attempts;
                    if attempts > self.config.max_retries {
                        return Err(SimError::RetriesExhausted {
                            lambda: self.states[id].spec.name.clone(),
                            attempts,
                        });
                    }
                    // Restart from the first op after a fresh cold start;
                    // PUT overwrites make the script idempotent.
                    self.states[id].op_idx = 0;
                    let now = self.queue.now();
                    let cold = self
                        .noise
                        .jitter(SimDuration::from_secs_f64(self.config.platform.cold_start_s));
                    if cold > SimDuration::ZERO {
                        let name = self.states[id].name.clone();
                        self.trace.record(name, SpanKind::ColdStart, now, now + cold);
                    }
                    if self.tel_enabled {
                        self.config.telemetry.counter("engine.retries", 1);
                        // Annotated `retry` name so traces distinguish a
                        // first-launch cold start from a retry's.
                        self.tel_span(id, &self.names.retry_cold_start, "cold_start", now, now + cold);
                    }
                    self.queue.schedule(now + cold, Event::Ready(id));
                    return Ok(());
                }
                self.states[id].handler_start = self.queue.now();
                self.advance(id)
            }
            Event::OpDone(id) => {
                let now = self.queue.now();
                let st = &self.states[id];
                let (kind, tel_name, tel_kind) = match &st.spec.ops[st.op_idx] {
                    Op::Get { .. } => (SpanKind::StorageGet, &self.names.get, "storage_get"),
                    Op::Put { .. } => (SpanKind::StoragePut, &self.names.put, "storage_put"),
                    Op::Compute { .. } => (SpanKind::Compute, &self.names.compute, "compute"),
                    Op::Spawn { .. } => (SpanKind::Compute, &self.names.spawn, "compute"),
                };
                let start = st.op_started;
                let name = st.name.clone();
                self.trace.record(name, kind, start, now);
                if self.tel_enabled {
                    self.tel_span(id, tel_name, tel_kind, start, now);
                }
                self.check_timeout(id)?;
                let st = &mut self.states[id];
                match &mut st.spec.ops[st.op_idx] {
                    Op::Put { key, size_mb, store } => {
                        let (key, size, store) = (key.clone(), *size_mb, *store);
                        self.ledger_for(store).record_put(key, size, now);
                        self.states[id].op_idx += 1;
                        self.advance(id)
                    }
                    Op::Spawn { children, wait } => {
                        // The launch latency has elapsed; the children
                        // arrive now. Each spawn fires at most once per
                        // run (crashes restart an invocation *before* its
                        // first op executes), so the children move out of
                        // the script instead of being cloned.
                        let wait = *wait;
                        let children = std::mem::take(children);
                        let n = children.len();
                        self.states.reserve(n);
                        for child in children {
                            self.enqueue(child, Some(id))?;
                        }
                        if wait && n > 0 {
                            let st = &mut self.states[id];
                            st.waiting = true;
                            st.pending_children = n;
                            st.wait_started = now;
                            Ok(())
                        } else {
                            self.states[id].op_idx += 1;
                            self.advance(id)
                        }
                    }
                    Op::Get { .. } | Op::Compute { .. } => {
                        self.states[id].op_idx += 1;
                        self.advance(id)
                    }
                }
            }
        }
    }

    /// Execute the next op of lambda `id`, or finish it.
    ///
    /// Reads the op in place (no clone — `Op::Spawn` payloads can be
    /// whole subtrees); the only allocation on this path is the error
    /// case.
    fn advance(&mut self, id: usize) -> Result<(), SimError> {
        let now = self.queue.now();
        let op_idx = self.states[id].op_idx;
        if op_idx >= self.states[id].spec.ops.len() {
            return self.finish(id);
        }
        self.states[id].op_started = now;
        let has_inter = self.config.platform.intermediate.is_some();
        let st = &self.states[id];
        let mem = st.spec.memory_mb;
        let secs = match &st.spec.ops[op_idx] {
            Op::Get { key, store } => {
                let use_inter = *store == StoreKind::Ephemeral && has_inter;
                let ledger = if use_inter {
                    &mut self.inter_ledger
                } else {
                    &mut self.ledger
                };
                let Some(size) = ledger.size_of(key) else {
                    return Err(SimError::MissingObject {
                        lambda: st.spec.name.clone(),
                        key: key.clone(),
                    });
                };
                ledger.record_get(size);
                if use_inter {
                    self.config.platform.inter_get_secs(mem, size)
                } else {
                    self.config.platform.get_secs(mem, size)
                }
            }
            Op::Put { size_mb, store, .. } => {
                if *store == StoreKind::Ephemeral && has_inter {
                    self.config.platform.inter_put_secs(mem, *size_mb)
                } else {
                    self.config.platform.put_secs(mem, *size_mb)
                }
            }
            Op::Compute { secs_at_128 } => {
                secs_at_128 / self.config.platform.speed_factor(mem)
            }
            // Launching a batch takes the platform's orchestration
            // overhead plus one invoke call per child; children arrive
            // when it completes (handled at OpDone).
            Op::Spawn { children, .. } => self.config.platform.spawn_secs(children.len()),
        };
        let d = self.noise.jitter(SimDuration::from_secs_f64(secs));
        self.queue.schedule(now + d, Event::OpDone(id));
        Ok(())
    }

    fn finish(&mut self, id: usize) -> Result<(), SimError> {
        let now = self.queue.now();
        self.check_timeout(id)?;
        if self.tel_enabled {
            // The invocation span covers arrival → finish (so queueing,
            // cold starts and every op nest inside it), unlike the
            // billing-oriented TraceLog span which starts at the handler.
            // Clients get one too: they are the roots of the spawn tree.
            let st = &self.states[id];
            let parent = st
                .parent
                .map(|p| self.states[p].span_id)
                .filter(|&p| p != 0);
            let wall = self.wall_anchor;
            self.config.telemetry.span(SpanRecord {
                track: st.name.clone(),
                name: Arc::clone(&self.names.invocation),
                kind: "invocation",
                clock: Clock::Sim,
                sim_start_us: st.arrived.as_micros(),
                sim_end_us: now.as_micros(),
                wall_start_ns: wall,
                wall_end_ns: wall,
                id: st.span_id,
                parent,
            });
        }
        if !self.states[id].spec.client {
            self.running -= 1;
            if self.config.container_reuse {
                *self
                    .warm_pool
                    .entry(self.states[id].spec.memory_mb)
                    .or_insert(0) += 1;
            }
            self.bill(id, now);
            // Hand the concurrency token to the oldest queued arrival.
            if let Some(waiter) = self.tokens.release() {
                self.queue.schedule_now(Event::Start(waiter));
            }
        }
        // Wake a waiting parent once its last child finishes.
        if let Some(parent) = self.states[id].parent {
            if self.states[parent].waiting {
                self.states[parent].pending_children -= 1;
                if self.states[parent].pending_children == 0 {
                    let st = &mut self.states[parent];
                    st.waiting = false;
                    st.op_idx += 1;
                    let wait_start = st.wait_started;
                    let name = st.name.clone();
                    self.trace
                        .record(name, SpanKind::WaitChildren, wait_start, now);
                    if self.tel_enabled {
                        self.tel_span(parent, &self.names.wait_children, "wait_children", wait_start, now);
                    }
                    self.check_timeout(parent)?;
                    return self.advance(parent);
                }
            }
        }
        Ok(())
    }

    fn bill(&mut self, id: usize, now: SimTime) {
        let st = &self.states[id];
        let started = st.handler_start;
        let duration_us = now.since(started).as_micros();
        let billed_us = self.config.catalog.lambda.billed_duration_us(duration_us);
        let cost = self
            .config
            .catalog
            .lambda
            .invocation_cost(st.spec.memory_mb, duration_us);
        self.trace
            .record(st.name.clone(), SpanKind::Invocation, started, now);
        self.invoices.push(Invoice {
            name: st.name.clone(),
            memory_mb: st.spec.memory_mb,
            started,
            finished: now,
            billed_us,
            cost,
        });
    }

    fn check_timeout(&self, id: usize) -> Result<(), SimError> {
        let st = &self.states[id];
        if st.spec.client {
            return Ok(());
        }
        let elapsed = self.queue.now().since(st.handler_start).as_secs_f64();
        if elapsed > self.config.platform.timeout_s {
            return Err(SimError::Timeout {
                lambda: st.spec.name.clone(),
                elapsed_s: elapsed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        let mut p = Platform::paper_literal(10.0);
        p.cold_start_s = 0.0;
        p
    }

    fn run_one(ops: Vec<Op>, inputs: &[(String, f64)]) -> SimReport {
        let sim = FaasSim::new(SimConfig::deterministic(platform()), inputs);
        sim.run(vec![LambdaSpec::new("f", 128, ops)]).unwrap()
    }

    #[test]
    fn compute_duration_scales_with_memory() {
        let sim = FaasSim::new(SimConfig::deterministic(platform()), &[]);
        let report = sim
            .run(vec![
                LambdaSpec::new("slow", 128, vec![Op::Compute { secs_at_128: 10.0 }]),
                LambdaSpec::new("fast", 1280, vec![Op::Compute { secs_at_128: 10.0 }]),
            ])
            .unwrap();
        assert_eq!(report.invoice("slow").unwrap().duration(), SimDuration::from_secs(10));
        assert_eq!(report.invoice("fast").unwrap().duration(), SimDuration::from_secs(1));
        assert_eq!(report.jct_s(), 10.0);
    }

    #[test]
    fn get_and_put_follow_the_transfer_model() {
        // 10 MB/s bandwidth: GET 20 MB = 2 s, PUT 5 MB = 0.5 s.
        let report = run_one(
            vec![
                Op::Get {
                    key: "in".into(),
                    store: StoreKind::Persistent,
                },
                Op::Put {
                    key: "out".into(),
                    size_mb: 5.0,
                    store: StoreKind::Persistent,
                },
            ],
            &[("in".into(), 20.0)],
        );
        assert_eq!(report.jct_s(), 2.5);
        assert_eq!(report.ledger.gets, 1);
        assert_eq!(report.ledger.puts, 1);
        assert_eq!(report.ledger.read_mb, 20.0);
        assert_eq!(report.ledger.written_mb, 5.0);
    }

    #[test]
    fn missing_object_is_an_orchestration_error() {
        let sim = FaasSim::new(SimConfig::deterministic(platform()), &[]);
        let err = sim
            .run(vec![LambdaSpec::new(
                "f",
                128,
                vec![Op::Get {
                    key: "ghost".into(),
                    store: StoreKind::Persistent,
                }],
            )])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::MissingObject {
                lambda: "f".into(),
                key: "ghost".into()
            }
        );
    }

    #[test]
    fn concurrency_cap_serialises_execution() {
        let mut p = platform();
        p.max_concurrency = 1;
        let sim = FaasSim::new(SimConfig::deterministic(p), &[]);
        let report = sim
            .run(vec![
                LambdaSpec::new("a", 128, vec![Op::Compute { secs_at_128: 5.0 }]),
                LambdaSpec::new("b", 128, vec![Op::Compute { secs_at_128: 5.0 }]),
            ])
            .unwrap();
        assert_eq!(report.jct_s(), 10.0);
        assert_eq!(report.peak_concurrency, 1);
        assert_eq!(report.queued_invocations, 1);
        // The queued lambda's invoice starts when the first finishes.
        assert_eq!(
            report.invoice("b").unwrap().started,
            SimTime::from_micros(5_000_000)
        );
    }

    #[test]
    fn spawn_wait_blocks_until_slowest_child() {
        let children = vec![
            LambdaSpec::new("c1", 128, vec![Op::Compute { secs_at_128: 1.0 }]),
            LambdaSpec::new("c2", 128, vec![Op::Compute { secs_at_128: 7.0 }]),
        ];
        let report = run_one(
            vec![
                Op::Spawn {
                    children,
                    wait: true,
                },
                Op::Compute { secs_at_128: 1.0 },
            ],
            &[],
        );
        // Parent: waits 7 s for c2, then computes 1 s.
        assert_eq!(report.jct_s(), 8.0);
        assert_eq!(report.invoice("f").unwrap().duration(), SimDuration::from_secs(8));
    }

    #[test]
    fn fire_and_forget_lets_parent_exit_early() {
        let children = vec![LambdaSpec::new(
            "c",
            128,
            vec![Op::Compute { secs_at_128: 10.0 }],
        )];
        let report = run_one(
            vec![Op::Spawn {
                children,
                wait: false,
            }],
            &[],
        );
        // Parent exits immediately; job completes when the child does.
        assert_eq!(report.invoice("f").unwrap().duration(), SimDuration::ZERO);
        assert_eq!(report.jct_s(), 10.0);
    }

    #[test]
    fn timeout_kills_the_run() {
        let mut p = platform();
        p.timeout_s = 5.0;
        let sim = FaasSim::new(SimConfig::deterministic(p), &[]);
        let err = sim
            .run(vec![LambdaSpec::new(
                "f",
                128,
                vec![Op::Compute { secs_at_128: 6.0 }],
            )])
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
    }

    #[test]
    fn billing_matches_the_price_sheet() {
        let report = run_one(vec![Op::Compute { secs_at_128: 1.0 }], &[]);
        let inv = report.invoice("f").unwrap();
        // 1 s at 128 MB, 100 ms granularity: billed exactly 1 s.
        assert_eq!(inv.billed_us, 1_000_000);
        let expected = PriceCatalog::aws_2020()
            .lambda
            .invocation_cost(128, 1_000_000);
        assert_eq!(inv.cost, expected);
        assert_eq!(report.lambda_cost, expected);
    }

    #[test]
    fn cold_start_delays_handler_but_is_not_billed() {
        let mut p = platform();
        p.cold_start_s = 0.5;
        let sim = FaasSim::new(SimConfig::deterministic(p), &[]);
        let report = sim
            .run(vec![LambdaSpec::new(
                "f",
                128,
                vec![Op::Compute { secs_at_128: 1.0 }],
            )])
            .unwrap();
        let inv = report.invoice("f").unwrap();
        assert_eq!(inv.started, SimTime::from_micros(500_000));
        assert_eq!(inv.duration(), SimDuration::from_secs(1));
        assert_eq!(report.jct_s(), 1.5);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = SimConfig {
            noise_cv: 0.3,
            seed: 42,
            ..SimConfig::deterministic(platform())
        };
        let specs = vec![LambdaSpec::new(
            "f",
            128,
            vec![
                Op::Compute { secs_at_128: 2.0 },
                Op::Put {
                    key: "o".into(),
                    size_mb: 1.0,
                    store: StoreKind::Persistent,
                },
            ],
        )];
        let a = FaasSim::new(cfg.clone(), &[]).run(specs.clone()).unwrap();
        let b = FaasSim::new(cfg, &[]).run(specs).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_cost(), b.total_cost());
    }

    #[test]
    fn noise_perturbs_durations() {
        let base = SimConfig::deterministic(platform());
        let noisy = SimConfig {
            noise_cv: 0.3,
            seed: 7,
            ..base.clone()
        };
        let specs = vec![LambdaSpec::new(
            "f",
            128,
            vec![Op::Compute { secs_at_128: 2.0 }],
        )];
        let a = FaasSim::new(base, &[]).run(specs.clone()).unwrap();
        let b = FaasSim::new(noisy, &[]).run(specs).unwrap();
        assert_ne!(a.makespan, b.makespan);
    }

    #[test]
    fn put_then_get_within_one_run() {
        // Dataflow through the ledger: f1 writes, f2 (spawned after) reads.
        let child = LambdaSpec::new(
            "reader",
            128,
            vec![Op::Get {
                key: "x".into(),
                store: StoreKind::Persistent,
            }],
        );
        let report = run_one(
            vec![
                Op::Put {
                    key: "x".into(),
                    size_mb: 10.0,
                    store: StoreKind::Persistent,
                },
                Op::Spawn {
                    children: vec![child],
                    wait: true,
                },
            ],
            &[],
        );
        // PUT 1 s, then child GET 1 s.
        assert_eq!(report.jct_s(), 2.0);
    }

    #[test]
    fn failures_are_retried_and_job_completes() {
        let cfg = SimConfig {
            failure_rate: 0.3,
            seed: 9,
            ..SimConfig::deterministic(platform())
        };
        let specs: Vec<LambdaSpec> = (0..20)
            .map(|i| LambdaSpec::new(format!("f{i}"), 128, vec![Op::Compute { secs_at_128: 1.0 }]))
            .collect();
        let report = FaasSim::new(cfg, &[]).run(specs).unwrap();
        // With 30% failure over 20 lambdas, some crashes are near-certain.
        assert!(report.crashes > 0, "expected injected crashes");
        // Every lambda still completed exactly once.
        assert_eq!(report.invocation_count(), 20);
    }

    #[test]
    fn crash_restarts_the_script_idempotently() {
        // A put-then-compute lambda that crashes must redo the put, and
        // the ledger must count both attempts' requests but only one
        // live object.
        let cfg = SimConfig {
            failure_rate: 0.5,
            max_retries: 50,
            seed: 3,
            ..SimConfig::deterministic(platform())
        };
        let spec = LambdaSpec::new(
            "f",
            128,
            vec![
                Op::Put {
                    key: "x".into(),
                    size_mb: 1.0,
                    store: StoreKind::Persistent,
                },
                Op::Compute { secs_at_128: 1.0 },
            ],
        );
        let report = FaasSim::new(cfg, &[]).run(vec![spec]).unwrap();
        assert_eq!(report.invocation_count(), 1);
        // puts >= 1; if a crash happened after the put, it re-ran.
        assert!(report.ledger.puts >= 1);
    }

    #[test]
    fn exhausted_retries_fail_the_run() {
        let cfg = SimConfig {
            failure_rate: 1.0, // always crashes
            max_retries: 2,
            seed: 1,
            ..SimConfig::deterministic(platform())
        };
        let spec = LambdaSpec::new("doomed", 128, vec![Op::Compute { secs_at_128: 1.0 }]);
        let err = FaasSim::new(cfg, &[]).run(vec![spec]).unwrap_err();
        assert_eq!(
            err,
            SimError::RetriesExhausted {
                lambda: "doomed".into(),
                attempts: 3
            }
        );
    }

    #[test]
    fn client_drivers_never_crash() {
        let cfg = SimConfig {
            failure_rate: 1.0,
            max_retries: 0,
            seed: 1,
            ..SimConfig::deterministic(platform())
        };
        // Driver spawning nothing: would crash instantly if eligible.
        let driver = LambdaSpec::client_driver("d", vec![]);
        let report = FaasSim::new(cfg, &[]).run(vec![driver]).unwrap();
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn warm_containers_skip_cold_starts() {
        let mut p = platform();
        p.cold_start_s = 1.0;
        // Two sequential waves at the same tier: parent spawns child
        // after finishing, so the child can reuse the parent's container.
        let child = LambdaSpec::new("second", 128, vec![Op::Compute { secs_at_128: 1.0 }]);
        let spec = LambdaSpec::new(
            "first",
            128,
            vec![
                Op::Compute { secs_at_128: 1.0 },
                Op::Spawn {
                    children: vec![child],
                    wait: false,
                },
            ],
        );
        let cold_only = FaasSim::new(SimConfig::deterministic(p.clone()), &[])
            .run(vec![spec.clone()])
            .unwrap();
        let reused = FaasSim::new(
            SimConfig::deterministic(p).with_container_reuse(),
            &[],
        )
        .run(vec![spec])
        .unwrap();
        assert_eq!(cold_only.warm_starts, 0);
        assert_eq!(reused.warm_starts, 1);
        // One cold start saved = 1 s faster.
        assert!((cold_only.jct_s() - reused.jct_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_pool_is_per_memory_tier() {
        let mut p = platform();
        p.cold_start_s = 1.0;
        // The second lambda runs at a different tier: no reuse possible.
        let child = LambdaSpec::new("second", 1024, vec![Op::Compute { secs_at_128: 1.0 }]);
        let spec = LambdaSpec::new(
            "first",
            128,
            vec![
                Op::Compute { secs_at_128: 1.0 },
                Op::Spawn {
                    children: vec![child],
                    wait: false,
                },
            ],
        );
        let report = FaasSim::new(
            SimConfig::deterministic(p).with_container_reuse(),
            &[],
        )
        .run(vec![spec])
        .unwrap();
        assert_eq!(report.warm_starts, 0);
    }

    #[test]
    fn telemetry_spans_nest_under_invocations_and_change_nothing() {
        let mut p = platform();
        p.cold_start_s = 0.5;
        let spec = LambdaSpec::new(
            "f",
            128,
            vec![
                Op::Get {
                    key: "in".into(),
                    store: StoreKind::Persistent,
                },
                Op::Compute { secs_at_128: 1.0 },
            ],
        );
        let inputs = [("in".to_string(), 20.0)];
        let plain = FaasSim::new(SimConfig::deterministic(p.clone()), &inputs)
            .run(vec![spec.clone()])
            .unwrap();
        let (tel, rec) = astra_telemetry::sinks::in_memory();
        let traced = FaasSim::new(SimConfig::deterministic(p).with_telemetry(tel), &inputs)
            .run(vec![spec])
            .unwrap();
        // Observational only: the report is bit-identical.
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.invoices, traced.invoices);
        assert_eq!(plain.events, traced.events);
        // Structure: one invocation span; phases parent under it.
        let spans = rec.spans();
        let inv: Vec<_> = spans.iter().filter(|s| s.kind == "invocation").collect();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].sim_start_us, 0);
        assert_eq!(inv[0].sim_end_us, traced.makespan.as_micros());
        for s in spans.iter().filter(|s| s.kind != "invocation") {
            assert_eq!(s.parent, Some(inv[0].id), "{} must nest", s.name);
        }
        let kinds: Vec<&str> = spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&"cold_start"));
        assert!(kinds.contains(&"storage_get"));
        assert!(kinds.contains(&"compute"));
        assert_eq!(rec.counter_value("engine.events"), traced.events);
        assert_eq!(rec.counter_value("engine.invocations"), 1);
    }

    #[test]
    fn retries_are_counted_and_annotated() {
        let cfg = SimConfig {
            failure_rate: 0.5,
            max_retries: 50,
            seed: 3,
            ..SimConfig::deterministic(platform())
        };
        let (tel, rec) = astra_telemetry::sinks::in_memory();
        let specs: Vec<LambdaSpec> = (0..20)
            .map(|i| LambdaSpec::new(format!("f{i}"), 128, vec![Op::Compute { secs_at_128: 1.0 }]))
            .collect();
        let report = FaasSim::new(cfg.with_telemetry(tel), &[]).run(specs).unwrap();
        assert!(report.crashes > 0);
        assert_eq!(rec.counter_value("engine.retries"), report.crashes);
        assert_eq!(rec.counter_value("engine.crashes"), report.crashes);
        let retry_spans = rec
            .spans()
            .iter()
            .filter(|s| &*s.name == "retry_cold_start")
            .count();
        assert_eq!(retry_spans as u64, report.crashes);
    }

    #[test]
    fn arena_recycles_across_runs_and_error_paths() {
        let (tel, rec) = astra_telemetry::sinks::in_memory();
        let cfg = || SimConfig::deterministic(platform()).with_telemetry(tel.clone());
        let specs = || vec![LambdaSpec::new("f", 128, vec![Op::Compute { secs_at_128: 1.0 }])];
        let a = FaasSim::new(cfg(), &[]).run(specs()).unwrap();
        let b = FaasSim::new(cfg(), &[]).run(specs()).unwrap();
        // Reused scratch leaks nothing: the second report is identical.
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.invoices, b.invoices);
        assert_eq!(a.events, b.events);
        assert_eq!(a.ledger, b.ledger);
        // A failing run still parks its arena for the next case...
        let err = FaasSim::new(cfg(), &[]).run(vec![LambdaSpec::new("t", 128, vec![])]);
        assert!(err.is_ok(), "setup");
        let failed = FaasSim::new(cfg(), &[]).run(vec![LambdaSpec::new("bad", 100, vec![])]);
        assert!(failed.is_err());
        let c = FaasSim::new(cfg(), &[]).run(specs()).unwrap();
        assert_eq!(a.makespan, c.makespan);
        // ...so on this fresh test thread, exactly one construction
        // allocated and every later one reused.
        assert_eq!(rec.counter_value("batch.arena.alloc"), 1);
        assert_eq!(rec.counter_value("batch.arena.reuse"), 4);
    }

    #[test]
    fn invalid_memory_rejected() {
        let sim = FaasSim::new(SimConfig::deterministic(platform()), &[]);
        let err = sim
            .run(vec![LambdaSpec::new("f", 100, vec![])])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidMemory { memory_mb: 100, .. }));
    }
}
