//! Order-preserving parallel execution of independent simulator runs.
//!
//! Every evaluation number in this repository comes from Monte-Carlo
//! sweeps over `(roots, config, seed)` combinations, and each run is an
//! isolated [`FaasSim`] with its own seeded RNG — so a batch of runs is
//! embarrassingly parallel *and* bit-deterministic: fanning it over
//! threads changes wall-clock only, never a single report bit. The
//! order-preserving collection below is what turns that property into an
//! API guarantee: `SimBatch::run()` returns results in push order, and
//! each result is byte-identical to what a serial `for` loop over the
//! same runs would produce at any `RAYON_NUM_THREADS`.

use rayon::prelude::*;

use crate::engine::{FaasSim, SimConfig, SimError};
use crate::ops::LambdaSpec;
use crate::report::SimReport;

/// One simulator run: a config plus the root invocations and
/// pre-existing input objects.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Engine parameters (platform, noise CV, seed, …).
    pub config: SimConfig,
    /// Root invocations submitted at t = 0.
    pub roots: Vec<LambdaSpec>,
    /// `(key, size_mb)` objects pre-existing in the persistent store.
    pub inputs: Vec<(String, f64)>,
}

/// A set of independent simulator runs executed across all cores.
///
/// ```
/// # use astra_faas::{SimBatch, SimConfig, LambdaSpec, Op};
/// # use astra_model::Platform;
/// let mut batch = SimBatch::new();
/// for seed in 0..4 {
///     let config = SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.1, seed);
///     let roots = vec![LambdaSpec::new("f", 128, vec![Op::Compute { secs_at_128: 1.0 }])];
///     batch.push(config, roots, Vec::new());
/// }
/// let reports = batch.run();
/// assert_eq!(reports.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct SimBatch {
    runs: Vec<BatchRun>,
}

impl SimBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `cap` runs.
    pub fn with_capacity(cap: usize) -> Self {
        SimBatch {
            runs: Vec::with_capacity(cap),
        }
    }

    /// Append one run; returns its index in the results vector.
    pub fn push(
        &mut self,
        config: SimConfig,
        roots: Vec<LambdaSpec>,
        inputs: Vec<(String, f64)>,
    ) -> usize {
        self.runs.push(BatchRun {
            config,
            roots,
            inputs,
        });
        self.runs.len() - 1
    }

    /// Number of runs queued.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are queued.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Execute every run in parallel; results come back in push order and
    /// are bit-identical to a serial loop at any thread count.
    ///
    /// Cases fan out with a one-case minimum chunk (each simulator run
    /// dwarfs a thread hand-off), enumerated by the iterator adapter
    /// rather than a hand-rolled `(index, run)` collect — under real
    /// rayon the pairing never materializes at all.
    pub fn run(self) -> Vec<Result<SimReport, SimError>> {
        self.runs
            .into_par_iter()
            .enumerate()
            .with_min_len(1)
            .map(|(index, r)| run_case(index, r))
            .collect()
    }

    /// Reference implementation: the serial loop the parallel `run()` is
    /// tested against.
    pub fn run_serial(self) -> Vec<Result<SimReport, SimError>> {
        self.runs
            .into_iter()
            .enumerate()
            .map(|(index, r)| run_case(index, r))
            .collect()
    }
}

/// Execute one batch case, wrapped (when telemetry is enabled) in a
/// wall-clock span whose track names the executing worker thread — the
/// Chrome trace then shows how the sweep was scheduled across cores.
/// Thread attribution is wall-clock metadata only; the report itself is
/// a pure function of the run (the determinism tests enforce this).
fn run_case(index: usize, r: BatchRun) -> Result<SimReport, SimError> {
    let tel = r.config.telemetry.clone();
    let _span = if tel.enabled() {
        let track = format!("sweep-worker-{:?}", std::thread::current().id());
        Some(tel.wall_span(track, format!("case-{index}"), "batch_case"))
    } else {
        None
    };
    let result = FaasSim::new(r.config, &r.inputs).run(r.roots);
    if tel.enabled() {
        tel.counter("batch.cases", 1);
        if result.is_err() {
            tel.counter("batch.failed_cases", 1);
        }
    }
    result
}

/// Derive the seed for replication `index` of a sweep keyed by `base`.
///
/// SplitMix64 finalization over `base ⊕ golden-ratio·index`: replications
/// get well-separated `StdRng` streams (no overlapping low-entropy seeds
/// like `base`, `base+1`, …), and the derivation is a pure function of
/// `(base, index)` — independent of which thread executes the run, which
/// is the other half of the parallel-sweep determinism guarantee (see
/// DESIGN.md, "Seed derivation for parallel replications").
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use astra_model::Platform;

    fn one_run(seed: u64) -> BatchRun {
        let mut platform = Platform::paper_literal(10.0);
        platform.cold_start_s = 0.0;
        BatchRun {
            config: SimConfig::deterministic(platform).with_noise(0.2, seed),
            roots: vec![LambdaSpec::new(
                format!("f{seed}"),
                128,
                vec![
                    Op::Compute { secs_at_128: 1.0 },
                    Op::Put {
                        key: "out".into(),
                        size_mb: 1.0,
                        store: crate::StoreKind::Persistent,
                    },
                ],
            )],
            inputs: Vec::new(),
        }
    }

    #[test]
    fn parallel_batch_matches_serial_loop() {
        let runs: Vec<BatchRun> = (0..8).map(one_run).collect();
        let mut parallel = SimBatch::new();
        let mut serial = SimBatch::new();
        for r in &runs {
            parallel.push(r.config.clone(), r.roots.clone(), r.inputs.clone());
            serial.push(r.config.clone(), r.roots.clone(), r.inputs.clone());
        }
        let par = parallel.run();
        let ser = serial.run_serial();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.makespan, s.makespan);
            assert_eq!(p.total_cost(), s.total_cost());
            assert_eq!(p.invoices, s.invoices);
            assert_eq!(p.events, s.events);
        }
    }

    #[test]
    fn results_come_back_in_push_order() {
        let mut batch = SimBatch::with_capacity(6);
        for seed in 0..6u64 {
            batch.push(
                one_run(seed).config,
                vec![LambdaSpec::new(
                    format!("f{seed}"),
                    128,
                    vec![Op::Compute { secs_at_128: 1.0 }],
                )],
                Vec::new(),
            );
        }
        let reports = batch.run();
        for (i, r) in reports.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert!(r.invoice(&format!("f{i}")).is_some(), "run {i} out of order");
        }
    }

    #[test]
    fn errors_stay_at_their_index() {
        let mut batch = SimBatch::new();
        batch.push(one_run(0).config, one_run(0).roots, Vec::new());
        // Invalid memory tier: fails fast, result must stay at index 1.
        batch.push(
            one_run(0).config,
            vec![LambdaSpec::new("bad", 100, vec![])],
            Vec::new(),
        );
        let reports = batch.run();
        assert!(reports[0].is_ok());
        assert!(matches!(
            reports[1],
            Err(SimError::InvalidMemory { memory_mb: 100, .. })
        ));
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 11, u64::MAX] {
            for i in 0..100 {
                assert!(seen.insert(derive_seed(base, i)), "collision at {base}/{i}");
                assert_eq!(derive_seed(base, i), derive_seed(base, i), "stability");
            }
        }
    }
}
