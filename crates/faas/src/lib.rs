#![warn(missing_docs)]

//! A discrete-event AWS-Lambda-like FaaS platform simulator.
//!
//! This is the substrate substituting for the paper's real AWS Lambda
//! deployment (see DESIGN.md). A *function invocation* is a script of
//! [`Op`]s — object-store GETs/PUTs, compute bursts, and child-invocation
//! barriers — executed over simulated time with:
//!
//! * **memory-proportional CPU** (saturating at the platform's vCPU
//!   ceiling, reproducing the paper's Fig. 6 plateau past ~1.5 GB);
//! * **cold starts** on every container launch;
//! * the **account concurrency limit** with FIFO admission (AWS's 1000);
//! * the **per-function timeout** (900 s) — exceeding it fails the run;
//! * **stochastic runtime noise** (seeded lognormal, configurable CV);
//! * exact **billing**: per-invocation fee plus GB-seconds rounded up to
//!   the billing granularity, and an S3 ledger for request/storage
//!   charges.
//!
//! The simulator also *validates dataflow*: a GET of a key that no
//! completed PUT produced is an orchestration bug and aborts the run.
//!
//! `astra-mapreduce` compiles an execution plan into these scripts; the
//! experiment harness measures makespans and bills from the resulting
//! [`SimReport`]s.

pub mod batch;
pub mod engine;
pub mod ops;
pub mod report;

pub use batch::{derive_seed, BatchRun, SimBatch};
pub use engine::{FaasSim, SimConfig, SimError};
pub use ops::{LambdaSpec, Op, StoreKind};
pub use report::{Invoice, PhaseBreakdown, SimReport, StagePhases};
