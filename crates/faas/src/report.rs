//! Run results: per-invocation invoices and the aggregate report.

use std::sync::Arc;

use astra_pricing::{Money, PriceCatalog};
use astra_simcore::{SimDuration, SimTime, TraceLog};
use astra_storage::LedgerSnapshot;

/// The bill for one function invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invoice {
    /// Invocation name. Shared with the engine's trace spans, so billing
    /// an invocation does not copy its name.
    pub name: Arc<str>,
    /// Memory tier (MB).
    pub memory_mb: u32,
    /// When the handler started (after cold start).
    pub started: SimTime,
    /// When the handler finished.
    pub finished: SimTime,
    /// Billed duration in microseconds (rounded up to the billing
    /// granularity).
    pub billed_us: u64,
    /// Invocation fee + runtime charge.
    pub cost: Money,
}

impl Invoice {
    /// Raw handler duration (pre-rounding).
    pub fn duration(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Aggregate result of one simulated job run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Time from submission to the last event (job completion time).
    pub makespan: SimDuration,
    /// Sum of all lambda invoices.
    pub lambda_cost: Money,
    /// Persistent object-store (S3) bill (requests + storage integral).
    pub storage_cost: Money,
    /// Intermediate-store bill (requests + storage + rental); zero when
    /// no intermediate store is configured.
    pub ephemeral_cost: Money,
    /// Per-invocation invoices, in finish order.
    pub invoices: Vec<Invoice>,
    /// Persistent-store accounting snapshot at completion.
    pub ledger: LedgerSnapshot,
    /// Intermediate-store accounting snapshot (all zero without one).
    pub inter_ledger: LedgerSnapshot,
    /// Span trace (Gantt source for the Fig. 3 timelines).
    pub trace: TraceLog,
    /// Highest number of concurrently running lambdas observed.
    pub peak_concurrency: usize,
    /// Number of invocations that had to queue behind the concurrency cap.
    pub queued_invocations: u64,
    /// Injected container crashes that were retried.
    pub crashes: u64,
    /// Invocations served by a warm container (container reuse only).
    pub warm_starts: u64,
    /// Total discrete events the engine processed for this run (the
    /// denominator of the events/sec throughput benches).
    pub events: u64,
}

impl SimReport {
    /// Total bill: lambda + persistent storage + intermediate store.
    pub fn total_cost(&self) -> Money {
        self.lambda_cost + self.storage_cost + self.ephemeral_cost
    }

    /// Job completion time in seconds.
    pub fn jct_s(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Invoice lookup by name.
    pub fn invoice(&self, name: &str) -> Option<&Invoice> {
        self.invoices.iter().find(|i| &*i.name == name)
    }

    /// Number of invocations.
    pub fn invocation_count(&self) -> usize {
        self.invoices.len()
    }

    /// Recompute the lambda bill from the invoices under a different
    /// catalog (used by pricing what-if ablations).
    pub fn reprice_lambdas(&self, catalog: &PriceCatalog) -> Money {
        self.invoices
            .iter()
            .map(|i| catalog.lambda.invocation_cost(i.memory_mb, i.duration().as_micros()))
            .sum()
    }
}
