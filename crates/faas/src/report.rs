//! Run results: per-invocation invoices and the aggregate report.

use std::collections::BTreeMap;
use std::sync::Arc;

use astra_pricing::{Money, PriceCatalog};
use astra_simcore::{SimDuration, SimTime, SpanKind, TraceLog};
use astra_storage::LedgerSnapshot;

/// The bill for one function invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invoice {
    /// Invocation name. Shared with the engine's trace spans, so billing
    /// an invocation does not copy its name.
    pub name: Arc<str>,
    /// Memory tier (MB).
    pub memory_mb: u32,
    /// When the handler started (after cold start).
    pub started: SimTime,
    /// When the handler finished.
    pub finished: SimTime,
    /// Billed duration in microseconds (rounded up to the billing
    /// granularity).
    pub billed_us: u64,
    /// Invocation fee + runtime charge.
    pub cost: Money,
}

impl Invoice {
    /// Raw handler duration (pre-rounding).
    pub fn duration(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Aggregate result of one simulated job run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Time from submission to the last event (job completion time).
    pub makespan: SimDuration,
    /// Sum of all lambda invoices.
    pub lambda_cost: Money,
    /// Persistent object-store (S3) bill (requests + storage integral).
    pub storage_cost: Money,
    /// Intermediate-store bill (requests + storage + rental); zero when
    /// no intermediate store is configured.
    pub ephemeral_cost: Money,
    /// Per-invocation invoices, in finish order.
    pub invoices: Vec<Invoice>,
    /// Persistent-store accounting snapshot at completion.
    pub ledger: LedgerSnapshot,
    /// Intermediate-store accounting snapshot (all zero without one).
    pub inter_ledger: LedgerSnapshot,
    /// Span trace (Gantt source for the Fig. 3 timelines).
    pub trace: TraceLog,
    /// Highest number of concurrently running lambdas observed.
    pub peak_concurrency: usize,
    /// Number of invocations that had to queue behind the concurrency cap.
    pub queued_invocations: u64,
    /// Injected container crashes that were retried.
    pub crashes: u64,
    /// Invocations served by a warm container (container reuse only).
    pub warm_starts: u64,
    /// Total discrete events the engine processed for this run (the
    /// denominator of the events/sec throughput benches).
    pub events: u64,
}

impl SimReport {
    /// Total bill: lambda + persistent storage + intermediate store.
    pub fn total_cost(&self) -> Money {
        self.lambda_cost + self.storage_cost + self.ephemeral_cost
    }

    /// Job completion time in seconds.
    pub fn jct_s(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Invoice lookup by name.
    pub fn invoice(&self, name: &str) -> Option<&Invoice> {
        self.invoices.iter().find(|i| &*i.name == name)
    }

    /// Number of invocations.
    pub fn invocation_count(&self) -> usize {
        self.invoices.len()
    }

    /// Recompute the lambda bill from the invoices under a different
    /// catalog (used by pricing what-if ablations).
    pub fn reprice_lambdas(&self, catalog: &PriceCatalog) -> Money {
        self.invoices
            .iter()
            .map(|i| catalog.lambda.invocation_cost(i.memory_mb, i.duration().as_micros()))
            .sum()
    }

    /// Partition the job's critical-path time `[0, makespan]` into
    /// exclusive phases: at every simulated instant the job is attributed
    /// to the highest-priority phase any invocation is in (cold start >
    /// S3 GET > S3 PUT > compute > waiting on children > queued behind
    /// the concurrency cap), or `idle` if nothing is active. The phase
    /// durations therefore sum to the makespan *exactly* — this is the
    /// "where does JCT go" view printed by `--metrics` and the
    /// `exp_fig7_table3` phase table.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        // Line sweep: ±1 boundary events per span, grouped by timestamp;
        // between consecutive timestamps the active phase is the
        // highest-priority class with a positive cover count.
        let mut events: Vec<(u64, i64, usize)> = Vec::new();
        for span in self.trace.spans() {
            let Some(class) = phase_class(span.kind) else {
                continue;
            };
            let (s, e) = (span.start.as_micros(), span.end.as_micros());
            if e > s {
                events.push((s, 1, class));
                events.push((e, -1, class));
            }
        }
        events.sort_unstable();
        let end_us = self.makespan.as_micros();
        let mut counts = [0i64; PHASES];
        let mut totals = [0u64; PHASES + 1]; // + trailing idle slot
        let mut prev = 0u64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            let seg_end = t.min(end_us);
            if seg_end > prev {
                let active = counts.iter().position(|&c| c > 0).unwrap_or(PHASES);
                totals[active] += seg_end - prev;
                prev = seg_end;
            }
            while i < events.len() && events[i].0 == t {
                counts[events[i].2] += events[i].1;
                i += 1;
            }
        }
        if end_us > prev {
            totals[PHASES] += end_us - prev;
        }
        PhaseBreakdown::from_totals(totals)
    }

    /// Cumulative lambda-time per execution stage and phase, where the
    /// stage is the invocation name with trailing numeric indices
    /// stripped (`mapper-3` → `mapper`, `reducer-1-0` → `reducer`).
    ///
    /// Unlike [`SimReport::phase_breakdown`], parallel invocations
    /// *accumulate*: a stage's totals are lambda-seconds, not wall time,
    /// so they can exceed the makespan. `idle` is always zero here.
    /// Stages come back in name order (deterministic).
    pub fn stage_breakdown(&self) -> Vec<StagePhases> {
        let mut stages: BTreeMap<&str, StagePhases> = BTreeMap::new();
        for span in self.trace.spans() {
            let stage = stage_of(&span.actor);
            let entry = stages.entry(stage).or_insert_with(|| StagePhases {
                stage: stage.to_string(),
                invocations: 0,
                phases: PhaseBreakdown::default(),
            });
            let d = span.end.since(span.start);
            match span.kind {
                SpanKind::Invocation => entry.invocations += 1,
                SpanKind::ColdStart => entry.phases.cold_start += d,
                SpanKind::StorageGet => entry.phases.storage_get += d,
                SpanKind::StoragePut => entry.phases.storage_put += d,
                SpanKind::Compute => entry.phases.compute += d,
                SpanKind::WaitChildren => entry.phases.wait_children += d,
                SpanKind::QueuedConcurrency => entry.phases.queued += d,
            }
        }
        stages.into_values().collect()
    }
}

/// Number of exclusive (non-idle) phase classes, in priority order.
const PHASES: usize = 6;

/// Priority index of a span kind for the exclusive partition (lower wins
/// when phases overlap); `Invocation` spans are containers, not phases.
fn phase_class(kind: SpanKind) -> Option<usize> {
    match kind {
        SpanKind::ColdStart => Some(0),
        SpanKind::StorageGet => Some(1),
        SpanKind::StoragePut => Some(2),
        SpanKind::Compute => Some(3),
        SpanKind::WaitChildren => Some(4),
        SpanKind::QueuedConcurrency => Some(5),
        SpanKind::Invocation => None,
    }
}

/// The execution stage an invocation belongs to: its name minus any
/// trailing `-<digits>` index segments.
fn stage_of(actor: &str) -> &str {
    let mut s = actor;
    while let Some(pos) = s.rfind('-') {
        let tail = &s[pos + 1..];
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
            s = &s[..pos];
        } else {
            break;
        }
    }
    s
}

/// Simulated time attributed to each execution phase (see
/// [`SimReport::phase_breakdown`] for the exclusive-partition semantics
/// and [`SimReport::stage_breakdown`] for the cumulative ones).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Container launch (cold start) time.
    pub cold_start: SimDuration,
    /// Object-store GET transfer time.
    pub storage_get: SimDuration,
    /// Object-store PUT transfer time.
    pub storage_put: SimDuration,
    /// Handler compute (and spawn-orchestration) time.
    pub compute: SimDuration,
    /// Parents blocked on child barriers.
    pub wait_children: SimDuration,
    /// Arrivals queued behind the platform concurrency cap.
    pub queued: SimDuration,
    /// No invocation active (exclusive partition only; zero elsewhere).
    pub idle: SimDuration,
}

impl PhaseBreakdown {
    fn from_totals(totals: [u64; PHASES + 1]) -> Self {
        PhaseBreakdown {
            cold_start: SimDuration::from_micros(totals[0]),
            storage_get: SimDuration::from_micros(totals[1]),
            storage_put: SimDuration::from_micros(totals[2]),
            compute: SimDuration::from_micros(totals[3]),
            wait_children: SimDuration::from_micros(totals[4]),
            queued: SimDuration::from_micros(totals[5]),
            idle: SimDuration::from_micros(totals[6]),
        }
    }

    /// `(label, duration)` rows in priority order, for table printing.
    pub fn rows(&self) -> [(&'static str, SimDuration); 7] {
        [
            ("cold_start", self.cold_start),
            ("s3_get", self.storage_get),
            ("s3_put", self.storage_put),
            ("compute", self.compute),
            ("wait_children", self.wait_children),
            ("queued", self.queued),
            ("idle", self.idle),
        ]
    }

    /// Sum of all phases; equals the makespan for the exclusive
    /// partition.
    pub fn total(&self) -> SimDuration {
        self.rows()
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

/// Per-stage cumulative phase totals (see [`SimReport::stage_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StagePhases {
    /// Stage name (`mapper`, `reducer`, …).
    pub stage: String,
    /// Invocations in this stage (0 for stages that only queue/wait
    /// before their invocation span is recorded — in practice ≥ 1).
    pub invocations: usize,
    /// Cumulative lambda-time per phase; `idle` is always zero.
    pub phases: PhaseBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FaasSim, SimConfig};
    use crate::ops::{LambdaSpec, Op, StoreKind};
    use astra_model::Platform;

    fn report_with_phases() -> SimReport {
        // 10 MB/s bandwidth, 0.5 s cold start: cold 0.5 s, GET 20 MB =
        // 2 s, compute 1 s, PUT 5 MB = 0.5 s → makespan 4 s, no idle.
        let mut p = Platform::paper_literal(10.0);
        p.cold_start_s = 0.5;
        let spec = LambdaSpec::new(
            "mapper-0",
            128,
            vec![
                Op::Get {
                    key: "in".into(),
                    store: StoreKind::Persistent,
                },
                Op::Compute { secs_at_128: 1.0 },
                Op::Put {
                    key: "out".into(),
                    size_mb: 5.0,
                    store: StoreKind::Persistent,
                },
            ],
        );
        FaasSim::new(SimConfig::deterministic(p), &[("in".into(), 20.0)])
            .run(vec![spec])
            .unwrap()
    }

    #[test]
    fn phase_breakdown_partitions_the_makespan_exactly() {
        let report = report_with_phases();
        let phases = report.phase_breakdown();
        assert_eq!(phases.total(), report.makespan, "exclusive partition");
        assert_eq!(phases.cold_start, SimDuration::from_millis(500));
        assert_eq!(phases.storage_get, SimDuration::from_secs(2));
        assert_eq!(phases.compute, SimDuration::from_secs(1));
        assert_eq!(phases.storage_put, SimDuration::from_millis(500));
        assert_eq!(phases.idle, SimDuration::ZERO);
        assert_eq!(phases.wait_children, SimDuration::ZERO);
        assert_eq!(phases.queued, SimDuration::ZERO);
    }

    #[test]
    fn overlapping_phases_attribute_by_priority() {
        // Two parallel lambdas: one cold-starting (1 s) while the other
        // computes (2 s). Cold start wins the overlap second; compute
        // gets only its exclusive second.
        let mut p = Platform::paper_literal(10.0);
        p.cold_start_s = 0.0;
        let slow = LambdaSpec::new("a", 128, vec![Op::Compute { secs_at_128: 2.0 }]);
        let report = FaasSim::new(SimConfig::deterministic(p.clone()), &[])
            .run(vec![slow.clone()])
            .unwrap();
        assert_eq!(report.phase_breakdown().compute, SimDuration::from_secs(2));

        p.cold_start_s = 1.0;
        let report = FaasSim::new(SimConfig::deterministic(p), &[])
            .run(vec![
                slow,
                LambdaSpec::new("b", 128, vec![Op::Compute { secs_at_128: 0.5 }]),
            ])
            .unwrap();
        let phases = report.phase_breakdown();
        // Both cold starts overlap in [0, 1]; compute owns the rest.
        assert_eq!(phases.cold_start, SimDuration::from_secs(1));
        assert_eq!(phases.compute, SimDuration::from_secs(2));
        assert_eq!(phases.total(), report.makespan);
    }

    #[test]
    fn stage_breakdown_groups_indexed_actors() {
        let mut p = Platform::paper_literal(10.0);
        p.cold_start_s = 0.0;
        let roots = vec![
            LambdaSpec::new("mapper-0", 128, vec![Op::Compute { secs_at_128: 1.0 }]),
            LambdaSpec::new("mapper-1", 128, vec![Op::Compute { secs_at_128: 2.0 }]),
            LambdaSpec::new("reducer-0-1", 128, vec![Op::Compute { secs_at_128: 4.0 }]),
        ];
        let report = FaasSim::new(SimConfig::deterministic(p), &[])
            .run(roots)
            .unwrap();
        let stages = report.stage_breakdown();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, "mapper");
        assert_eq!(stages[0].invocations, 2);
        assert_eq!(stages[0].phases.compute, SimDuration::from_secs(3));
        assert_eq!(stages[1].stage, "reducer");
        assert_eq!(stages[1].invocations, 1);
        assert_eq!(stages[1].phases.compute, SimDuration::from_secs(4));
    }

    #[test]
    fn stage_of_strips_trailing_indices_only() {
        assert_eq!(stage_of("mapper-3"), "mapper");
        assert_eq!(stage_of("reducer-1-0"), "reducer");
        assert_eq!(stage_of("driver"), "driver");
        assert_eq!(stage_of("stage-2-final"), "stage-2-final");
        assert_eq!(stage_of("x-"), "x-");
    }
}
