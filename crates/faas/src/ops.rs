//! The operation scripts a simulated lambda executes.

/// Which storage tier an object operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreKind {
    /// Persistent object storage (S3): job input and, when no
    /// intermediate store is configured, everything else too.
    #[default]
    Persistent,
    /// The configured intermediate (ephemeral) store — shuffle output,
    /// state objects and reduce intermediates. Behaves exactly like
    /// `Persistent` when the platform has no intermediate store.
    Ephemeral,
}

/// One step in a lambda's body.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read `key` from a store. The key must exist (have been PUT, or
    /// registered as job input) when the GET starts.
    Get {
        /// Object key.
        key: String,
        /// Which tier the object lives in.
        store: StoreKind,
    },
    /// Write `size_mb` under `key`. The object becomes visible when the
    /// PUT *completes*.
    Put {
        /// Object key.
        key: String,
        /// Object size in MB.
        size_mb: f64,
        /// Which tier to write to.
        store: StoreKind,
    },
    /// Burn CPU for `secs` seconds of 128 MB-tier time; the engine scales
    /// it by the invocation's memory tier and applies noise.
    Compute {
        /// Seconds of work at the 128 MB reference tier.
        secs_at_128: f64,
    },
    /// Invoke child lambdas. With `wait`, block until every child
    /// finishes (the coordinator's per-step barrier); without, continue
    /// immediately (fire-and-forget, used for the final reducer step per
    /// the paper's Eq. 14 coordinator lifetime).
    Spawn {
        /// The children to invoke.
        children: Vec<LambdaSpec>,
        /// Whether to block until all children complete.
        wait: bool,
    },
}

/// A function invocation request: a name (for traces and invoices), a
/// memory tier, and the op script to run.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaSpec {
    /// Unique name, e.g. `"mapper-3"` or `"reducer-2-0"`.
    pub name: String,
    /// Memory allocation in MB (must be a platform tier).
    pub memory_mb: u32,
    /// The body.
    pub ops: Vec<Op>,
    /// A client-side driver, not a lambda: it models the user's machine
    /// submitting the job — no cold start, no concurrency token, no bill,
    /// no timeout. Its only legal ops are [`Op::Spawn`]s.
    pub client: bool,
}

impl LambdaSpec {
    /// Convenience constructor for a real lambda.
    pub fn new(name: impl Into<String>, memory_mb: u32, ops: Vec<Op>) -> Self {
        LambdaSpec {
            name: name.into(),
            memory_mb,
            ops,
            client: false,
        }
    }

    /// An unbilled client-side driver (only `Op::Spawn` allowed).
    pub fn client_driver(name: impl Into<String>, ops: Vec<Op>) -> Self {
        assert!(
            ops.iter().all(|op| matches!(op, Op::Spawn { .. })),
            "a client driver may only spawn lambdas"
        );
        LambdaSpec {
            name: name.into(),
            memory_mb: 0,
            ops,
            client: true,
        }
    }

    /// Number of ops, counting nested children recursively.
    pub fn total_ops(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Spawn { children, .. } => {
                    1 + children.iter().map(LambdaSpec::total_ops).sum::<usize>()
                }
                _ => 1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_ops_counts_nested() {
        let child = LambdaSpec::new("c", 128, vec![Op::Compute { secs_at_128: 1.0 }]);
        let parent = LambdaSpec::new(
            "p",
            128,
            vec![
                Op::Get {
                    key: "a".into(),
                    store: StoreKind::Persistent,
                },
                Op::Spawn {
                    children: vec![child.clone(), child],
                    wait: true,
                },
            ],
        );
        assert_eq!(parent.total_ops(), 4);
    }
}
