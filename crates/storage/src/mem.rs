//! A real, thread-safe, in-memory object store.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

/// Errors returned by [`MemStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested key does not exist.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "object not found: {k}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory S3 stand-in holding real bytes.
///
/// Keys are flat strings (S3 has no directories either); `list_prefix`
/// provides the prefix listing the coordinator uses to discover mapper
/// output. GET/PUT counters mirror what S3 would bill, letting the
/// byte-level runtime cross-check the request counts predicted by the
/// analytical model (Eq. 10).
#[derive(Debug, Default)]
pub struct MemStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    gets: AtomicU64,
    puts: AtomicU64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `data` under `key`, overwriting any existing object.
    pub fn put(&self, key: impl Into<String>, data: impl Into<Bytes>) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.objects.write().insert(key.into(), data.into());
    }

    /// Fetch the object at `key`.
    pub fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Remove the object at `key`.
    pub fn delete(&self, key: &str) -> Result<(), StoreError> {
        self.objects
            .write()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// True if `key` exists (not billed as a GET).
    pub fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    /// Size in bytes of the object at `key`.
    pub fn size_of(&self, key: &str) -> Result<u64, StoreError> {
        self.objects
            .read()
            .get(key)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Keys starting with `prefix`, in lexicographic order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }

    /// GET requests served so far.
    pub fn get_count(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// PUT requests served so far.
    pub fn put_count(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let store = MemStore::new();
        store.put("a/1", &b"hello"[..]);
        assert_eq!(store.get("a/1").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(store.size_of("a/1").unwrap(), 5);
    }

    #[test]
    fn missing_key_is_not_found() {
        let store = MemStore::new();
        assert_eq!(
            store.get("nope"),
            Err(StoreError::NotFound("nope".to_string()))
        );
        assert!(store.delete("nope").is_err());
    }

    #[test]
    fn overwrite_replaces() {
        let store = MemStore::new();
        store.put("k", &b"v1"[..]);
        store.put("k", &b"v2"[..]);
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v2"));
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn prefix_listing_is_sorted_and_scoped() {
        let store = MemStore::new();
        store.put("map/2", &b""[..]);
        store.put("map/10", &b""[..]);
        store.put("reduce/1", &b""[..]);
        store.put("map/1", &b""[..]);
        assert_eq!(store.list_prefix("map/"), vec!["map/1", "map/10", "map/2"]);
        assert_eq!(store.list_prefix("zzz"), Vec::<String>::new());
    }

    #[test]
    fn request_counters_track_operations() {
        let store = MemStore::new();
        store.put("a", &b"x"[..]);
        store.put("b", &b"y"[..]);
        let _ = store.get("a");
        let _ = store.get("a");
        let _ = store.get("missing");
        assert_eq!(store.put_count(), 2);
        assert_eq!(store.get_count(), 3);
    }

    #[test]
    fn delete_removes_object() {
        let store = MemStore::new();
        store.put("k", &b"v"[..]);
        store.delete("k").unwrap();
        assert!(!store.contains("k"));
        assert_eq!(store.object_count(), 0);
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let store = MemStore::new();
        store.put("a", vec![0u8; 100]);
        store.put("b", vec![0u8; 23]);
        assert_eq!(store.total_bytes(), 123);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.put(format!("t{t}/obj{i}"), vec![t as u8; 64]);
                    let _ = s.get(&format!("t{t}/obj{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.object_count(), 800);
        assert_eq!(store.put_count(), 800);
        assert_eq!(store.get_count(), 800);
    }
}
