#![warn(missing_docs)]

//! S3-like object storage substrate.
//!
//! Serverless MapReduce (paper Fig. 4) exchanges *all* intermediate data
//! through an object store, so this crate provides both halves of our S3
//! substitution:
//!
//! * [`MemStore`] — a real, thread-safe, in-memory object store holding
//!   actual bytes. The byte-level MapReduce runtime in `astra-mapreduce`
//!   runs against it to validate that the orchestration produces correct
//!   analytics results (wordcount counts, sort orders, query aggregates).
//! * [`TransferModel`] — the timing model for simulated GET/PUT requests:
//!   per-request latency plus size/bandwidth transfer time, exactly the
//!   `(d + e)/B` terms of the paper's Eq. 4.
//! * [`StorageLedger`] — request and byte-time accounting that turns a
//!   simulated run into an S3 bill via `astra-pricing` (Eq. 10–11).

pub mod ledger;
pub mod mem;
pub mod model;

pub use ledger::{LedgerSnapshot, StorageLedger};
pub use mem::MemStore;
pub use model::TransferModel;

/// Convert bytes to megabytes (the paper works in MB throughout).
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Convert megabytes to bytes, rounding to the nearest byte.
pub fn mb_to_bytes(mb: f64) -> u64 {
    (mb * 1024.0 * 1024.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_byte_roundtrip() {
        assert_eq!(bytes_to_mb(mb_to_bytes(2.5)), 2.5);
        assert_eq!(mb_to_bytes(1.0), 1_048_576);
    }
}
