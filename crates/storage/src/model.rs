//! Timing model for simulated object-store requests.

use astra_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// How long a simulated GET or PUT takes.
///
/// The paper's Eq. 4 charges `(d + e)/B` for a lambda's S3 traffic — pure
/// bandwidth. Real S3 adds a per-request latency floor, which matters for
/// the many-small-objects configurations in Fig. 1; the simulator includes
/// it (and the analytical model exposes the same knob so both sides agree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Lambda↔S3 bandwidth in MB/s (`B` in the paper).
    pub bandwidth_mbps: f64,
    /// First-byte latency of a GET request, seconds.
    pub get_latency_s: f64,
    /// First-byte latency of a PUT request, seconds.
    pub put_latency_s: f64,
}

impl TransferModel {
    /// Calibration roughly matching measured Lambda↔S3 behaviour around the
    /// paper's evaluation era: ~40 MB/s per function, ~25 ms GET and ~40 ms
    /// PUT first-byte latency.
    pub fn aws_like() -> Self {
        TransferModel {
            bandwidth_mbps: 40.0,
            get_latency_s: 0.025,
            put_latency_s: 0.040,
        }
    }

    /// A pure-bandwidth model (zero request latency) — exactly the paper's
    /// `(d + e)/B` formulation.
    pub fn paper_literal(bandwidth_mbps: f64) -> Self {
        TransferModel {
            bandwidth_mbps,
            get_latency_s: 0.0,
            put_latency_s: 0.0,
        }
    }

    /// Duration of one GET of `size_mb` megabytes.
    pub fn get_time(&self, size_mb: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.get_latency_s + size_mb / self.bandwidth_mbps)
    }

    /// Duration of one PUT of `size_mb` megabytes.
    pub fn put_time(&self, size_mb: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.put_latency_s + size_mb / self.bandwidth_mbps)
    }

    /// Seconds for one GET (for the analytical model, which works in f64).
    pub fn get_secs(&self, size_mb: f64) -> f64 {
        self.get_latency_s + size_mb / self.bandwidth_mbps
    }

    /// Seconds for one PUT.
    pub fn put_secs(&self, size_mb: f64) -> f64 {
        self.put_latency_s + size_mb / self.bandwidth_mbps
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::aws_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_literal_is_pure_bandwidth() {
        let m = TransferModel::paper_literal(40.0);
        assert_eq!(m.get_time(80.0), SimDuration::from_secs(2));
        assert_eq!(m.put_time(40.0), SimDuration::from_secs(1));
    }

    #[test]
    fn latency_adds_to_transfer() {
        let m = TransferModel {
            bandwidth_mbps: 10.0,
            get_latency_s: 0.5,
            put_latency_s: 1.0,
        };
        assert_eq!(m.get_time(10.0), SimDuration::from_secs_f64(1.5));
        assert_eq!(m.put_time(10.0), SimDuration::from_secs(2));
    }

    #[test]
    fn zero_size_costs_only_latency() {
        let m = TransferModel::aws_like();
        assert_eq!(m.get_time(0.0), SimDuration::from_secs_f64(0.025));
    }

    #[test]
    fn secs_and_time_agree() {
        let m = TransferModel::aws_like();
        assert!(
            (m.get_secs(12.0) - m.get_time(12.0).as_secs_f64()).abs() < 1e-6
        );
    }
}
