//! Request and byte-time accounting for the simulated object store.

use astra_pricing::{Money, S3Pricing};
use astra_simcore::SimTime;

/// One live object tracked by the ledger.
#[derive(Debug, Clone)]
struct LiveObject {
    size_mb: f64,
    created: SimTime,
}

/// Accounts for every billable S3 action in a simulated run.
///
/// Mirrors the paper's cost decomposition: GET/PUT request counts (Eq. 10)
/// and the storage byte-time integral (Eq. 11 charges size × residence
/// duration × unit price). Objects still alive at finalization are charged
/// until the finalization instant — matching the paper's convention that
/// input objects "will be stored in S3 until the completion of the job".
#[derive(Debug, Default)]
pub struct StorageLedger {
    gets: u64,
    puts: u64,
    live: Vec<(String, LiveObject)>,
    /// Accumulated MB-microseconds of already-deleted objects.
    closed_mb_us: f64,
    bytes_read_mb: f64,
    bytes_written_mb: f64,
}

/// Immutable summary of a ledger, used in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerSnapshot {
    /// Total GET requests.
    pub gets: u64,
    /// Total PUT requests.
    pub puts: u64,
    /// Total MB read.
    pub read_mb: f64,
    /// Total MB written.
    pub written_mb: f64,
    /// Storage integral in MB-seconds.
    pub mb_seconds: f64,
}

impl StorageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset every counter and drop all tracked objects, keeping the
    /// live-object vector's allocated capacity. After `reset()` the
    /// ledger is observationally identical to [`StorageLedger::new`],
    /// which is what lets a sim arena reuse one allocation across runs.
    pub fn reset(&mut self) {
        self.gets = 0;
        self.puts = 0;
        self.live.clear();
        self.closed_mb_us = 0.0;
        self.bytes_read_mb = 0.0;
        self.bytes_written_mb = 0.0;
    }

    /// Record a PUT creating (or overwriting) `key` with `size_mb` at `now`.
    pub fn record_put(&mut self, key: impl Into<String>, size_mb: f64, now: SimTime) {
        assert!(size_mb >= 0.0, "negative object size");
        let key = key.into();
        self.puts += 1;
        self.bytes_written_mb += size_mb;
        // Overwrite closes the old object's storage interval.
        if let Some(pos) = self.live.iter().position(|(k, _)| *k == key) {
            let (_, old) = self.live.swap_remove(pos);
            self.closed_mb_us += old.size_mb * now.since(old.created).as_micros() as f64;
        }
        self.live.push((
            key,
            LiveObject {
                size_mb,
                created: now,
            },
        ));
    }

    /// Record a GET of `size_mb` (the key need not be tracked — input
    /// objects can pre-exist the simulation, registered via
    /// [`register_preexisting`](Self::register_preexisting)).
    pub fn record_get(&mut self, size_mb: f64) {
        self.gets += 1;
        self.bytes_read_mb += size_mb;
    }

    /// Register an object that already exists at simulation start (job
    /// input data) so its storage time is billed without counting a PUT.
    pub fn register_preexisting(&mut self, key: impl Into<String>, size_mb: f64) {
        self.live.push((
            key.into(),
            LiveObject {
                size_mb,
                created: SimTime::ZERO,
            },
        ));
    }

    /// True if `key` currently exists (was PUT or registered and not
    /// deleted). The FaaS simulator uses this to catch orchestration bugs:
    /// a GET of a key that was never written means a function ran before
    /// its input producer finished.
    pub fn exists(&self, key: &str) -> bool {
        self.live.iter().any(|(k, _)| k == key)
    }

    /// Size in MB of a live object.
    pub fn size_of(&self, key: &str) -> Option<f64> {
        self.live
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, o)| o.size_mb)
    }

    /// Record deletion of `key` at `now`, closing its storage interval.
    pub fn record_delete(&mut self, key: &str, now: SimTime) {
        if let Some(pos) = self.live.iter().position(|(k, _)| k == key) {
            let (_, obj) = self.live.swap_remove(pos);
            self.closed_mb_us += obj.size_mb * now.since(obj.created).as_micros() as f64;
        }
    }

    /// Snapshot the ledger as of `now` (live objects billed up to `now`).
    pub fn snapshot(&self, now: SimTime) -> LedgerSnapshot {
        let live_mb_us: f64 = self
            .live
            .iter()
            .map(|(_, o)| o.size_mb * now.since(o.created).as_micros() as f64)
            .sum();
        LedgerSnapshot {
            gets: self.gets,
            puts: self.puts,
            read_mb: self.bytes_read_mb,
            written_mb: self.bytes_written_mb,
            mb_seconds: (self.closed_mb_us + live_mb_us) / 1e6,
        }
    }

    /// Total S3 bill as of `now` under `pricing`.
    pub fn bill(&self, now: SimTime, pricing: &S3Pricing) -> Money {
        let snap = self.snapshot(now);
        pricing.get_cost(snap.gets)
            + pricing.put_cost(snap.puts)
            + pricing.storage_cost(snap.mb_seconds, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn counts_requests() {
        let mut l = StorageLedger::new();
        l.record_put("a", 1.0, t(0));
        l.record_put("b", 2.0, t(1));
        l.record_get(1.0);
        let snap = l.snapshot(t(2));
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.read_mb, 1.0);
        assert_eq!(snap.written_mb, 3.0);
    }

    #[test]
    fn storage_integral_for_live_objects() {
        let mut l = StorageLedger::new();
        l.record_put("a", 10.0, t(0));
        // 10 MB alive for 5 s = 50 MB-s
        assert_eq!(l.snapshot(t(5)).mb_seconds, 50.0);
    }

    #[test]
    fn delete_closes_interval() {
        let mut l = StorageLedger::new();
        l.record_put("a", 10.0, t(0));
        l.record_delete("a", t(2));
        // Frozen at 20 MB-s regardless of later snapshots.
        assert_eq!(l.snapshot(t(100)).mb_seconds, 20.0);
    }

    #[test]
    fn overwrite_closes_old_interval() {
        let mut l = StorageLedger::new();
        l.record_put("a", 10.0, t(0));
        l.record_put("a", 4.0, t(2)); // closes 20 MB-s, starts 4 MB
        assert_eq!(l.snapshot(t(3)).mb_seconds, 20.0 + 4.0);
        assert_eq!(l.snapshot(t(3)).puts, 2);
    }

    #[test]
    fn preexisting_objects_bill_storage_without_put() {
        let mut l = StorageLedger::new();
        l.register_preexisting("input", 100.0, );
        let snap = l.snapshot(t(10));
        assert_eq!(snap.puts, 0);
        assert_eq!(snap.mb_seconds, 1000.0);
    }

    #[test]
    fn bill_combines_requests_and_storage() {
        let pricing = S3Pricing::aws_2020();
        let mut l = StorageLedger::new();
        for i in 0..1000 {
            l.record_put(format!("k{i}"), 0.0, t(0));
        }
        for _ in 0..10_000 {
            l.record_get(0.0);
        }
        // 1000 PUTs ($0.005) + 10000 GETs ($0.004), no storage (0 MB).
        assert_eq!(
            l.bill(t(0), &pricing),
            Money::from_dollars_f64(0.009)
        );
    }

    #[test]
    fn exists_tracks_lifecycle() {
        let mut l = StorageLedger::new();
        assert!(!l.exists("a"));
        l.record_put("a", 3.0, t(0));
        assert!(l.exists("a"));
        assert_eq!(l.size_of("a"), Some(3.0));
        l.record_delete("a", t(1));
        assert!(!l.exists("a"));
        assert_eq!(l.size_of("a"), None);
    }

    #[test]
    fn reset_matches_a_fresh_ledger() {
        let mut l = StorageLedger::new();
        l.record_put("a", 10.0, t(0));
        l.record_get(5.0);
        l.record_delete("a", t(2));
        l.reset();
        assert!(!l.exists("a"));
        let snap = l.snapshot(t(100));
        let fresh = StorageLedger::new().snapshot(t(100));
        assert_eq!(snap, fresh);
    }

    #[test]
    fn delete_of_unknown_key_is_ignored() {
        let mut l = StorageLedger::new();
        l.record_delete("ghost", t(1));
        assert_eq!(l.snapshot(t(2)).mb_seconds, 0.0);
    }
}
