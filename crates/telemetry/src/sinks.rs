//! The built-in [`Recorder`] sinks: null, in-memory, Chrome trace.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::{Clock, Recorder, SpanRecord};

/// Discards every event. Exists so the cost of *dispatching* telemetry
/// (the virtual call, not a real sink's work) can be measured and gated;
/// see the `telemetry_null` bench in `astra-sim-bench`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn span(&self, _span: &SpanRecord) {}
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn value(&self, _name: &'static str, _sample: f64) {}
}

/// Summary statistics of one named value distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl ValueStats {
    fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for ValueStats {
    fn default() -> Self {
        ValueStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Collects everything into memory — the sink behind tests and the
/// `--metrics` summaries.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    values: Mutex<BTreeMap<&'static str, ValueStats>>,
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Current value of one counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Snapshot of all gauges (latest observation wins), sorted by name.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Snapshot of all value distributions, sorted by name.
    pub fn values(&self) -> BTreeMap<String, ValueStats> {
        self.values
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Human-readable metric summary, one `name = value` line per
    /// counter/gauge/value (what `--metrics` prints).
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, v) in self.counters.lock().iter() {
            lines.push(format!("{name} = {v}"));
        }
        for (name, v) in self.gauges.lock().iter() {
            lines.push(format!("{name} = {v:.3}"));
        }
        for (name, s) in self.values.lock().iter() {
            lines.push(format!(
                "{name}: n={} mean={:.3} min={:.3} max={:.3}",
                s.count,
                s.mean(),
                s.min,
                s.max
            ));
        }
        lines
    }
}

impl Recorder for InMemoryRecorder {
    fn span(&self, span: &SpanRecord) {
        self.spans.lock().push(span.clone());
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().insert(name, value);
    }

    fn value(&self, name: &'static str, sample: f64) {
        self.values.lock().entry(name).or_default().record(sample);
    }
}

/// Collects spans and serializes them in the Chrome trace-event JSON
/// format, loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Layout: two trace "processes" — pid 1 carries sim-clock spans (`ts` =
/// simulated µs), pid 2 carries wall-clock spans (`ts` = wall µs since
/// process start) — and within each process every span track (actor or
/// component) gets its own named thread lane. Counters, gauges and value
/// stats land in `otherData`.
#[derive(Debug, Default)]
pub struct ChromeTraceRecorder {
    inner: InMemoryRecorder,
}

/// Sim-clock spans render under this pid.
const SIM_PID: u64 = 1;
/// Wall-clock spans render under this pid.
const WALL_PID: u64 = 2;

impl ChromeTraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying in-memory store (for metric summaries next to the
    /// trace file).
    pub fn inner(&self) -> &InMemoryRecorder {
        &self.inner
    }

    /// Render the trace as a Chrome trace-event JSON document.
    pub fn to_json(&self) -> Value {
        let spans = self.inner.spans();
        // Assign one tid per (pid, track) in first-seen order and name
        // the lanes with thread_name metadata events.
        let mut lanes: BTreeMap<(u64, String), u64> = BTreeMap::new();
        let mut events: Vec<Value> = Vec::new();
        let mut next_tid = 1u64;
        for span in &spans {
            let pid = match span.clock {
                Clock::Sim => SIM_PID,
                Clock::Wall => WALL_PID,
            };
            let key = (pid, span.track.to_string());
            let tid = *lanes.entry(key).or_insert_with(|| {
                let tid = next_tid;
                next_tid += 1;
                events.push(json!({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span.track.as_ref()},
                }));
                tid
            });
            let (ts, dur) = match span.clock {
                Clock::Sim => (
                    span.sim_start_us as f64,
                    (span.sim_end_us - span.sim_start_us) as f64,
                ),
                Clock::Wall => (
                    span.wall_start_ns as f64 / 1e3,
                    (span.wall_end_ns - span.wall_start_ns) as f64 / 1e3,
                ),
            };
            events.push(json!({
                "name": span.name.as_ref(),
                "cat": span.kind,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "id": span.id,
                    "parent": span.parent.map(Value::from).unwrap_or(Value::Null),
                    "sim_start_us": span.sim_start_us,
                    "sim_end_us": span.sim_end_us,
                    "wall_start_ns": span.wall_start_ns,
                    "wall_end_ns": span.wall_end_ns,
                },
            }));
        }
        for pid in [SIM_PID, WALL_PID] {
            let name = if pid == SIM_PID { "sim clock" } else { "wall clock" };
            events.push(json!({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }));
        }
        let counters: Vec<Value> = self
            .inner
            .counters()
            .into_iter()
            .map(|(k, v)| json!({"name": k, "value": v}))
            .collect();
        let gauges: Vec<Value> = self
            .inner
            .gauges()
            .into_iter()
            .map(|(k, v)| json!({"name": k, "value": v}))
            .collect();
        let values: Vec<Value> = self
            .inner
            .values()
            .into_iter()
            .map(|(k, s)| {
                json!({"name": k, "count": s.count, "mean": s.mean(), "min": s.min, "max": s.max})
            })
            .collect();
        json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "counters": counters,
                "gauges": gauges,
                "values": values,
            },
        })
    }

    /// Write the trace to `path` (conventionally `trace.json`).
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let doc = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, doc)
    }
}

impl Recorder for ChromeTraceRecorder {
    fn span(&self, span: &SpanRecord) {
        self.inner.span(span);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        Recorder::counter(&self.inner, name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn value(&self, name: &'static str, sample: f64) {
        self.inner.value(name, sample);
    }
}

/// Convenience: a [`Telemetry`](crate::Telemetry) handle plus the
/// strongly-typed recorder behind it, so callers can install the handle
/// and still reach sink-specific methods (`write_to`, `spans`, …).
pub fn in_memory() -> (crate::Telemetry, Arc<InMemoryRecorder>) {
    let rec = Arc::new(InMemoryRecorder::new());
    (crate::Telemetry::new(rec.clone()), rec)
}

/// Like [`in_memory`] for the Chrome-trace sink.
pub fn chrome_trace() -> (crate::Telemetry, Arc<ChromeTraceRecorder>) {
    let rec = Arc::new(ChromeTraceRecorder::new());
    (crate::Telemetry::new(rec.clone()), rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sim_span(track: &str, name: &str, start: u64, end: u64, id: u64, parent: Option<u64>) -> SpanRecord {
        SpanRecord {
            track: track.into(),
            name: name.into(),
            kind: "test",
            clock: Clock::Sim,
            sim_start_us: start,
            sim_end_us: end,
            wall_start_ns: 0,
            wall_end_ns: 0,
            id,
            parent,
        }
    }

    #[test]
    fn in_memory_accumulates_counters_and_values() {
        let rec = InMemoryRecorder::new();
        Recorder::counter(&rec, "a", 2);
        Recorder::counter(&rec, "a", 3);
        Recorder::counter(&rec, "b", 1);
        Recorder::gauge(&rec, "g", 4.0);
        Recorder::gauge(&rec, "g", 5.0);
        Recorder::value(&rec, "v", 1.0);
        Recorder::value(&rec, "v", 3.0);
        assert_eq!(rec.counter_value("a"), 5);
        assert_eq!(rec.counter_value("b"), 1);
        assert_eq!(rec.counter_value("missing"), 0);
        assert_eq!(rec.gauges()["g"], 5.0);
        let v = rec.values()["v"];
        assert_eq!(v.count, 2);
        assert_eq!(v.mean(), 2.0);
        assert_eq!((v.min, v.max), (1.0, 3.0));
        assert!(!rec.summary_lines().is_empty());
    }

    #[test]
    fn chrome_trace_shape_is_valid() {
        let (t, rec) = chrome_trace();
        t.span(sim_span("mapper-0", "invocation", 0, 100, 1, None));
        t.span(sim_span("mapper-0", "get", 0, 40, 2, Some(1)));
        t.counter("engine.events", 7);
        {
            let _w = t.wall_span("planner", "plan", "planner");
        }
        let doc = rec.to_json();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 3 spans + 2 thread_name lanes (mapper-0 sim, planner wall)
        // + 2 process_name records.
        assert_eq!(events.len(), 7);
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        // Sim spans carry sim-µs timestamps; the child nests inside its
        // parent's interval.
        let get = complete
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("get"))
            .unwrap();
        assert_eq!(get.get("ts").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(get.get("dur").unwrap().as_f64().unwrap(), 40.0);
        assert_eq!(
            get.get("args").unwrap().get("parent").unwrap().as_u64(),
            Some(1)
        );
        let counters = doc
            .get("otherData")
            .unwrap()
            .get("counters")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn chrome_trace_writes_a_file() {
        let (t, rec) = chrome_trace();
        t.span(sim_span("a", "s", 0, 10, 1, None));
        let dir = std::env::temp_dir().join("astra-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        rec.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let t = Telemetry::new(Arc::new(NullRecorder));
        assert!(t.enabled());
        t.counter("c", 1);
        t.span(sim_span("a", "s", 0, 1, 1, None));
    }
}
