#![warn(missing_docs)]

//! Zero-cost-when-disabled structured observability for the Astra stack.
//!
//! The simulator, the planner and the sweep harness are instrumented with
//! *spans* (hierarchical intervals carrying both a simulated-clock and a
//! wall-clock timestamp), *counters* (monotonic event tallies such as
//! `engine.events` or `planner.cache.hits`), *gauges* (last-value
//! observations) and *values* (histogram-style samples). All of it flows
//! through a [`Telemetry`] handle into a pluggable [`Recorder`] sink:
//!
//! * [`NullRecorder`] — discards everything; used to measure pure
//!   dispatch overhead (see `astra-sim-bench`'s `telemetry_null` bench);
//! * [`InMemoryRecorder`] — collects spans and metrics for tests and
//!   `--metrics` summaries;
//! * [`ChromeTraceRecorder`] — serializes a `trace.json` loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! The default handle is **disabled**: every instrumentation site reduces
//! to one branch on an `Option` that is `None`, no allocation, no clock
//! read, no lock. That is what keeps telemetry out of the engine's hot
//! pop/handle/schedule cycle when nobody is watching (the overhead bench
//! gates it).
//!
//! ## Determinism contract
//!
//! Telemetry is strictly *observational*: it never draws from a
//! simulation RNG, never schedules or reorders events, and never feeds
//! anything back into the simulated state. Enabling any sink therefore
//! leaves every `SimReport` and every plan bit-identical to a run without
//! it, at any thread count — `tests/telemetry_determinism.rs` enforces
//! this. Wall-clock stamps and thread attributions naturally differ
//! between runs; simulated-clock stamps do not.
//!
//! ## Two clocks
//!
//! Every span records both clocks because they answer different
//! questions: *simulated* time locates an interval inside the modelled
//! job (where does JCT go?), while *wall* time locates the work on the
//! host (where does planning/sweep latency go, and on which thread?).
//! Sim-clock spans (engine phases) have [`Clock::Sim`]; wall-clock spans
//! (planner passes, batch cases) have [`Clock::Wall`] and leave the sim
//! stamps at zero.
//!
//! See `OBSERVABILITY.md` at the repository root for the complete span
//! taxonomy and counter catalogue.

pub mod sinks;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub use sinks::{ChromeTraceRecorder, InMemoryRecorder, NullRecorder, ValueStats};

/// Which clock a span's primary interval is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Simulated microseconds (`SimTime`): engine phases.
    Sim,
    /// Host wall-clock nanoseconds since process start: planner passes,
    /// batch cases.
    Wall,
}

/// One completed span, reported to the [`Recorder`] when it ends.
///
/// Hierarchy is explicit: `parent` names the enclosing span's `id`
/// (e.g. an S3-GET span points at its invocation span, a retried
/// invocation's phases point at the same invocation id). Ids are unique
/// per [`Telemetry`] handle and never zero.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Display lane: the actor (`"mapper-3"`) for sim spans, a logical
    /// component (`"planner"`, `"sweep-worker-…"`) for wall spans.
    pub track: Arc<str>,
    /// What the span is (`"get"`, `"compute"`, `"invocation"`, …).
    pub name: Arc<str>,
    /// Coarse category used for Chrome-trace `cat` and phase grouping.
    pub kind: &'static str,
    /// Which clock `…_start`/`…_end` below are authoritative on.
    pub clock: Clock,
    /// Simulated start (µs); 0 for wall spans.
    pub sim_start_us: u64,
    /// Simulated end (µs); 0 for wall spans.
    pub sim_end_us: u64,
    /// Wall start (ns since process start).
    pub wall_start_ns: u64,
    /// Wall end (ns since process start).
    pub wall_end_ns: u64,
    /// Unique span id (non-zero).
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
}

/// A sink for telemetry events. Implementations must be cheap and
/// thread-safe: spans and counters arrive from every worker thread.
///
/// All methods are *observations*; a recorder must never feed anything
/// back into the instrumented computation (the determinism contract in
/// the crate docs).
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// A span completed.
    fn span(&self, span: &SpanRecord);
    /// Add `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64);
    /// Record the latest value of a named gauge.
    fn gauge(&self, name: &'static str, value: f64);
    /// Record one sample of a named value distribution.
    fn value(&self, name: &'static str, sample: f64);
}

/// Nanoseconds of wall clock elapsed since the first telemetry use in
/// this process. Monotonic; shared by every handle so spans from
/// different layers land on one timeline.
pub fn wall_clock_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A cloneable handle instrumentation sites call into.
///
/// Disabled by default ([`Telemetry::disabled`], also `Default`): every
/// method is then a single `Option` branch. Clones share the sink and
/// the span-id allocator.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Recorder>>,
    ids: Arc<AtomicU64>,
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A handle feeding `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry {
            sink: Some(recorder),
            ids: Arc::new(AtomicU64::new(1)),
        }
    }

    /// True when a recorder is attached. Instrumentation sites that need
    /// to build span payloads (allocate names, read clocks) must check
    /// this first so the disabled path stays free.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Allocate a fresh span id (0 when disabled — never a valid id).
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        match &self.sink {
            Some(_) => self.ids.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Report a completed span.
    #[inline]
    pub fn span(&self, record: SpanRecord) {
        if let Some(sink) = &self.sink {
            sink.span(&record);
        }
    }

    /// Add `delta` to a named counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter(name, delta);
        }
    }

    /// Record a gauge observation.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(sink) = &self.sink {
            sink.gauge(name, value);
        }
    }

    /// Record one sample of a value distribution.
    #[inline]
    pub fn value(&self, name: &'static str, sample: f64) {
        if let Some(sink) = &self.sink {
            sink.value(name, sample);
        }
    }

    /// Start a wall-clock span; it reports itself when dropped (or via
    /// [`WallSpan::finish`]). Free when disabled.
    pub fn wall_span(
        &self,
        track: impl Into<Arc<str>>,
        name: impl Into<Arc<str>>,
        kind: &'static str,
    ) -> WallSpan {
        if !self.enabled() {
            return WallSpan { open: None };
        }
        WallSpan {
            open: Some(OpenWallSpan {
                telemetry: self.clone(),
                track: track.into(),
                name: name.into(),
                kind,
                start_ns: wall_clock_ns(),
                id: self.next_span_id(),
                parent: None,
            }),
        }
    }
}

struct OpenWallSpan {
    telemetry: Telemetry,
    track: Arc<str>,
    name: Arc<str>,
    kind: &'static str,
    start_ns: u64,
    id: u64,
    parent: Option<u64>,
}

/// RAII guard for a wall-clock span (see [`Telemetry::wall_span`]).
pub struct WallSpan {
    open: Option<OpenWallSpan>,
}

impl WallSpan {
    /// This span's id, for parenting children under it (0 if disabled).
    pub fn id(&self) -> u64 {
        self.open.as_ref().map(|o| o.id).unwrap_or(0)
    }

    /// Set the parent span id (ignored when disabled).
    pub fn set_parent(&mut self, parent: u64) {
        if let Some(o) = &mut self.open {
            o.parent = (parent != 0).then_some(parent);
        }
    }

    /// End the span now (identical to dropping it, but explicit).
    pub fn finish(self) {}
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some(o) = self.open.take() {
            let end = wall_clock_ns();
            o.telemetry.span(SpanRecord {
                track: o.track,
                name: o.name,
                kind: o.kind,
                clock: Clock::Wall,
                sim_start_us: 0,
                sim_end_us: 0,
                wall_start_ns: o.start_ns,
                wall_end_ns: end,
                id: o.id,
                parent: o.parent,
            });
        }
    }
}

fn global_slot() -> &'static parking_lot::RwLock<Telemetry> {
    static GLOBAL: OnceLock<parking_lot::RwLock<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(|| parking_lot::RwLock::new(Telemetry::disabled()))
}

/// Install `telemetry` as the process-global default picked up by
/// [`global`] (and therefore by `SimConfig::deterministic` and the
/// `Astra` constructors). Binaries call this once at startup after
/// parsing `--trace-out` / `--metrics`; libraries never call it.
pub fn install_global(telemetry: Telemetry) {
    *global_slot().write() = telemetry;
}

/// A clone of the process-global handle (disabled unless a binary
/// installed one via [`install_global`]).
pub fn global() -> Telemetry {
    global_slot().read().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert_eq!(t.next_span_id(), 0);
        t.counter("x", 1);
        t.gauge("g", 1.0);
        t.value("v", 1.0);
        let span = t.wall_span("track", "name", "kind");
        assert_eq!(span.id(), 0);
        span.finish();
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let t = Telemetry::new(Arc::new(NullRecorder));
        let a = t.next_span_id();
        let b = t.next_span_id();
        let c = t.clone().next_span_id();
        assert!(a != 0 && b != 0 && c != 0);
        assert!(a != b && b != c && a != c, "clones share the allocator");
    }

    #[test]
    fn wall_span_reports_on_drop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        {
            let mut outer = t.wall_span("planner", "plan", "planner");
            outer.set_parent(0); // no-op: zero is never a valid parent
            let mut inner = t.wall_span("planner", "solve", "planner");
            inner.set_parent(outer.id());
            drop(inner);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        // Inner dropped first.
        assert_eq!(&*spans[0].name, "solve");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert!(spans[0].wall_end_ns >= spans[0].wall_start_ns);
        assert_eq!(spans[0].clock, Clock::Wall);
    }

    #[test]
    fn global_defaults_to_disabled_and_installs() {
        // Note: other tests in this binary do not touch the global slot.
        assert!(!global().enabled());
        install_global(Telemetry::new(Arc::new(NullRecorder)));
        assert!(global().enabled());
        install_global(Telemetry::disabled());
        assert!(!global().enabled());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let a = wall_clock_ns();
        let b = wall_clock_ns();
        assert!(b >= a);
    }
}
