//! Fixed-size planner benchmark runner with a regression gate.
//!
//! Unlike the Criterion benches (exploratory, human-read), this runner
//! executes a pinned set of planner benchmarks — DAG construction
//! (serial and parallel, plus the dominance-pruned build), the ExactCsp
//! solve (plain and potential-guided), the 16-bound session sweep
//! (cold rebuilds vs one reused `PlannerSession`), and the exhaustive
//! sweep (serial and parallel) — at fixed sizes including the
//! paper-scale N=202 / L=46 case, plus the production-scale collapsed
//! entries (`dag_build_collapsed/N1e5`, `solve_csp_collapsed/N1e5`,
//! run at every size setting), and emits a machine-readable
//! `BENCH_planner.json`.
//!
//! ```text
//! astra-bench [--out FILE]          write results (default BENCH_planner.json)
//!             [--check BASELINE]    compare against a baseline instead; exit 1
//!                                   if any shared metric regressed > tolerance
//!             [--tolerance FRAC]    allowed relative slowdown (default 0.20)
//!             [--sizes tiny|full]   tiny = N=10 only (CI); full = 10/50/202
//!             [--samples N]         timed samples per bench (default 5)
//!             [--threads N]         pin the planner thread count
//!             [--no-prune]          run the pruning-aware entries unpruned
//! ```
//!
//! Regression checks compare `min_ms` (the most noise-robust statistic a
//! small sample offers) for every bench name present in both files. The
//! historical entries (`dag_build_*`, `solve_exact_csp`) deliberately
//! keep measuring the *unpruned* DAG and the plain label search, so
//! their numbers stay comparable across baselines; the dominance-pruned
//! planner core is tracked by `dag_build_pruned`, `solve_csp_potentials`
//! and the `session_sweep_*` pair.

use astra_bench::runner::{run_cli, time_ms, BenchArgs};
use astra_bench::{binding_budget, full_space, planner, production_job, synthetic_job};
use astra_core::solver::{solve_exhaustive, solve_exhaustive_serial, solve_on_dag};
use astra_core::{ConfigSpace, Objective, PlannerDag, PlannerPotentials, PruneConfig, Strategy};
use serde_json::{json, Value};

/// Bounds answered by every session-sweep cycle (the acceptance target
/// compares one reused session against this many cold build+solve runs).
const SWEEP_BOUNDS: usize = 16;

fn run_suite(args: &BenchArgs) -> Value {
    let astra = planner(Strategy::ExactCsp);
    let prune = if args.no_prune {
        PruneConfig::off()
    } else {
        PruneConfig::on()
    };
    let mut results: Vec<Value> = Vec::new();
    let mut speedups: Vec<Value> = Vec::new();

    let push = |results: &mut Vec<Value>, name: String, n: usize, tiers: usize, mean: f64, min: f64| {
        eprintln!("bench {name}: mean {mean:.2} ms, min {min:.2} ms");
        results.push(json!({
            "name": name,
            "n": n,
            "tiers": tiers,
            "mean_ms": mean,
            "min_ms": min,
        }));
    };

    for &n in &args.sizes {
        let job = synthetic_job(n);
        let space = full_space(&astra, &job);
        let tiers = space.memory_tiers_mb.len();

        // Historical entries: the full (unpruned) Fig. 5 DAG and the
        // plain lexicographic label search, exactly as every committed
        // baseline measured them.
        let (serial_mean, serial_min) = time_ms(args.samples, || {
            PlannerDag::build_serial_with(
                &job,
                astra.platform(),
                astra.catalog(),
                &space,
                PruneConfig::off(),
            )
        });
        push(
            &mut results,
            format!("dag_build_serial/N{n}"),
            n,
            tiers,
            serial_mean,
            serial_min,
        );

        let (par_mean, par_min) = time_ms(args.samples, || {
            PlannerDag::build_with(
                &job,
                astra.platform(),
                astra.catalog(),
                &space,
                PruneConfig::off(),
            )
        });
        push(
            &mut results,
            format!("dag_build_parallel/N{n}"),
            n,
            tiers,
            par_mean,
            par_min,
        );
        speedups.push(json!({
            "name": format!("dag_build/N{n}"),
            "serial_ms": serial_min,
            "parallel_ms": par_min,
            "speedup": serial_min / par_min,
        }));

        // The dominance-pruned parallel build (what planning actually
        // runs now): pays the Pareto filters, produces a smaller DAG.
        let (pb_mean, pb_min) = time_ms(args.samples, || {
            PlannerDag::build_with(&job, astra.platform(), astra.catalog(), &space, prune)
        });
        push(
            &mut results,
            format!("dag_build_pruned/N{n}"),
            n,
            tiers,
            pb_mean,
            pb_min,
        );

        let full_dag = PlannerDag::build_with(
            &job,
            astra.platform(),
            astra.catalog(),
            &space,
            PruneConfig::off(),
        );
        let objective = binding_budget(&astra, &job);
        let (csp_mean, csp_min) = time_ms(args.samples, || {
            solve_on_dag(&full_dag, objective, Strategy::ExactCsp)
        });
        push(
            &mut results,
            format!("solve_exact_csp/N{n}"),
            n,
            tiers,
            csp_mean,
            csp_min,
        );

        // The potential-guided search on the (default: pruned) DAG —
        // the successor entry the ≥2× acceptance criterion tracks.
        let pruned_dag =
            PlannerDag::build_with(&job, astra.platform(), astra.catalog(), &space, prune);
        let potentials = PlannerPotentials::compute(&pruned_dag);
        let tel = astra_telemetry::Telemetry::disabled();
        let (pot_mean, pot_min) = time_ms(args.samples, || {
            astra_core::solve_on_dag_with_potentials(
                &pruned_dag,
                &potentials,
                objective,
                Strategy::ExactCsp,
                &tel,
            )
        });
        push(
            &mut results,
            format!("solve_csp_potentials/N{n}"),
            n,
            tiers,
            pot_mean,
            pot_min,
        );
        speedups.push(json!({
            "name": format!("csp_potentials/N{n}"),
            "serial_ms": csp_min,
            "parallel_ms": pot_min,
            "speedup": csp_min / pot_min,
        }));

        // Constraint sweep: answer SWEEP_BOUNDS budgets, once with a
        // cold build+solve per budget (the pre-session workflow) and
        // once through a single reused PlannerSession. Cold cycles at
        // paper scale run multi-second, so they get fewer samples.
        let budgets: Vec<Objective> = {
            let cheapest = astra.plan(&job, Objective::cheapest()).unwrap();
            let fastest = astra.plan(&job, Objective::fastest()).unwrap();
            let lo = cheapest.predicted_cost().nanos();
            let hi = fastest.predicted_cost().nanos();
            (0..SWEEP_BOUNDS)
                .map(|i| Objective::MinimizeTime {
                    budget: astra_pricing::Money::from_nanos(
                        lo + (hi - lo) * i as i128 / (SWEEP_BOUNDS - 1) as i128,
                    ),
                })
                .collect()
        };
        let cold_samples = if n >= 100 { args.samples.min(2) } else { args.samples };
        let cold_astra = astra.clone().with_prune_config(prune);
        let (cold_mean, cold_min) = time_ms(cold_samples, || {
            budgets
                .iter()
                .filter(|&&o| cold_astra.plan(&job, o).is_ok())
                .count()
        });
        push(
            &mut results,
            format!("session_sweep_cold/N{n}"),
            n,
            tiers,
            cold_mean,
            cold_min,
        );
        let session_astra = astra.clone().with_prune_config(prune);
        let (warm_mean, warm_min) = time_ms(args.samples, || {
            let session = session_astra.session(&job);
            budgets
                .iter()
                .filter(|&&o| session.plan(o).is_ok())
                .count()
        });
        push(
            &mut results,
            format!("session_sweep_reused/N{n}"),
            n,
            tiers,
            warm_mean,
            warm_min,
        );
        speedups.push(json!({
            "name": format!("session_sweep/N{n}"),
            "serial_ms": cold_min,
            "parallel_ms": warm_min,
            "speedup": cold_min / warm_min,
        }));

        // Incremental re-planning: answer a changed-input re-quote by
        // patching one live PlannerSession in place (apply_delta: edge
        // recost + potentials resume + memo invalidation) vs the cold
        // workflow (fresh session per delta). Both run unpruned — the
        // configuration on which coefficient and price deltas stay on
        // the in-place recost tier — and both solve the same binding
        // budget after every delta. Samples rotate through
        // [coeff+, price+, coeff−, price−], so `min_ms` reflects a
        // mapper-coefficient patch and `mean_ms` mixes in the heavier
        // price repass; the warmup sample also absorbs the session's
        // lazy recost-plan capture.
        let platform = astra.platform().clone();
        // The coefficient tweak must not push any mapper phase across
        // the lambda timeout gate: a flipped gate changes the DAG shape
        // and the patch tier (correctly) falls back to a rebuild. The
        // safe margin depends on N — at N=202 some phases sit within 5%
        // of the timeout — so probe from the largest tweak downward and
        // bench the first one that stays on the patch tier.
        let coeff_mult = {
            let base = astra_core::PlannerSession::new(
                &job,
                platform.clone(),
                *astra.catalog(),
                space.clone(),
                Strategy::ExactCsp,
                PruneConfig::off(),
            );
            [1.05, 1.02, 1.01, 1.005, 1.001]
                .into_iter()
                .find(|&m| {
                    let mut probe = base.clone();
                    let mut tweaked = job.clone();
                    tweaked.profile.map_secs_per_mb_128 *= m;
                    probe.apply_delta(&tweaked, &platform, astra.catalog(), &space)
                        == astra_core::ReplanOutcome::Patched
                })
                .expect("every probed coefficient tweak crossed the timeout gate")
        };
        let variants: Vec<(astra_model::JobSpec, astra_pricing::PriceCatalog)> = {
            let mut tweaked = job.clone();
            tweaked.profile.map_secs_per_mb_128 *= coeff_mult;
            let mut pricier = *astra.catalog();
            pricier.lambda.per_gb_second = pricier.lambda.per_gb_second.scale(2.0);
            vec![
                (tweaked.clone(), *astra.catalog()),
                (tweaked, pricier),
                (job.clone(), pricier),
                (job.clone(), *astra.catalog()),
            ]
        };
        let mut step = 0usize;
        let (rc_mean, rc_min) = time_ms(args.samples, || {
            let (j, c) = &variants[step % variants.len()];
            step += 1;
            let session = astra_core::PlannerSession::new(
                j,
                platform.clone(),
                *c,
                space.clone(),
                Strategy::ExactCsp,
                PruneConfig::off(),
            );
            session.solve(objective).is_some()
        });
        push(
            &mut results,
            format!("session_replan_cold/N{n}"),
            n,
            tiers,
            rc_mean,
            rc_min,
        );
        let mut session = astra_core::PlannerSession::new(
            &job,
            platform.clone(),
            *astra.catalog(),
            space.clone(),
            Strategy::ExactCsp,
            PruneConfig::off(),
        );
        let mut step = 0usize;
        let (rd_mean, rd_min) = time_ms(args.samples, || {
            let (j, c) = &variants[step % variants.len()];
            step += 1;
            let outcome = session.apply_delta(j, &platform, c, &space);
            assert_eq!(
                outcome,
                astra_core::ReplanOutcome::Patched,
                "replan bench delta fell off the patch tier"
            );
            session.solve(objective).is_some()
        });
        push(
            &mut results,
            format!("session_replan_delta/N{n}"),
            n,
            tiers,
            rd_mean,
            rd_min,
        );
        speedups.push(json!({
            "name": format!("session_replan/N{n}"),
            "serial_ms": rc_min,
            "parallel_ms": rd_min,
            "speedup": rc_min / rd_min,
        }));
    }

    // Production-N planning: the bundled (collapsed) configuration
    // space at N=100 000, on the aggregation-shaped production job
    // (`uniform_test`'s ratio-1.0 profile is infeasible at this N).
    // The full Fig. 5 space is quadratic in N and
    // hopeless at this scale; the collapsed space keeps one
    // representative k_M per parallelism class and a geometric k_R
    // ladder, so the whole build + potentials + guided-CSP cycle is
    // the thing the <1 s acceptance budget gates. Runs under every
    // `--sizes` setting — sub-second at production N is the point.
    {
        let n = 100_000;
        let job = production_job(n);
        let space = ConfigSpace::bundled(&job, astra.platform());
        let tiers = space.memory_tiers_mb.len();
        let samples = args.samples.min(3);
        let (cb_mean, cb_min) = time_ms(samples, || {
            PlannerDag::build_with(&job, astra.platform(), astra.catalog(), &space, prune)
        });
        push(
            &mut results,
            "dag_build_collapsed/N1e5".to_string(),
            n,
            tiers,
            cb_mean,
            cb_min,
        );
        let dag = PlannerDag::build_with(&job, astra.platform(), astra.catalog(), &space, prune);
        let objective = {
            let cheapest = astra
                .plan_with_space(&job, Objective::cheapest(), &space)
                .unwrap();
            let fastest = astra
                .plan_with_space(&job, Objective::fastest(), &space)
                .unwrap();
            let lo = cheapest.predicted_cost().nanos();
            let hi = fastest.predicted_cost().nanos();
            Objective::MinimizeTime {
                budget: astra_pricing::Money::from_nanos((lo + hi) / 2),
            }
        };
        let tel = astra_telemetry::Telemetry::disabled();
        // Potentials are timed inside the solve entry: a cold
        // constrained solve always pays for its own lower bounds.
        let (cs_mean, cs_min) = time_ms(samples, || {
            let potentials = PlannerPotentials::compute(&dag);
            astra_core::solve_on_dag_with_potentials(
                &dag,
                &potentials,
                objective,
                Strategy::ExactCsp,
                &tel,
            )
        });
        push(
            &mut results,
            "solve_csp_collapsed/N1e5".to_string(),
            n,
            tiers,
            cs_mean,
            cs_min,
        );
    }

    // Exhaustive sweep on a reduced tier set (the full 46-tier cube is
    // validation-only and combinatorially far larger than planning).
    {
        let n = args.sizes[0];
        let job = synthetic_job(n);
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 1024, 3008]);
        let tiers = space.memory_tiers_mb.len();
        let objective = binding_budget(&astra, &job);
        let (se_mean, se_min) = time_ms(args.samples, || {
            solve_exhaustive_serial(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_serial/N{n}"),
            n,
            tiers,
            se_mean,
            se_min,
        );
        let (pe_mean, pe_min) = time_ms(args.samples, || {
            solve_exhaustive(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_parallel/N{n}"),
            n,
            tiers,
            pe_mean,
            pe_min,
        );
        speedups.push(json!({
            "name": format!("exhaustive/N{n}"),
            "serial_ms": se_min,
            "parallel_ms": pe_min,
            "speedup": se_min / pe_min,
        }));
    }

    json!({
        "schema_version": 1,
        "suite": "astra-planner-bench",
        "cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "threads": rayon::current_num_threads(),
        "samples": args.samples,
        "no_prune": args.no_prune,
        "results": results,
        "speedups": speedups,
    })
}

fn main() {
    run_cli(
        "astra-bench",
        "BENCH_planner.json",
        &[10],
        &[10, 50, 202],
        run_suite,
    );
}
