//! Fixed-size planner benchmark runner with a regression gate.
//!
//! Unlike the Criterion benches (exploratory, human-read), this runner
//! executes a pinned set of planner benchmarks — DAG construction
//! (serial and parallel), the ExactCsp solve, and the exhaustive sweep
//! (serial and parallel) — at fixed sizes including the paper-scale
//! N=202 / L=46 case, and emits a machine-readable `BENCH_planner.json`.
//!
//! ```text
//! astra-bench [--out FILE]          write results (default BENCH_planner.json)
//!             [--check BASELINE]    compare against a baseline instead; exit 1
//!                                   if any shared metric regressed > tolerance
//!             [--tolerance FRAC]    allowed relative slowdown (default 0.20)
//!             [--sizes tiny|full]   tiny = N=10 only (CI); full = 10/50/202
//!             [--samples N]         timed samples per bench (default 5)
//!             [--threads N]         pin the planner thread count
//! ```
//!
//! Regression checks compare `min_ms` (the most noise-robust statistic a
//! small sample offers) for every bench name present in both files.

use std::time::Instant;

use astra_bench::{binding_budget, full_space, planner, synthetic_job};
use astra_core::solver::{solve_exhaustive, solve_exhaustive_serial, solve_on_dag};
use astra_core::{ConfigSpace, PlannerDag, Strategy};
use serde_json::{json, Value};

struct Args {
    out: String,
    check: Option<String>,
    tolerance: f64,
    sizes: Vec<usize>,
    samples: usize,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_planner.json".to_string(),
        check: None,
        tolerance: 0.20,
        sizes: vec![10, 50, 202],
        samples: 5,
        threads: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1).ok_or(format!("flag '{flag}' needs a value"))
        };
        match flag {
            "--out" => args.out = value(i)?.clone(),
            "--check" => args.check = Some(value(i)?.clone()),
            "--tolerance" => {
                args.tolerance = value(i)?.parse().map_err(|e| format!("--tolerance: {e}"))?
            }
            "--sizes" => {
                args.sizes = match value(i)?.as_str() {
                    "tiny" => vec![10],
                    "full" => vec![10, 50, 202],
                    other => return Err(format!("--sizes must be tiny|full, got '{other}'")),
                }
            }
            "--samples" => {
                args.samples = value(i)?.parse().map_err(|e| format!("--samples: {e}"))?
            }
            "--threads" => {
                args.threads = Some(value(i)?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    if args.samples == 0 {
        return Err("--samples must be >= 1".into());
    }
    Ok(args)
}

/// Time `samples` runs of `f` (after one warmup); returns (mean, min) ms.
fn time_ms<O>(samples: usize, mut f: impl FnMut() -> O) -> (f64, f64) {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

fn run_suite(args: &Args) -> Value {
    let astra = planner(Strategy::ExactCsp);
    let mut results: Vec<Value> = Vec::new();
    let mut speedups: Vec<Value> = Vec::new();

    let push = |results: &mut Vec<Value>, name: String, n: usize, tiers: usize, mean: f64, min: f64| {
        eprintln!("bench {name}: mean {mean:.2} ms, min {min:.2} ms");
        results.push(json!({
            "name": name,
            "n": n,
            "tiers": tiers,
            "mean_ms": mean,
            "min_ms": min,
        }));
    };

    for &n in &args.sizes {
        let job = synthetic_job(n);
        let space = full_space(&astra, &job);
        let tiers = space.memory_tiers_mb.len();

        let (serial_mean, serial_min) = time_ms(args.samples, || {
            PlannerDag::build_serial(&job, astra.platform(), astra.catalog(), &space)
        });
        push(
            &mut results,
            format!("dag_build_serial/N{n}"),
            n,
            tiers,
            serial_mean,
            serial_min,
        );

        let (par_mean, par_min) = time_ms(args.samples, || astra.build_dag(&job, &space));
        push(
            &mut results,
            format!("dag_build_parallel/N{n}"),
            n,
            tiers,
            par_mean,
            par_min,
        );
        speedups.push(json!({
            "name": format!("dag_build/N{n}"),
            "serial_ms": serial_min,
            "parallel_ms": par_min,
            "speedup": serial_min / par_min,
        }));

        let dag = astra.build_dag(&job, &space);
        let objective = binding_budget(&astra, &job);
        let (csp_mean, csp_min) = time_ms(args.samples, || {
            solve_on_dag(&dag, objective, Strategy::ExactCsp)
        });
        push(
            &mut results,
            format!("solve_exact_csp/N{n}"),
            n,
            tiers,
            csp_mean,
            csp_min,
        );
    }

    // Exhaustive sweep on a reduced tier set (the full 46-tier cube is
    // validation-only and combinatorially far larger than planning).
    {
        let n = args.sizes[0];
        let job = synthetic_job(n);
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 1024, 3008]);
        let tiers = space.memory_tiers_mb.len();
        let objective = binding_budget(&astra, &job);
        let (se_mean, se_min) = time_ms(args.samples, || {
            solve_exhaustive_serial(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_serial/N{n}"),
            n,
            tiers,
            se_mean,
            se_min,
        );
        let (pe_mean, pe_min) = time_ms(args.samples, || {
            solve_exhaustive(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_parallel/N{n}"),
            n,
            tiers,
            pe_mean,
            pe_min,
        );
        speedups.push(json!({
            "name": format!("exhaustive/N{n}"),
            "serial_ms": se_min,
            "parallel_ms": pe_min,
            "speedup": se_min / pe_min,
        }));
    }

    json!({
        "schema_version": 1,
        "suite": "astra-planner-bench",
        "cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "threads": rayon::current_num_threads(),
        "samples": args.samples,
        "results": results,
        "speedups": speedups,
    })
}

/// Compare `current` against `baseline`; returns the regressions found.
fn regressions(current: &Value, baseline: &Value, tolerance: f64) -> Vec<String> {
    let empty = Vec::new();
    let base: Vec<(&str, f64)> = baseline["results"]
        .as_array()
        .unwrap_or(&empty)
        .iter()
        .filter_map(|r| Some((r["name"].as_str()?, r["min_ms"].as_f64()?)))
        .collect();
    let mut out = Vec::new();
    for r in current["results"].as_array().unwrap_or(&empty) {
        let (Some(name), Some(min)) = (r["name"].as_str(), r["min_ms"].as_f64()) else {
            continue;
        };
        if let Some(&(_, base_min)) = base.iter().find(|(b, _)| *b == name) {
            if min > base_min * (1.0 + tolerance) {
                out.push(format!(
                    "{name}: {min:.2} ms vs baseline {base_min:.2} ms (+{:.0}% > +{:.0}% allowed)",
                    (min / base_min - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("astra-bench: {e}");
            std::process::exit(2);
        }
    };
    if let Some(n) = args.threads {
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    }

    // Load the baseline before spending bench time, so a bad path or
    // corrupt file fails in milliseconds rather than after the suite.
    let baseline: Option<Value> = args.check.as_ref().map(|baseline_path| {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("astra-bench: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("astra-bench: baseline {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    });

    let report = run_suite(&args);

    if let (Some(baseline_path), Some(baseline)) = (&args.check, &baseline) {
        let bad = regressions(&report, baseline, args.tolerance);
        if bad.is_empty() {
            println!(
                "astra-bench: no regressions beyond {:.0}% against {baseline_path}",
                args.tolerance * 100.0
            );
        } else {
            eprintln!("astra-bench: performance regressions detected:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&args.out, text + "\n").expect("write report");
        println!("astra-bench: wrote {}", args.out);
    }
}
