//! Fixed-size planner benchmark runner with a regression gate.
//!
//! Unlike the Criterion benches (exploratory, human-read), this runner
//! executes a pinned set of planner benchmarks — DAG construction
//! (serial and parallel), the ExactCsp solve, and the exhaustive sweep
//! (serial and parallel) — at fixed sizes including the paper-scale
//! N=202 / L=46 case, and emits a machine-readable `BENCH_planner.json`.
//!
//! ```text
//! astra-bench [--out FILE]          write results (default BENCH_planner.json)
//!             [--check BASELINE]    compare against a baseline instead; exit 1
//!                                   if any shared metric regressed > tolerance
//!             [--tolerance FRAC]    allowed relative slowdown (default 0.20)
//!             [--sizes tiny|full]   tiny = N=10 only (CI); full = 10/50/202
//!             [--samples N]         timed samples per bench (default 5)
//!             [--threads N]         pin the planner thread count
//! ```
//!
//! Regression checks compare `min_ms` (the most noise-robust statistic a
//! small sample offers) for every bench name present in both files.

use astra_bench::runner::{run_cli, time_ms, BenchArgs};
use astra_bench::{binding_budget, full_space, planner, synthetic_job};
use astra_core::solver::{solve_exhaustive, solve_exhaustive_serial, solve_on_dag};
use astra_core::{ConfigSpace, PlannerDag, Strategy};
use serde_json::{json, Value};

fn run_suite(args: &BenchArgs) -> Value {
    let astra = planner(Strategy::ExactCsp);
    let mut results: Vec<Value> = Vec::new();
    let mut speedups: Vec<Value> = Vec::new();

    let push = |results: &mut Vec<Value>, name: String, n: usize, tiers: usize, mean: f64, min: f64| {
        eprintln!("bench {name}: mean {mean:.2} ms, min {min:.2} ms");
        results.push(json!({
            "name": name,
            "n": n,
            "tiers": tiers,
            "mean_ms": mean,
            "min_ms": min,
        }));
    };

    for &n in &args.sizes {
        let job = synthetic_job(n);
        let space = full_space(&astra, &job);
        let tiers = space.memory_tiers_mb.len();

        let (serial_mean, serial_min) = time_ms(args.samples, || {
            PlannerDag::build_serial(&job, astra.platform(), astra.catalog(), &space)
        });
        push(
            &mut results,
            format!("dag_build_serial/N{n}"),
            n,
            tiers,
            serial_mean,
            serial_min,
        );

        let (par_mean, par_min) = time_ms(args.samples, || astra.build_dag(&job, &space));
        push(
            &mut results,
            format!("dag_build_parallel/N{n}"),
            n,
            tiers,
            par_mean,
            par_min,
        );
        speedups.push(json!({
            "name": format!("dag_build/N{n}"),
            "serial_ms": serial_min,
            "parallel_ms": par_min,
            "speedup": serial_min / par_min,
        }));

        let dag = astra.build_dag(&job, &space);
        let objective = binding_budget(&astra, &job);
        let (csp_mean, csp_min) = time_ms(args.samples, || {
            solve_on_dag(&dag, objective, Strategy::ExactCsp)
        });
        push(
            &mut results,
            format!("solve_exact_csp/N{n}"),
            n,
            tiers,
            csp_mean,
            csp_min,
        );
    }

    // Exhaustive sweep on a reduced tier set (the full 46-tier cube is
    // validation-only and combinatorially far larger than planning).
    {
        let n = args.sizes[0];
        let job = synthetic_job(n);
        let space = ConfigSpace::with_tiers(&job, astra.platform(), &[128, 512, 1024, 3008]);
        let tiers = space.memory_tiers_mb.len();
        let objective = binding_budget(&astra, &job);
        let (se_mean, se_min) = time_ms(args.samples, || {
            solve_exhaustive_serial(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_serial/N{n}"),
            n,
            tiers,
            se_mean,
            se_min,
        );
        let (pe_mean, pe_min) = time_ms(args.samples, || {
            solve_exhaustive(&job, astra.platform(), astra.catalog(), &space, objective)
        });
        push(
            &mut results,
            format!("exhaustive_parallel/N{n}"),
            n,
            tiers,
            pe_mean,
            pe_min,
        );
        speedups.push(json!({
            "name": format!("exhaustive/N{n}"),
            "serial_ms": se_min,
            "parallel_ms": pe_min,
            "speedup": se_min / pe_min,
        }));
    }

    json!({
        "schema_version": 1,
        "suite": "astra-planner-bench",
        "cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "threads": rayon::current_num_threads(),
        "samples": args.samples,
        "results": results,
        "speedups": speedups,
    })
}

fn main() {
    run_cli(
        "astra-bench",
        "BENCH_planner.json",
        &[10],
        &[10, 50, 202],
        run_suite,
    );
}
