//! Fixed-size simulator benchmark runner with a regression gate.
//!
//! The planner gate (`astra-bench`) covers plan construction; this
//! runner covers the other half of the evaluation pipeline — the
//! discrete-event simulator and the parallel sweep machinery every
//! experiment is built on. It executes a pinned suite at fixed sizes:
//!
//! * `sim_single/N{n}` — one end-to-end simulation of an N-object job
//!   (compile + event loop), with the event count and derived events/sec
//!   throughput recorded alongside the timing;
//! * `telemetry_null/N{n}` — the same single simulation with a
//!   `NullRecorder` telemetry sink attached (every span/counter is
//!   built and discarded), so the per-event instrumentation overhead is
//!   measurable and gated alongside the disabled-path timing;
//! * `sweep_serial/N{n}` / `sweep_parallel/N{n}` — a 16-replication
//!   noisy seed sweep run as a serial loop versus `simulate_batch`,
//!   with the speedup recorded (the parallel entry and its speedup row
//!   are skipped entirely when the effective rayon pool is a single
//!   thread — there is no fan-out to measure);
//! * `service_throughput/N{n}` — a 16-job batch submitted through the
//!   `astra-service` daemon (2 workers, session cache warm after the
//!   first job) and drained to terminal snapshots, so the whole
//!   submit→admit→plan→simulate pipeline is gated, with jobs/sec
//!   recorded alongside the timing;
//! * `service_net_roundtrip/N{n}` — the same jobs submitted serially
//!   over loopback TCP through the PROTOCOL.md line protocol, each
//!   blocking on `await`, so the wire framing + JSON codec + socket
//!   overhead per submit→Done roundtrip is gated too;
//! * `service_recovery/N{n}` — 200 plan-only jobs journaled to a
//!   durable log (setup, untimed), then a fresh daemon started on that
//!   journal per sample, so the crash-recovery replay path — frame
//!   decode, checksum verify, verbatim snapshot restore — is gated,
//!   with jobs-replayed/sec recorded alongside the timing.
//!
//! ```text
//! astra-sim-bench [--out FILE]          write results (default BENCH_sim.json)
//!                 [--check BASELINE]    compare against a baseline instead;
//!                                       exit 1 if any shared metric regressed
//!                 [--tolerance FRAC]    allowed relative slowdown (default 0.20)
//!                 [--sizes tiny|full]   tiny = N=202 only (CI); full = 50/202/1000
//!                 [--samples N]         timed samples per bench (default 5)
//!                 [--threads N]         pin the sweep thread count
//! ```
//!
//! Regression checks compare `min_ms` for every bench name present in
//! both files, exactly like the planner gate.

use astra_bench::runner::{run_cli, time_ms, BenchArgs};
use astra_bench::{planner, synthetic_job};
use astra_core::{Objective, Strategy};
use astra_faas::{derive_seed, SimConfig};
use astra_mapreduce::{simulate, simulate_batch, SimCase};
use astra_model::Platform;
use astra_service::{
    JobRequest, NetClient, NetConfig, NetServer, ServiceConfig, ServiceDaemon, SimOptions,
};
use serde_json::{json, Value};

/// Replications per sweep bench: enough to keep every core busy.
const SWEEP_RUNS: u64 = 16;
/// Jobs journaled and replayed by the `service_recovery` bench.
const RECOVERY_JOBS: u64 = 200;
/// Noise CV for the benched runs (the harness's default).
const NOISE_CV: f64 = 0.10;

fn config(seed: u64) -> SimConfig {
    SimConfig::deterministic(Platform::aws_lambda()).with_noise(NOISE_CV, seed)
}

fn run_suite(args: &BenchArgs) -> Value {
    let astra = planner(Strategy::ExactCsp);
    let mut results: Vec<Value> = Vec::new();
    let mut speedups: Vec<Value> = Vec::new();

    for &n in &args.sizes {
        let job = synthetic_job(n);
        let plan = astra
            .plan(&job, Objective::fastest())
            .expect("synthetic job plans");

        // Single-run event throughput.
        let report = simulate(&job, &plan, config(7)).expect("bench run succeeds");
        let events = report.events;
        let (mean, min) = time_ms(args.samples, || {
            simulate(&job, &plan, config(7)).expect("bench run succeeds")
        });
        let events_per_sec = events as f64 / (min / 1e3);
        eprintln!(
            "bench sim_single/N{n}: mean {mean:.2} ms, min {min:.2} ms \
             ({events} events, {events_per_sec:.0} events/s)"
        );
        results.push(json!({
            "name": format!("sim_single/N{n}"),
            "n": n,
            "mean_ms": mean,
            "min_ms": min,
            "events": events,
            "events_per_sec": events_per_sec,
        }));

        // Telemetry overhead: identical run with an enabled Null sink,
        // so every span record is allocated, stamped and discarded —
        // the worst case for instrumentation cost. The reports stay
        // bit-identical (telemetry never touches sim state); only the
        // wall-clock differs.
        let tel = astra_telemetry::Telemetry::new(std::sync::Arc::new(
            astra_telemetry::NullRecorder,
        ));
        let (tel_mean, tel_min) = time_ms(args.samples, || {
            simulate(&job, &plan, config(7).with_telemetry(tel.clone()))
                .expect("bench run succeeds")
        });
        let overhead_pct = (tel_min / min - 1.0) * 100.0;
        eprintln!(
            "bench telemetry_null/N{n}: mean {tel_mean:.2} ms, min {tel_min:.2} ms \
             ({overhead_pct:+.1}% vs disabled)"
        );
        results.push(json!({
            "name": format!("telemetry_null/N{n}"),
            "n": n,
            "mean_ms": tel_mean,
            "min_ms": tel_min,
            "overhead_pct_vs_disabled": overhead_pct,
        }));

        // Seed-sweep scaling: serial loop vs simulate_batch fan-out.
        let seeds: Vec<u64> = (0..SWEEP_RUNS).map(|i| derive_seed(7, i)).collect();
        let (serial_mean, serial_min) = time_ms(args.samples, || {
            let reports: Vec<_> = seeds
                .iter()
                .map(|&s| simulate(&job, &plan, config(s)).expect("bench run succeeds"))
                .collect();
            reports.len()
        });
        eprintln!("bench sweep_serial/N{n}: mean {serial_mean:.2} ms, min {serial_min:.2} ms");
        results.push(json!({
            "name": format!("sweep_serial/N{n}"),
            "n": n,
            "runs": SWEEP_RUNS,
            "mean_ms": serial_mean,
            "min_ms": serial_min,
        }));
        // The effective worker count for this sweep: however many
        // threads rayon resolved to (after any `--threads` pin), capped
        // by the case count. Stamped on the entry so `--check` only
        // compares parallel timings recorded at the same fan-out. On a
        // single-thread pool the "parallel" sweep is just the serial
        // loop plus rayon dispatch overhead — the entry would gate
        // nothing and its sub-1.0 "speedup" only misleads — so both it
        // and the speedup row are skipped rather than emitted.
        let threads_effective = rayon::current_num_threads().min(SWEEP_RUNS as usize);
        if threads_effective <= 1 {
            eprintln!(
                "bench sweep_parallel/N{n}: skipped (effective thread pool is 1; \
                 nothing to fan out)"
            );
        } else {
            let (par_mean, par_min) = time_ms(args.samples, || {
                let cases: Vec<SimCase<'_>> = seeds
                    .iter()
                    .map(|&s| SimCase {
                        job: &job,
                        plan: &plan,
                        config: config(s),
                    })
                    .collect();
                simulate_batch(cases).len()
            });
            eprintln!(
                "bench sweep_parallel/N{n}: mean {par_mean:.2} ms, min {par_min:.2} ms \
                 ({threads_effective} threads)"
            );
            results.push(json!({
                "name": format!("sweep_parallel/N{n}"),
                "n": n,
                "runs": SWEEP_RUNS,
                "mean_ms": par_mean,
                "min_ms": par_min,
                "threads": threads_effective,
            }));
            speedups.push(json!({
                "name": format!("sweep/N{n}"),
                "serial_ms": serial_min,
                "parallel_ms": par_min,
                "speedup": serial_min / par_min,
                "threads": threads_effective,
            }));
        }

        // Service-daemon throughput: the same job submitted SWEEP_RUNS
        // times (distinct seeds) through a 2-worker daemon, timed from
        // first submit to last terminal snapshot. After the first job
        // the planner session comes from the LRU cache, so this gates
        // the queue/admission/dispatch overhead plus the simulations.
        let (svc_mean, svc_min) = time_ms(args.samples, || {
            let daemon = ServiceDaemon::start(
                ServiceConfig::default()
                    .with_workers(2)
                    .with_telemetry(astra_telemetry::Telemetry::disabled()),
            );
            let handle = daemon.handle();
            let ids: Vec<_> = (0..SWEEP_RUNS)
                .map(|i| {
                    let request =
                        JobRequest::new(format!("bench-{i}"), job.clone(), Objective::fastest())
                            .with_sim(SimOptions {
                                noise_cv: NOISE_CV,
                                seed: derive_seed(7, i),
                                replications: 1,
                            });
                    handle.submit(request)
                })
                .collect();
            ids.iter()
                .filter(|&&id| handle.await_done(id).expect("bench job vanished").status
                    == astra_service::JobStatus::Done)
                .count()
        });
        let jobs_per_sec = SWEEP_RUNS as f64 / (svc_min / 1e3);
        eprintln!(
            "bench service_throughput/N{n}: mean {svc_mean:.2} ms, min {svc_min:.2} ms \
             ({jobs_per_sec:.0} jobs/s)"
        );
        results.push(json!({
            "name": format!("service_throughput/N{n}"),
            "n": n,
            "jobs": SWEEP_RUNS,
            "mean_ms": svc_mean,
            "min_ms": svc_min,
            "jobs_per_sec": jobs_per_sec,
        }));

        // Networked roundtrip latency: the same jobs submitted one at a
        // time over loopback TCP (PROTOCOL.md line protocol), each
        // submit blocking on `await` before the next — so this times
        // SWEEP_RUNS full submit→Done roundtrips including framing,
        // strict-JSON decode/encode and the socket hop. The server and
        // connection are reused across samples; only the roundtrips are
        // timed.
        let net_daemon = ServiceDaemon::start(
            ServiceConfig::default()
                .with_workers(2)
                .with_telemetry(astra_telemetry::Telemetry::disabled()),
        );
        let server = NetServer::start(
            net_daemon.handle(),
            "127.0.0.1:0",
            NetConfig::default(),
            astra_telemetry::Telemetry::disabled(),
        )
        .expect("bind loopback");
        let mut client =
            NetClient::connect(&server.local_addr().to_string()).expect("connect loopback");
        let (net_mean, net_min) = time_ms(args.samples, || {
            (0..SWEEP_RUNS)
                .map(|i| {
                    let request =
                        JobRequest::new(format!("net-{i}"), job.clone(), Objective::fastest())
                            .with_sim(SimOptions {
                                noise_cv: NOISE_CV,
                                seed: derive_seed(7, i),
                                replications: 1,
                            });
                    let id = client.submit_id(&request).expect("wire submit accepted");
                    let done = client.await_done(id).expect("await roundtrip");
                    assert_eq!(done["job"]["status"].as_str(), Some("DONE"));
                })
                .count()
        });
        let ms_per_roundtrip = net_min / SWEEP_RUNS as f64;
        eprintln!(
            "bench service_net_roundtrip/N{n}: mean {net_mean:.2} ms, min {net_min:.2} ms \
             ({ms_per_roundtrip:.3} ms/roundtrip)"
        );
        results.push(json!({
            "name": format!("service_net_roundtrip/N{n}"),
            "n": n,
            "jobs": SWEEP_RUNS,
            "mean_ms": net_mean,
            "min_ms": net_min,
            "ms_per_roundtrip": ms_per_roundtrip,
        }));
        drop(client);
        server.shutdown();
        net_daemon.shutdown();

        // Journal-replay restart latency: a daemon journals
        // RECOVERY_JOBS plan-only jobs to a scratch log (setup,
        // untimed), then each timed sample starts a fresh daemon on
        // that journal — decoding, checksum-verifying and restoring
        // every terminal snapshot verbatim — and tears it down. This
        // gates the crash-recovery path: how long a restarted service
        // takes before it answers for every pre-crash job.
        let journal = std::env::temp_dir().join(format!(
            "astra-sim-bench-recovery-N{n}-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal);
        {
            let daemon = ServiceDaemon::start(
                ServiceConfig::default()
                    .with_workers(2)
                    .with_journal_path(&journal)
                    .with_telemetry(astra_telemetry::Telemetry::disabled()),
            );
            let handle = daemon.handle();
            let ids: Vec<_> = (0..RECOVERY_JOBS)
                .map(|i| {
                    let request = JobRequest::new(
                        format!("recovery-{i}"),
                        job.clone(),
                        Objective::fastest(),
                    )
                    .with_sim(SimOptions {
                        noise_cv: 0.0,
                        seed: i,
                        replications: 0,
                    });
                    handle.submit(request)
                })
                .collect();
            for id in ids {
                assert_eq!(
                    handle.await_done(id).expect("bench job vanished").status,
                    astra_service::JobStatus::Done
                );
            }
            daemon.shutdown();
        }
        let (rec_mean, rec_min) = time_ms(args.samples, || {
            let daemon = ServiceDaemon::start(
                ServiceConfig::default()
                    .with_workers(2)
                    .with_journal_path(&journal)
                    .with_telemetry(astra_telemetry::Telemetry::disabled()),
            );
            let recovered = daemon.handle().jobs().len();
            assert_eq!(recovered as u64, RECOVERY_JOBS, "journal replay lost jobs");
            recovered
        });
        let _ = std::fs::remove_file(&journal);
        let replays_per_sec = RECOVERY_JOBS as f64 / (rec_min / 1e3);
        eprintln!(
            "bench service_recovery/N{n}: mean {rec_mean:.2} ms, min {rec_min:.2} ms \
             ({RECOVERY_JOBS} jobs, {replays_per_sec:.0} jobs/s replayed)"
        );
        results.push(json!({
            "name": format!("service_recovery/N{n}"),
            "n": n,
            "jobs": RECOVERY_JOBS,
            "mean_ms": rec_mean,
            "min_ms": rec_min,
            "replays_per_sec": replays_per_sec,
        }));
    }

    json!({
        "schema_version": 1,
        "suite": "astra-sim-bench",
        "cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "threads": rayon::current_num_threads(),
        "samples": args.samples,
        "results": results,
        "speedups": speedups,
    })
}

fn main() {
    // Sizes start at N=50 (unlike the planner gate's N=10) so every
    // timed sample is comfortably above timer noise — a single N=10
    // simulation finishes in ~20 µs, too little signal to gate on.
    run_cli(
        "astra-sim-bench",
        "BENCH_sim.json",
        &[202],
        &[50, 202, 1000],
        run_suite,
    );
}
