//! Shared machinery for the fixed-size bench runners (`astra-bench`,
//! `astra-sim-bench`): CLI parsing, timing, the regression check and the
//! check-or-write driver. Each binary supplies only its suite function
//! and its size table.

use std::time::Instant;

use serde_json::Value;

/// Parsed command-line options common to every runner.
pub struct BenchArgs {
    /// Output path for the report (ignored under `--check`).
    pub out: String,
    /// Baseline file to compare against instead of writing.
    pub check: Option<String>,
    /// Allowed relative slowdown before a metric counts as regressed.
    pub tolerance: f64,
    /// Problem sizes to run.
    pub sizes: Vec<usize>,
    /// Timed samples per bench (after one warmup).
    pub samples: usize,
    /// Explicit rayon thread count, if pinned.
    pub threads: Option<usize>,
    /// Disable DAG dominance pruning in the suites that support it
    /// (`--no-prune`): every entry then measures the full Fig. 5 DAG.
    pub no_prune: bool,
}

impl BenchArgs {
    /// Parse `std::env::args()`.
    ///
    /// `tiny` and `full` are the size sets behind `--sizes tiny|full`;
    /// the default is `full`.
    pub fn parse(default_out: &str, tiny: &[usize], full: &[usize]) -> Result<BenchArgs, String> {
        let mut args = BenchArgs {
            out: default_out.to_string(),
            check: None,
            tolerance: 0.20,
            sizes: full.to_vec(),
            samples: 5,
            threads: None,
            no_prune: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let value = |i: usize| -> Result<&String, String> {
                argv.get(i + 1).ok_or(format!("flag '{flag}' needs a value"))
            };
            // Valueless flags advance by one, flag+value pairs by two.
            if flag == "--no-prune" {
                args.no_prune = true;
                i += 1;
                continue;
            }
            match flag {
                "--out" => args.out = value(i)?.clone(),
                "--check" => args.check = Some(value(i)?.clone()),
                "--tolerance" => {
                    args.tolerance = value(i)?.parse().map_err(|e| format!("--tolerance: {e}"))?
                }
                "--sizes" => {
                    args.sizes = match value(i)?.as_str() {
                        "tiny" => tiny.to_vec(),
                        "full" => full.to_vec(),
                        other => return Err(format!("--sizes must be tiny|full, got '{other}'")),
                    }
                }
                "--samples" => {
                    args.samples = value(i)?.parse().map_err(|e| format!("--samples: {e}"))?
                }
                "--threads" => {
                    args.threads =
                        Some(value(i)?.parse().map_err(|e| format!("--threads: {e}"))?)
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 2;
        }
        if args.samples == 0 {
            return Err("--samples must be >= 1".into());
        }
        Ok(args)
    }
}

/// Time `samples` runs of `f` (after one warmup); returns (mean, min) ms.
pub fn time_ms<O>(samples: usize, mut f: impl FnMut() -> O) -> (f64, f64) {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

/// Compare `current` against `baseline` on `min_ms` per shared bench
/// name; returns the regressions found.
///
/// Entries stamped with a `threads` field (the parallel-sweep benches)
/// are compared only when both sides ran at the same worker count — a
/// baseline recorded on an 8-core box says nothing about a 1-thread CI
/// run's parallel timings. Likewise, `speedups` entries (higher is
/// better) gate only between reports whose top-level `threads` match.
pub fn regressions(current: &Value, baseline: &Value, tolerance: f64) -> Vec<String> {
    let empty = Vec::new();
    let base: Vec<(&str, &Value)> = baseline["results"]
        .as_array()
        .unwrap_or(&empty)
        .iter()
        .filter_map(|r| Some((r["name"].as_str()?, r)))
        .collect();
    let mut out = Vec::new();
    for r in current["results"].as_array().unwrap_or(&empty) {
        let (Some(name), Some(min)) = (r["name"].as_str(), r["min_ms"].as_f64()) else {
            continue;
        };
        let Some(&(_, b)) = base.iter().find(|(bn, _)| *bn == name) else {
            continue;
        };
        let Some(base_min) = b["min_ms"].as_f64() else {
            continue;
        };
        // Null == Null for unstamped entries, so only a genuine
        // thread-count mismatch skips the comparison.
        if r["threads"] != b["threads"] {
            continue;
        }
        if min > base_min * (1.0 + tolerance) {
            out.push(format!(
                "{name}: {min:.2} ms vs baseline {base_min:.2} ms (+{:.0}% > +{:.0}% allowed)",
                (min / base_min - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if !matches!(current["threads"], Value::Null) && current["threads"] == baseline["threads"] {
        let base_speedups: Vec<(&str, f64)> = baseline["speedups"]
            .as_array()
            .unwrap_or(&empty)
            .iter()
            .filter_map(|s| Some((s["name"].as_str()?, s["speedup"].as_f64()?)))
            .collect();
        for s in current["speedups"].as_array().unwrap_or(&empty) {
            let (Some(name), Some(sp)) = (s["name"].as_str(), s["speedup"].as_f64()) else {
                continue;
            };
            if let Some(&(_, base_sp)) = base_speedups.iter().find(|(b, _)| *b == name) {
                if sp < base_sp * (1.0 - tolerance) {
                    out.push(format!(
                        "{name}: speedup {sp:.2}x vs baseline {base_sp:.2}x \
                         (-{:.0}% > -{:.0}% allowed at {} threads)",
                        (1.0 - sp / base_sp) * 100.0,
                        tolerance * 100.0,
                        current["threads"]
                    ));
                }
            }
        }
    }
    out
}

/// The full runner lifecycle: parse args, pin threads, load the baseline
/// (before spending bench time, so a bad path fails in milliseconds),
/// run `suite`, then either gate against the baseline (exit 1 on
/// regression) or write the report to `args.out`.
pub fn run_cli(
    tool: &str,
    default_out: &str,
    tiny: &[usize],
    full: &[usize],
    suite: impl FnOnce(&BenchArgs) -> Value,
) {
    let args = match BenchArgs::parse(default_out, tiny, full) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{tool}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(n) = args.threads {
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    }

    let baseline: Option<Value> = args.check.as_ref().map(|baseline_path| {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("{tool}: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("{tool}: baseline {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    });

    let report = suite(&args);

    if let (Some(baseline_path), Some(baseline)) = (&args.check, &baseline) {
        let bad = regressions(&report, baseline, args.tolerance);
        if bad.is_empty() {
            println!(
                "{tool}: no regressions beyond {:.0}% against {baseline_path}",
                args.tolerance * 100.0
            );
        } else {
            eprintln!("{tool}: performance regressions detected:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&args.out, text + "\n").expect("write report");
        println!("{tool}: wrote {}", args.out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(name: &str, min_ms: f64) -> Value {
        json!({"results": [{"name": name, "min_ms": min_ms}]})
    }

    #[test]
    fn regression_beyond_tolerance_is_flagged() {
        let bad = regressions(&report("a", 13.0), &report("a", 10.0), 0.20);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("a: 13.00 ms"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        assert!(regressions(&report("a", 11.9), &report("a", 10.0), 0.20).is_empty());
    }

    #[test]
    fn unshared_names_are_ignored() {
        assert!(regressions(&report("new", 99.0), &report("old", 1.0), 0.20).is_empty());
    }

    #[test]
    fn thread_stamped_entries_skip_mismatched_baselines() {
        let cur = json!({"threads": 1, "results": [
            {"name": "sweep_parallel/N202", "min_ms": 90.0, "threads": 1}
        ]});
        let base = json!({"threads": 8, "results": [
            {"name": "sweep_parallel/N202", "min_ms": 10.0, "threads": 8}
        ]});
        // 9x slower, but at 1 thread vs an 8-thread baseline: not a
        // regression, just a different machine shape.
        assert!(regressions(&cur, &base, 0.20).is_empty());
        let same = json!({"threads": 8, "results": [
            {"name": "sweep_parallel/N202", "min_ms": 90.0, "threads": 8}
        ]});
        assert_eq!(regressions(&same, &base, 0.20).len(), 1);
    }

    #[test]
    fn speedups_gate_only_at_matching_thread_counts() {
        let mk = |threads: u64, speedup: f64| {
            json!({"threads": threads, "results": [],
                   "speedups": [{"name": "sweep/N202", "speedup": speedup}]})
        };
        // Same thread count, speedup halved: flagged.
        let bad = regressions(&mk(4, 1.0), &mk(4, 2.0), 0.20);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("speedup"));
        // Within tolerance: passes.
        assert!(regressions(&mk(4, 1.9), &mk(4, 2.0), 0.20).is_empty());
        // Different thread count: speedups are incomparable.
        assert!(regressions(&mk(1, 0.5), &mk(4, 2.0), 0.20).is_empty());
    }

    #[test]
    fn time_ms_returns_sane_stats() {
        let (mean, min) = time_ms(3, || std::hint::black_box(1 + 1));
        assert!(min >= 0.0 && mean >= min);
    }
}
