#![warn(missing_docs)]

//! Shared fixtures for the Criterion benches.
//!
//! The benches quantify the paper's Discussion claim — Astra's planning
//! overhead "is within a few seconds on a laptop" — plus the scaling of
//! the underlying machinery (DAG construction, shortest-path solvers,
//! the event simulator) and the Algorithm 1 vs exact-solver ablation.
//! Run with `cargo bench --workspace`; per-table summaries land in
//! `target/criterion/`.

use astra_core::{Astra, ConfigSpace, Objective, Strategy};
use astra_model::{JobSpec, Platform, WorkloadProfile};
use astra_pricing::PriceCatalog;
use astra_workloads::WorkloadSpec;

pub mod runner;

/// The default planner over the evaluation platform.
pub fn planner(strategy: Strategy) -> Astra {
    Astra::new(Platform::aws_lambda(), PriceCatalog::aws_2020(), strategy)
}

/// The five paper workloads with display labels.
pub fn paper_jobs() -> Vec<(String, JobSpec)> {
    WorkloadSpec::paper_suite()
        .into_iter()
        .map(|s| (s.label(), s.into_job()))
        .collect()
}

/// A uniform synthetic job with `n` objects for scaling benches.
pub fn synthetic_job(n: usize) -> JobSpec {
    JobSpec::uniform("bench", n, 4.0, WorkloadProfile::uniform_test())
}

/// A binding budget objective for `job` (midpoint of the cost range).
pub fn binding_budget(astra: &Astra, job: &JobSpec) -> Objective {
    let cheapest = astra.plan(job, Objective::cheapest()).unwrap();
    let fastest = astra.plan(job, Objective::fastest()).unwrap();
    let lo = cheapest.predicted_cost().nanos();
    let hi = fastest.predicted_cost().nanos();
    Objective::MinimizeTime {
        budget: astra_pricing::Money::from_nanos((lo + hi) / 2),
    }
}

/// The full configuration space for `job`.
pub fn full_space(astra: &Astra, job: &JobSpec) -> ConfigSpace {
    ConfigSpace::full(job, astra.platform())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(paper_jobs().len(), 5);
        let astra = planner(Strategy::ExactCsp);
        let job = synthetic_job(6);
        let objective = binding_budget(&astra, &job);
        assert!(astra.plan(&job, objective).is_ok());
    }
}
