#![warn(missing_docs)]

//! Shared fixtures for the Criterion benches.
//!
//! The benches quantify the paper's Discussion claim — Astra's planning
//! overhead "is within a few seconds on a laptop" — plus the scaling of
//! the underlying machinery (DAG construction, shortest-path solvers,
//! the event simulator) and the Algorithm 1 vs exact-solver ablation.
//! Run with `cargo bench --workspace`; per-table summaries land in
//! `target/criterion/`.

use astra_core::{Astra, ConfigSpace, Objective, Strategy};
use astra_model::{JobSpec, Platform, WorkloadProfile};
use astra_pricing::PriceCatalog;
use astra_workloads::WorkloadSpec;

pub mod runner;

/// The default planner over the evaluation platform.
pub fn planner(strategy: Strategy) -> Astra {
    Astra::new(Platform::aws_lambda(), PriceCatalog::aws_2020(), strategy)
}

/// The five paper workloads with display labels.
pub fn paper_jobs() -> Vec<(String, JobSpec)> {
    WorkloadSpec::paper_suite()
        .into_iter()
        .map(|s| (s.label(), s.into_job()))
        .collect()
}

/// A uniform synthetic job with `n` objects for scaling benches.
pub fn synthetic_job(n: usize) -> JobSpec {
    JobSpec::uniform("bench", n, 4.0, WorkloadProfile::uniform_test())
}

/// A production-scale analytics job: `n` small objects with an
/// aggregation-shaped profile (light per-MB compute, strong per-step
/// data reduction). The featureless `uniform_test` profile is
/// deliberately infeasible at N=10^5 on the stock AWS platform — with
/// `reduce_ratio` 1.0 the final reducer alone digests the whole input
/// and blows the Lambda timeout — so production-N planning benches and
/// tests use this shape instead, where mid-range configurations are
/// feasible and the planner has real work to do.
pub fn production_job(n: usize) -> JobSpec {
    let profile = WorkloadProfile {
        name: "aggregation".to_string(),
        map_secs_per_mb_128: 0.05,
        reduce_secs_per_mb_128: 0.05,
        coord_secs_per_mb_128: 0.001,
        shuffle_ratio: 0.2,
        reduce_ratio: 0.05,
        state_object_mb: 1.0,
        single_pass_reduce: false,
    };
    JobSpec::uniform("bench-prod", n, 1.0, profile)
}

/// A binding budget objective for `job` (midpoint of the cost range).
pub fn binding_budget(astra: &Astra, job: &JobSpec) -> Objective {
    let cheapest = astra.plan(job, Objective::cheapest()).unwrap();
    let fastest = astra.plan(job, Objective::fastest()).unwrap();
    let lo = cheapest.predicted_cost().nanos();
    let hi = fastest.predicted_cost().nanos();
    Objective::MinimizeTime {
        budget: astra_pricing::Money::from_nanos((lo + hi) / 2),
    }
}

/// The full configuration space for `job`.
pub fn full_space(astra: &Astra, job: &JobSpec) -> ConfigSpace {
    ConfigSpace::full(job, astra.platform())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(paper_jobs().len(), 5);
        let astra = planner(Strategy::ExactCsp);
        let job = synthetic_job(6);
        let objective = binding_budget(&astra, &job);
        assert!(astra.plan(&job, objective).is_ok());
    }
}
