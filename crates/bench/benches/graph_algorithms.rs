//! Scaling of the graph substrate: Dijkstra, the exact constrained
//! shortest path, and Yen's k-shortest paths on layered DAGs shaped like
//! the planner's.

use astra_graph::csp::constrained_shortest_path;
use astra_graph::dijkstra::shortest_path_all;
use astra_graph::yen::KShortestPaths;
use astra_graph::{DiGraph, NodeId};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// A layered DAG with `layers` columns of `width` nodes, fully connected
/// layer to layer, carrying (time, cost) pairs.
fn layered(width: usize, layers: usize, seed: u64) -> (DiGraph<(), (f64, f64)>, NodeId, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    let s = g.add_node(());
    let mut prev = vec![s];
    for _ in 0..layers {
        let layer: Vec<NodeId> = (0..width).map(|_| g.add_node(())).collect();
        for &u in &prev {
            for &v in &layer {
                g.add_edge(u, v, (rng.random_range(0.1..10.0), rng.random_range(0.1..10.0)));
            }
        }
        prev = layer;
    }
    let t = g.add_node(());
    for &u in &prev {
        g.add_edge(u, t, (0.0, 0.0));
    }
    (g, s, t)
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_layered");
    for width in [16usize, 46, 128] {
        let (g, s, t) = layered(width, 5, 1);
        group.bench_function(format!("width={width}"), |b| {
            b.iter(|| {
                shortest_path_all(black_box(&g), s, t, |_, e| e.0)
                    .unwrap()
                    .weight
            })
        });
    }
    group.finish();
}

fn bench_csp(c: &mut Criterion) {
    let mut group = c.benchmark_group("constrained_shortest_path");
    for width in [16usize, 46, 128] {
        let (g, s, t) = layered(width, 5, 2);
        // A mid-tightness bound: roughly half the unconstrained optimum's
        // resource use times the layer count.
        let bound = 5.0 * 5.0;
        group.bench_function(format!("width={width}"), |b| {
            b.iter(|| {
                constrained_shortest_path(black_box(&g), s, t, bound, |_, e| e.0, |_, e| e.1)
                    .map(|sol| sol.weight)
            })
        });
    }
    group.finish();
}

fn bench_yen(c: &mut Criterion) {
    let mut group = c.benchmark_group("yen_k_shortest_k=25");
    for width in [8usize, 16, 32] {
        let (g, s, t) = layered(width, 4, 3);
        group.bench_function(format!("width={width}"), |b| {
            b.iter(|| {
                KShortestPaths::new(black_box(&g), s, t, |_, e| e.0)
                    .take(25)
                    .map(|p| p.weight)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dijkstra, bench_csp, bench_yen);
criterion_main!(benches);
