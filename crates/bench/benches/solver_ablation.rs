//! Ablation bench (DESIGN.md `alg1_vs_exact`): the paper's Algorithm 1
//! versus the exact solvers at matched budgets, on the Wordcount-1GB
//! planner DAG.

use astra_bench::{binding_budget, planner};
use astra_core::{Objective, Strategy};
use astra_workloads::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let exact = planner(Strategy::ExactCsp);
    let binding = binding_budget(&exact, &job);
    // Path enumeration degenerates on binding budgets (Yen walks the
    // objective order until a path fits — potentially thousands of
    // Dijkstra re-runs on the 133k-edge DAG), so it gets a loose budget
    // where the first few paths are feasible; the other two strategies
    // are benched at the binding budget they are actually used with.
    let loose = {
        let fastest = exact.plan(&job, Objective::fastest()).unwrap();
        Objective::MinimizeTime {
            budget: fastest.predicted_cost(),
        }
    };

    let mut group = c.benchmark_group("solver_strategy_wc1gb");
    group.sample_size(10);
    for (name, strategy, objective) in [
        ("exact_csp_binding", Strategy::ExactCsp, binding),
        ("algorithm1_binding", Strategy::Algorithm1, binding),
        ("exact_csp_loose", Strategy::ExactCsp, loose),
        ("path_enumeration_loose", Strategy::PathEnumeration, loose),
    ] {
        let astra = planner(strategy);
        group.bench_function(name, |b| {
            b.iter(|| {
                // Algorithm 1 may legitimately fail on binding budgets;
                // the bench measures the attempt either way.
                astra.plan(black_box(&job), objective).ok().map(|p| p.mappers())
            })
        });
    }
    group.finish();
}

fn bench_exhaustive_small_space(c: &mut Criterion) {
    // Exhaustive scan over a reduced 3-tier space — the validation
    // configuration the tests use; shows why it cannot be the default.
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let exact = planner(Strategy::ExactCsp);
    let objective = binding_budget(&exact, &job);
    let space = astra_core::ConfigSpace::with_tiers(&job, exact.platform(), &[128, 768, 1792]);
    let ex = planner(Strategy::Exhaustive);
    let dag = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("exhaustive_vs_dag_3tiers");
    group.sample_size(10);
    group.bench_function("exhaustive", |b| {
        b.iter(|| ex.plan_with_space(black_box(&job), objective, &space).unwrap().mappers())
    });
    group.bench_function("dag_exact_csp", |b| {
        b.iter(|| dag.plan_with_space(black_box(&job), objective, &space).unwrap().mappers())
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_exhaustive_small_space);
criterion_main!(benches);
