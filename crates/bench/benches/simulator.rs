//! Discrete-event simulator throughput: end-to-end simulation of the
//! paper-scale jobs (hundreds of lambdas, thousands of events each).

use astra_bench::planner;
use astra_core::{Objective, Strategy};
use astra_faas::SimConfig;
use astra_mapreduce::simulate;
use astra_model::Platform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulate_paper_jobs(c: &mut Criterion) {
    let astra = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("simulate_job");
    for (label, job) in astra_bench::paper_jobs() {
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        group.bench_function(&label, |b| {
            b.iter(|| {
                let config = SimConfig::deterministic(Platform::aws_lambda()).with_catalog(astra_pricing::PriceCatalog::aws_2020()).with_noise(0.1, 7);
                simulate(black_box(&job), &plan, config).unwrap().jct_s()
            })
        });
    }
    group.finish();
}

fn bench_simulate_wide_fanout(c: &mut Criterion) {
    // A single-step 1000-mapper job: stresses the concurrency token pool
    // and the event queue.
    let astra = planner(Strategy::ExactCsp);
    let job = astra_model::JobSpec::uniform(
        "wide",
        1000,
        1.0,
        astra_model::WorkloadProfile::uniform_test(),
    );
    let plan = astra.plan(&job, Objective::fastest()).unwrap();
    c.bench_function("simulate_1000_mappers", |b| {
        b.iter(|| {
            simulate(
                black_box(&job),
                &plan,
                SimConfig::deterministic(Platform::aws_lambda()),
            )
            .unwrap()
            .invocation_count()
        })
    });
}

criterion_group!(benches, bench_simulate_paper_jobs, bench_simulate_wide_fanout);
criterion_main!(benches);
