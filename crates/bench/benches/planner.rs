//! The paper's Discussion overhead claim: "The overhead of Astra …
//! is within a few seconds on a laptop." One bench per paper workload,
//! covering DAG construction and the end-to-end plan() call (both
//! objectives).

use astra_bench::{binding_budget, full_space, paper_jobs, planner};
use astra_core::{Objective, Strategy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dag_build(c: &mut Criterion) {
    let astra = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("dag_build");
    group.sample_size(10);
    for (label, job) in paper_jobs() {
        let space = full_space(&astra, &job);
        group.bench_function(&label, |b| {
            b.iter(|| black_box(astra.build_dag(&job, &space)).graph().edge_count())
        });
    }
    group.finish();
}

fn bench_plan_budget(c: &mut Criterion) {
    let astra = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("plan_min_time_under_budget");
    group.sample_size(10);
    for (label, job) in paper_jobs() {
        let objective = binding_budget(&astra, &job);
        group.bench_function(&label, |b| {
            b.iter(|| astra.plan(black_box(&job), objective).unwrap().mappers())
        });
    }
    group.finish();
}

fn bench_plan_deadline(c: &mut Criterion) {
    let astra = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("plan_min_cost_under_deadline");
    group.sample_size(10);
    for (label, job) in paper_jobs() {
        let fastest = astra.plan(&job, Objective::fastest()).unwrap();
        let objective = Objective::min_cost_with_deadline_s(fastest.predicted_jct_s() * 2.0);
        group.bench_function(&label, |b| {
            b.iter(|| astra.plan(black_box(&job), objective).unwrap().reducers())
        });
    }
    group.finish();
}

fn bench_dag_scaling(c: &mut Criterion) {
    // DESIGN.md's `dag_scaling` ablation: build + solve time vs N.
    let astra = planner(Strategy::ExactCsp);
    let mut group = c.benchmark_group("dag_scaling_by_objects");
    group.sample_size(10);
    for n in [10usize, 40, 100, 202, 400] {
        let job = astra_bench::synthetic_job(n);
        let space = full_space(&astra, &job);
        group.bench_function(format!("N={n}"), |b| {
            b.iter(|| {
                let dag = astra.build_dag(&job, &space);
                astra_graph::dijkstra::shortest_path_all(
                    dag.graph(),
                    dag.source(),
                    dag.sink(),
                    |_, m| m.time_s,
                )
                .unwrap()
                .weight
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dag_build,
    bench_plan_budget,
    bench_plan_deadline,
    bench_dag_scaling
);
criterion_main!(benches);
