//! The `astra` binary: parse args, dispatch, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match astra_cli::parse(&args) {
        Ok(command) => {
            if let Err(e) = astra_cli::run(command, &mut out) {
                eprintln!("astra: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("astra: {e}");
            std::process::exit(2);
        }
    }
}
