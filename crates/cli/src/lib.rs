#![warn(missing_docs)]

//! Library backing the `astra` command-line tool.
//!
//! A deliberately dependency-free argument parser (the approved crate set
//! has no CLI framework) plus one function per subcommand. The binary in
//! `main.rs` is a thin shim so everything here is unit-testable.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Run a parsed command, writing human-readable output to `out`.
///
/// When `--trace-out` or `--metrics` is given, a [`ChromeTraceRecorder`]
/// is installed as the process-global telemetry sink before the command
/// runs (the planner and simulator snapshot it at construction time) and
/// torn down afterwards. Telemetry is observational only: plans, reports
/// and their printed numbers are bit-identical with it on or off.
///
/// [`ChromeTraceRecorder`]: astra_telemetry::sinks::ChromeTraceRecorder
pub fn run(command: Command, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    use astra_telemetry::{sinks::ChromeTraceRecorder, Telemetry};
    use std::sync::Arc;

    if let Some(n) = command.threads() {
        // Pin the planner's parallelism before any parallel call runs.
        // Plans are identical for every thread count (the planner's
        // determinism guarantee); this only changes wall-clock.
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    }

    let trace_out = command.trace_out().map(String::from);
    let metrics = command.metrics();
    let recorder = if trace_out.is_some() || metrics {
        let rec = Arc::new(ChromeTraceRecorder::new());
        astra_telemetry::install_global(Telemetry::new(rec.clone()));
        Some(rec)
    } else {
        None
    };

    let result = match command {
        Command::Workloads => commands::workloads(out),
        Command::Plan(opts) => commands::plan(opts, out),
        Command::Simulate(opts) => commands::simulate(opts, out),
        Command::Baselines(opts) => commands::baselines(opts, out),
        Command::Timeline(opts) => commands::timeline(opts, out),
        Command::Frontier(opts) => commands::frontier(opts, out),
        Command::Serve(opts) => commands::serve(opts, out),
        Command::Submit(opts) => commands::submit(opts, out),
        Command::Help => commands::help(out),
    };

    if let Some(rec) = recorder {
        // Stop recording before reading the buffers out.
        astra_telemetry::install_global(Telemetry::disabled());
        if metrics {
            writeln!(out, "\n-- telemetry --")?;
            for line in rec.inner().summary_lines() {
                writeln!(out, "{line}")?;
            }
        }
        if let Some(path) = trace_out {
            rec.write_to(&path)?;
            writeln!(out, "trace written to {path} (open in chrome://tracing or Perfetto)")?;
        }
    }
    result
}
